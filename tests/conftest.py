"""Shared fixtures for the test suite.

Expensive artefacts (trained networks, fitted scorers) are session-scoped so
the several hundred tests stay fast; tests that mutate state must copy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, make_gaussian_clusters, make_glyph_digits
from repro.naturalness import DensityNaturalness
from repro.nn import Adam, Trainer, TrainerConfig, build_mlp_classifier
from repro.op import ground_truth_profile_for_clusters, profile_from_dataset


CLUSTER_STD = 0.10
NUM_CLUSTER_CLASSES = 4
OPERATIONAL_PRIORS = np.array([0.55, 0.25, 0.15, 0.05])


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def clusters_dataset() -> Dataset:
    return make_gaussian_clusters(
        800, num_classes=NUM_CLUSTER_CLASSES, cluster_std=CLUSTER_STD, rng=7
    )


@pytest.fixture(scope="session")
def clusters_split(clusters_dataset):
    return clusters_dataset.split(0.25, rng=8)


@pytest.fixture(scope="session")
def trained_cluster_model(clusters_split):
    train, _ = clusters_split
    model = build_mlp_classifier(
        train.num_features, train.num_classes, hidden_sizes=(24, 12), rng=9
    )
    trainer = Trainer(
        optimizer=Adam(learning_rate=0.01),
        config=TrainerConfig(epochs=25, batch_size=64),
        rng=10,
    )
    trainer.fit(model, train.x, train.y)
    return model


@pytest.fixture(scope="session")
def cluster_profile():
    return ground_truth_profile_for_clusters(
        NUM_CLUSTER_CLASSES, 2, CLUSTER_STD, class_priors=OPERATIONAL_PRIORS
    )


@pytest.fixture(scope="session")
def cluster_naturalness(clusters_split, cluster_profile):
    train, _ = clusters_split
    return DensityNaturalness(profile=cluster_profile).fit(train.x)


@pytest.fixture(scope="session")
def operational_cluster_data(cluster_profile, clusters_dataset):
    from repro.op import synthesize_operational_dataset

    return synthesize_operational_dataset(
        cluster_profile, size=300, reference=clusters_dataset, rng=11
    )


@pytest.fixture(scope="session")
def glyph_dataset() -> Dataset:
    return make_glyph_digits(300, image_size=10, num_classes=4, rng=13)


@pytest.fixture(scope="session")
def glyph_profile(glyph_dataset):
    return profile_from_dataset(
        glyph_dataset, class_priors=[0.4, 0.3, 0.2, 0.1], resample_noise=0.02
    )


@pytest.fixture(scope="session")
def trained_glyph_model(glyph_dataset):
    train, _ = glyph_dataset.split(0.25, rng=14)
    model = build_mlp_classifier(
        train.num_features, train.num_classes, hidden_sizes=(32,), rng=15
    )
    trainer = Trainer(
        optimizer=Adam(learning_rate=0.005),
        config=TrainerConfig(epochs=15, batch_size=32),
        rng=16,
    )
    trainer.fit(model, train.x, train.y)
    return model
