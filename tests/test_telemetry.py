"""Tests for ``repro.telemetry`` — spans, metrics, cross-process merge.

Fast tier: the ring-buffer collector, the metrics registry, the no-op
guarantee when no session is active, the worker-payload wire path (including
monotonic-skew correction), trace/metrics artifacts and their renderers,
engine integration (telemetry on vs off must be bit-identical — the
observability layer can never perturb results), span survival across a real
worker SIGKILL, and the registry/CLI surface (``trace``, ``ls --json``).

Slow tier (``pytest -m slow``): the on/off bit-identity matrix across
batched/sharded execution and every shard transport (pickle, shm, threads).
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import telemetry
from repro.engine import BatchedQueryEngine, ShardedQueryEngine
from repro.exceptions import StoreError
from repro.faults import FaultPlan, RetryPolicy
from repro.store import RunRegistry
from repro.store.cli import main as cli_main
from repro.telemetry import (
    MAX_CLOCK_SKEW_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    TelemetrySession,
    TraceCollector,
    chrome_trace_events,
    metrics_document,
    read_trace,
    render_timeline,
    write_trace,
)


# --------------------------------------------------------------------------- #
# spans + collector
# --------------------------------------------------------------------------- #
class TestSpan:
    def test_lane_and_end(self):
        s = Span("shard-0", "shard", start_s=1.0, duration_s=0.5)
        assert s.lane == "coordinator"
        assert s.end_s == 1.5
        w = Span("shard-0", "shard", 1.0, 0.5, proc="worker", worker=3)
        assert w.lane == "worker-3"

    def test_shifted_translates_start_only(self):
        s = Span("a", "app", 2.0, 0.25)
        t = s.shifted(1.5)
        assert (t.start_s, t.duration_s) == (3.5, 0.25)
        assert s.shifted(0.0) is s  # no-copy fast path

    def test_wire_round_trip(self):
        s = Span("a", "app", 2.0, 0.25, proc="worker", worker=1, attrs={"k": 1})
        assert Span.from_wire(s.to_wire()) == s

    def test_to_dict_omits_empty_attrs(self):
        assert "attrs" not in Span("a", "app", 0.0, 0.0).to_dict()
        assert Span("a", "app", 0.0, 0.0, attrs={"k": 1}).to_dict()["attrs"] == {
            "k": 1
        }


class TestTraceCollector:
    def test_records_in_order(self):
        collector = TraceCollector(capacity=8)
        for i in range(5):
            collector.record(Span(f"s{i}", "app", float(i), 0.0))
        assert [s.name for s in collector.snapshot()] == [f"s{i}" for i in range(5)]
        assert len(collector) == 5
        assert collector.dropped == 0

    def test_ring_overwrites_oldest_and_counts_drops(self):
        collector = TraceCollector(capacity=4)
        for i in range(7):
            collector.record(Span(f"s{i}", "app", float(i), 0.0))
        assert [s.name for s in collector.snapshot()] == ["s3", "s4", "s5", "s6"]
        assert collector.dropped == 3

    def test_drain_clears_but_keeps_drop_count(self):
        collector = TraceCollector(capacity=2)
        for i in range(3):
            collector.record(Span(f"s{i}", "app", float(i), 0.0))
        assert [s.name for s in collector.drain()] == ["s1", "s2"]
        assert len(collector) == 0
        assert collector.snapshot() == []
        assert collector.dropped == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.to_dict() == {"type": "counter", "value": 3.5}
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_merge_incoming_wins(self):
        g = Gauge()
        g.set(1.0)
        g.merge({"type": "gauge", "value": 7.0})
        assert g.to_dict()["value"] == 7.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        d = h.to_dict()
        assert d["counts"] == [1, 1, 1]
        assert d["count"] == 3
        assert d["min"] == 0.5 and d["max"] == 50.0
        assert h.mean == pytest.approx(55.5 / 3)

    def test_histogram_merge_is_pointwise(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b.to_dict())
        assert a.to_dict()["counts"] == [1, 1]
        assert a.to_dict()["min"] == 0.5 and a.to_dict()["max"] == 2.0
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(Histogram(bounds=(2.0,)).to_dict())

    def test_registry_get_or_create_and_kind_clash(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_registry_to_dict_sorted_and_merge(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.counter("a.first").inc(2)
        assert list(reg.to_dict()) == ["a.first", "z.last"]
        other = MetricsRegistry()
        other.merge(reg.to_dict())
        other.merge(reg.to_dict())
        assert other.to_dict()["a.first"]["value"] == 4.0


# --------------------------------------------------------------------------- #
# session API
# --------------------------------------------------------------------------- #
class TestSessionApi:
    def test_everything_is_noop_without_session(self):
        # must not raise, allocate a session, or record anywhere
        with telemetry.span("unit", "app") as handle:
            handle.set(key="value")
        telemetry.event("unit")
        telemetry.count("unit.count")
        telemetry.observe("unit.hist", 1.0)
        telemetry.gauge("unit.gauge", 1.0)
        telemetry.record_span("unit", "app", 0.0, 1.0)
        assert telemetry.active() is None
        assert not telemetry.enabled()

    def test_disabled_session_yields_none(self):
        with telemetry.session(enabled=False) as sess:
            assert sess is None
            assert not telemetry.enabled()

    def test_session_records_spans_and_metrics(self):
        with telemetry.session() as sess:
            assert telemetry.enabled()
            with telemetry.span("work", "engine", rows=4):
                pass
            telemetry.event("marker", "fault", worker=1)
            telemetry.count("c", 2)
            telemetry.observe("h", 0.5)
            telemetry.gauge("g", 3.0)
        spans = sess.spans.snapshot()
        assert [s.name for s in spans] == ["work", "marker"]
        assert spans[0].attrs == {"rows": 4}
        assert spans[1].duration_s == 0.0
        metrics = sess.metrics.to_dict()
        assert metrics["c"]["value"] == 2.0
        assert metrics["h"]["count"] == 1
        assert metrics["g"]["value"] == 3.0
        assert telemetry.active() is None  # deactivated on exit

    def test_nested_sessions_restore_outer(self):
        with telemetry.session() as outer:
            with telemetry.session() as inner:
                assert telemetry.active() is inner
            assert telemetry.active() is outer

    def test_span_records_error_attr_on_exception(self):
        with telemetry.session() as sess:
            with pytest.raises(RuntimeError):
                with telemetry.span("boom", "app"):
                    raise RuntimeError("x")
        (span,) = sess.spans.snapshot()
        assert span.attrs["error"] == "RuntimeError"

    def test_record_span_places_explicit_lane(self):
        with telemetry.session() as sess:
            telemetry.record_span("t", "shard", 1.0, 0.5, proc="worker", worker=2)
        (span,) = sess.spans.snapshot()
        assert span.lane == "worker-2"
        assert (span.start_s, span.duration_s) == (1.0, 0.5)


# --------------------------------------------------------------------------- #
# worker payload wire path
# --------------------------------------------------------------------------- #
class TestWorkerPayload:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        yield
        telemetry.arm_process_worker(0, enabled=False)

    def test_unarmed_drain_returns_none(self):
        assert telemetry.drain_worker_payload() is None
        assert not telemetry.worker_armed()

    def test_armed_worker_records_on_worker_lane(self):
        telemetry.arm_process_worker(1, enabled=True)
        assert telemetry.worker_armed()
        with telemetry.span("shard-0", "shard"):
            pass
        telemetry.count("w.count")
        wire, metrics, (mono, wall) = telemetry.drain_worker_payload()
        assert len(wire) == 1
        assert Span.from_wire(wire[0]).lane == "worker-1"
        assert metrics["w.count"]["value"] == 1.0
        assert mono > 0 and wall > 0
        # drain resets: a second drain carries nothing
        wire2, metrics2, _ = telemetry.drain_worker_payload()
        assert wire2 == [] and metrics2 == {}

    def test_arming_clears_inherited_session(self):
        # a forked child must never write into the parent's copied ring
        with telemetry.session():
            telemetry.arm_process_worker(0, enabled=False)
            assert telemetry.active() is None
            assert not telemetry.enabled()

    def test_ingest_merges_spans_and_metrics(self):
        telemetry.arm_process_worker(2, enabled=True)
        with telemetry.span("shard-5", "shard"):
            pass
        telemetry.count("engine.rows", 8)
        payload = telemetry.drain_worker_payload()
        telemetry.arm_process_worker(0, enabled=False)
        with telemetry.session() as sess:
            telemetry.ingest_worker_payload(payload)
            telemetry.ingest_worker_payload(None)  # telemetry-off worker
        assert [s.lane for s in sess.spans.snapshot()] == ["worker-2"]
        assert sess.metrics.to_dict()["engine.rows"]["value"] == 8.0

    def test_skew_beyond_threshold_is_corrected(self):
        with telemetry.session() as sess:
            # a worker whose monotonic epoch lags the coordinator's by 100s:
            # same wall clock, monotonic anchor 100s smaller
            skew = 100.0
            wire = [
                Span(
                    "shard-0",
                    "shard",
                    start_s=sess.anchor_monotonic - skew,
                    duration_s=0.1,
                    proc="worker",
                    worker=0,
                ).to_wire()
            ]
            anchor = (sess.anchor_monotonic - skew, sess.anchor_wall)
            telemetry.ingest_worker_payload((wire, {}, anchor))
        (span,) = sess.spans.snapshot()
        assert span.start_s == pytest.approx(sess.anchor_monotonic, abs=1e-6)

    def test_skew_below_threshold_left_alone(self):
        with telemetry.session() as sess:
            jitter = MAX_CLOCK_SKEW_S / 2
            start = sess.anchor_monotonic + 1.0
            wire = [Span("s", "shard", start, 0.1, "worker", 0).to_wire()]
            anchor = (sess.anchor_monotonic - jitter, sess.anchor_wall)
            telemetry.ingest_worker_payload((wire, {}, anchor))
        (span,) = sess.spans.snapshot()
        assert span.start_s == start


# --------------------------------------------------------------------------- #
# artifacts + renderers
# --------------------------------------------------------------------------- #
def _session_with_spans() -> TelemetrySession:
    sess = TelemetrySession()
    base = sess.anchor_monotonic
    sess.spans.record(Span("dispatch.predict", "engine", base + 0.01, 0.05))
    sess.spans.record(
        Span("shard-0", "shard", base + 0.02, 0.02, proc="worker", worker=0)
    )
    sess.spans.record(
        Span("shard-1", "shard", base + 0.02, 0.03, proc="worker", worker=1,
             attrs={"rows": 16})
    )
    sess.metrics.counter("engine.rows").inc(32)
    return sess


class TestArtifacts:
    def test_trace_round_trip_rebases_to_origin(self):
        sess = _session_with_spans()
        buffer = io.StringIO()
        assert write_trace(buffer, sess) == 3
        buffer.seek(0)
        header, spans = read_trace(buffer)
        assert header["version"] == 1
        assert header["spans"] == 3
        assert header["dropped"] == 0
        # rebased: every start is relative to the session anchor
        assert min(s.start_s for s in spans) == pytest.approx(0.01)
        assert {s.lane for s in spans} == {"coordinator", "worker-0", "worker-1"}
        assert spans[-1].attrs == {"rows": 16}

    def test_read_trace_rejects_garbage(self):
        with pytest.raises(ValueError, match="empty trace"):
            read_trace(io.StringIO(""))
        bad = io.StringIO(json.dumps({"version": 99}) + "\n")
        with pytest.raises(ValueError, match="unsupported trace version"):
            read_trace(bad)

    def test_metrics_document_shape(self):
        doc = metrics_document(_session_with_spans())
        assert doc["version"] == 1
        assert doc["spans_recorded"] == 3
        assert doc["spans_dropped"] == 0
        assert doc["metrics"]["engine.rows"]["value"] == 32.0

    def test_chrome_events(self):
        sess = _session_with_spans()
        buffer = io.StringIO()
        write_trace(buffer, sess)
        buffer.seek(0)
        header, spans = read_trace(buffer)
        events = chrome_trace_events(header, spans)
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(xs) == 3
        # coordinator lane is tid 0, worker N renders as tid N+1
        assert [e["tid"] for e in xs] == [0, 1, 2]
        assert all(e["ts"] >= 0 for e in xs)
        named = {e["args"]["name"] for e in metas if e["name"] == "thread_name"}
        assert named == {"coordinator", "worker-0", "worker-1"}

    def test_render_timeline_contents(self):
        sess = _session_with_spans()
        buffer = io.StringIO()
        write_trace(buffer, sess)
        buffer.seek(0)
        rendered = render_timeline(*read_trace(buffer))
        assert "coordinator" in rendered
        assert "worker-0" in rendered and "worker-1" in rendered
        assert "shard-1" in rendered
        assert "3 spans" in rendered

    def test_render_timeline_empty(self):
        assert "trace is empty" in render_timeline({"dropped": 0}, [])


# --------------------------------------------------------------------------- #
# engine integration: bit-identity and cross-process merge
# --------------------------------------------------------------------------- #
class TestEngineIntegration:
    def test_batched_engine_metrics(
        self, trained_cluster_model, operational_cluster_data
    ):
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=8)
        x = operational_cluster_data.x[:20]
        baseline = engine.predict_proba(x)
        with telemetry.session() as sess:
            np.testing.assert_array_equal(engine.predict_proba(x), baseline)
        metrics = sess.metrics.to_dict()
        assert metrics["engine.rows"]["value"] == 20.0
        assert metrics["engine.model_calls"]["value"] == 3.0  # ceil(20/8)
        assert metrics["engine.chunk_latency_s"]["count"] == 3

    def test_sharded_engine_merges_worker_spans(
        self, trained_cluster_model, operational_cluster_data
    ):
        x = operational_cluster_data.x[:32]
        with ShardedQueryEngine(
            trained_cluster_model, batch_size=4, num_workers=2
        ) as engine:
            off = engine.predict_proba(x)
            with telemetry.session() as sess:
                on = engine.predict_proba(x)
        # the observability layer can never perturb results
        np.testing.assert_array_equal(on, off)
        spans = sess.spans.snapshot()
        lanes = {s.lane for s in spans}
        # worker spans crossed the process boundary and merged
        assert {"coordinator", "worker-0", "worker-1"} <= lanes
        cats = {s.category for s in spans}
        assert {"engine", "dispatch", "shard"} <= cats
        metrics = sess.metrics.to_dict()
        assert metrics["engine.rows"]["value"] == 32.0
        assert metrics["transport.dispatch.pickle"]["value"] >= 1.0

    def test_sharded_threads_records_worker_lanes(
        self, trained_cluster_model, operational_cluster_data
    ):
        x = operational_cluster_data.x[:16]
        with ShardedQueryEngine(
            trained_cluster_model, batch_size=4, num_workers=2,
            transport="threads",
        ) as engine:
            off = engine.predict_proba(x)
            with telemetry.session() as sess:
                on = engine.predict_proba(x)
        np.testing.assert_array_equal(on, off)
        shard_lanes = {
            s.lane for s in sess.spans.snapshot() if s.category == "shard"
        }
        assert shard_lanes and all(l.startswith("worker-") for l in shard_lanes)

    def test_spans_survive_worker_sigkill(
        self, trained_cluster_model, operational_cluster_data
    ):
        # a worker SIGKILLed mid-campaign loses at most its in-flight shard's
        # spans; the harvest path never hangs and the merge never corrupts
        x = operational_cluster_data.x[:32]
        with ShardedQueryEngine(
            trained_cluster_model, batch_size=6, num_workers=2
        ) as clean:
            expected = clean.predict_proba(x)
        engine = ShardedQueryEngine(
            trained_cluster_model,
            batch_size=6,
            num_workers=2,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=FaultPlan(kills=((1, 1),)),
        )
        try:
            with telemetry.session() as sess:
                np.testing.assert_array_equal(engine.predict_proba(x), expected)
            assert engine.stats.worker_respawns >= 1
        finally:
            engine.close()
        spans = sess.spans.snapshot()
        # the death was observed and recorded as a fault event...
        down = [s for s in spans if s.name == "fault.worker_down"]
        assert down and down[0].category == "fault"
        # ...surviving workers' spans still merged across the boundary
        assert any(s.proc == "worker" for s in spans)
        metrics = sess.metrics.to_dict()
        assert metrics["faults.worker_respawns"]["value"] >= 1.0
        assert metrics["faults.shard_retries"]["value"] >= 1.0


# --------------------------------------------------------------------------- #
# registry + CLI surface
# --------------------------------------------------------------------------- #
class TestRegistryAndCli:
    RUN_ARGS = [
        "run",
        "--scenario", "gaussian-clusters",
        "--samples", "250",
        "--epochs", "4",
        "--iterations", "1",
        "--budget", "60",
        "--seeds-per-iteration", "4",
        "--queries-per-seed", "6",
        "--seed", "2021",
        "--telemetry",
    ]

    def test_save_and_load_round_trip(self, tmp_path):
        registry = RunRegistry(tmp_path)
        run = registry.create("unit", {})
        run.save_telemetry(_session_with_spans())
        assert run.has_telemetry()
        header, spans = run.load_trace()
        assert header["spans"] == len(spans) == 3
        assert run.load_metrics()["metrics"]["engine.rows"]["value"] == 32.0

    def test_load_trace_missing_names_the_knob(self, tmp_path):
        registry = RunRegistry(tmp_path)
        run = registry.create("unit", {})
        assert not run.has_telemetry()
        with pytest.raises(StoreError, match="telemetry"):
            run.load_trace()
        with pytest.raises(StoreError, match="metrics.json"):
            run.load_metrics()

    def test_cli_campaign_stores_and_renders_trace(self, tmp_path, capsys):
        base = ["--runs-dir", str(tmp_path / "runs")]
        assert cli_main(base + self.RUN_ARGS) == 0
        registry = RunRegistry(tmp_path / "runs")
        run = registry.get("run-0001")
        # --telemetry is recorded in the stored spec (reproducible identity)
        assert run.config["spec"]["policy"]["telemetry"] is True
        header, spans = run.load_trace()
        assert header["spans"] == len(spans) > 0
        assert run.load_metrics()["metrics"]
        capsys.readouterr()
        # the timeline renders from the stored artifact alone
        assert cli_main(base + ["trace", "run-0001"]) == 0
        rendered = capsys.readouterr().out
        assert "coordinator" in rendered and "spans" in rendered
        # chrome export parses
        chrome = tmp_path / "chrome.json"
        assert cli_main(base + ["trace", "run-0001", "--chrome", str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        capsys.readouterr()
        # raw JSON dump parses and matches the span count
        assert cli_main(base + ["trace", "run-0001", "--json"]) == 0
        raw = json.loads(capsys.readouterr().out)
        assert len(raw["spans"]) == header["spans"]
        # show surfaces fault counters and the telemetry summary
        assert cli_main(base + ["show", "run-0001"]) == 0
        shown = capsys.readouterr().out
        assert "fault counters" in shown
        assert "telemetry:" in shown
        # ls --json is machine-readable and flags telemetry
        assert cli_main(base + ["ls", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing[0]["run_id"] == "run-0001"
        assert listing[0]["has_telemetry"] is True
        assert listing[0]["fault_counters"]["worker_respawns"] == 0

    def test_trace_without_artifact_errors(self, tmp_path, capsys):
        registry = RunRegistry(tmp_path / "runs")
        registry.create("bare", {})
        assert cli_main(["--runs-dir", str(tmp_path / "runs"),
                         "trace", "run-0001"]) == 1
        assert "telemetry" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# slow tier: on/off bit-identity across the execution matrix
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestBitIdentityMatrix:
    @pytest.mark.parametrize("transport", ["pickle", "shm", "threads"])
    def test_sharded_transports(
        self, transport, trained_cluster_model, cluster_naturalness,
        operational_cluster_data,
    ):
        x = operational_cluster_data.x[:48]
        y = operational_cluster_data.y[:48]
        results = {}
        for label, enabled in (("off", False), ("on", True)):
            with ShardedQueryEngine(
                trained_cluster_model,
                naturalness=cluster_naturalness,
                batch_size=5,
                num_workers=2,
                transport=transport,
            ) as engine:
                with telemetry.session(enabled=enabled):
                    results[label] = (
                        engine.predict_proba(x),
                        engine.loss_input_gradient(x, y),
                        engine.score_naturalness(x),
                        engine.stats.as_dict(),
                    )
        for on, off in zip(results["on"][:3], results["off"][:3]):
            np.testing.assert_array_equal(on, off)
        assert results["on"][3] == results["off"][3]

    def test_batched(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        x = operational_cluster_data.x[:48]
        engine = BatchedQueryEngine(
            trained_cluster_model, naturalness=cluster_naturalness, batch_size=5
        )
        off = engine.predict_proba(x)
        with telemetry.session():
            on = engine.predict_proba(x)
        np.testing.assert_array_equal(on, off)
