"""Integration tests for the five-step operational testing loop (Figure 1)."""

import numpy as np
import pytest

from repro.core import OperationalTestingLoop, WorkflowConfig
from repro.exceptions import ConfigurationError
from repro.fuzzing import FuzzerConfig
from repro.reliability import StoppingRule
from repro.retraining import RetrainingConfig
from repro.types import CampaignReport


@pytest.fixture(scope="module")
def loop_and_inputs(cluster_profile, clusters_split, cluster_naturalness):
    train, _ = clusters_split
    loop = OperationalTestingLoop(
        profile=cluster_profile,
        train_data=train,
        naturalness=cluster_naturalness,
        fuzzer_config=FuzzerConfig(epsilon=0.1, queries_per_seed=15),
        retraining_config=RetrainingConfig(epochs=4),
        stopping_rule=StoppingRule(target_pmi=0.02, max_iterations=3, confidence=0.85),
        workflow_config=WorkflowConfig(
            test_budget_per_iteration=250,
            seeds_per_iteration=15,
            operational_dataset_size=300,
        ),
        rng=0,
    )
    return loop


class TestWorkflowConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"test_budget_per_iteration": 0},
            {"seeds_per_iteration": 0},
            {"operational_dataset_size": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkflowConfig(**kwargs)


class TestOperationalTestingLoop:
    def test_end_to_end_run(self, loop_and_inputs, trained_cluster_model, operational_cluster_data):
        loop = loop_and_inputs
        final_model, report = loop.run(trained_cluster_model, operational_cluster_data)
        assert isinstance(report, CampaignReport)
        assert 1 <= report.num_iterations <= 3
        assert report.total_test_cases > 0
        assert np.isfinite(report.final_pmi)
        # the returned model must be usable
        predictions = final_model.predict(operational_cluster_data.x[:10])
        assert predictions.shape == (10,)

    def test_original_model_not_modified(
        self, loop_and_inputs, trained_cluster_model, operational_cluster_data
    ):
        weights_before = trained_cluster_model.get_weights()
        loop_and_inputs.run(trained_cluster_model, operational_cluster_data)
        weights_after = trained_cluster_model.get_weights()
        for before, after in zip(weights_before, weights_after):
            for key in before:
                np.testing.assert_allclose(before[key], after[key])

    def test_reliability_does_not_collapse(
        self, loop_and_inputs, trained_cluster_model, operational_cluster_data
    ):
        _, report = loop_and_inputs.run(trained_cluster_model, operational_cluster_data)
        first = report.iterations[0]
        last = report.iterations[-1]
        # retraining on detected operational AEs must not make things much worse
        assert last.pmi_after <= first.pmi_before + 0.05

    def test_iteration_reports_are_consistent(
        self, loop_and_inputs, trained_cluster_model, operational_cluster_data
    ):
        _, report = loop_and_inputs.run(trained_cluster_model, operational_cluster_data)
        for iteration in report.iterations:
            assert iteration.seeds_selected > 0
            assert iteration.test_cases_used > 0
            assert 0.0 <= iteration.pmi_after <= 1.0
            assert iteration.operational_accuracy_after == pytest.approx(
                1.0 - iteration.pmi_after
            )
            assert "pmi_upper_after" in iteration.notes

    def test_synthesises_operational_data_when_missing(
        self, cluster_profile, clusters_split, cluster_naturalness, trained_cluster_model
    ):
        train, _ = clusters_split
        loop = OperationalTestingLoop(
            profile=cluster_profile,
            train_data=train,
            naturalness=cluster_naturalness,
            fuzzer_config=FuzzerConfig(queries_per_seed=10),
            retraining_config=RetrainingConfig(epochs=2),
            stopping_rule=StoppingRule(target_pmi=0.02, max_iterations=1),
            workflow_config=WorkflowConfig(
                test_budget_per_iteration=100,
                seeds_per_iteration=8,
                operational_dataset_size=150,
            ),
            rng=1,
        )
        _, report = loop.run(trained_cluster_model)
        assert report.num_iterations == 1

    def test_detected_aes_accumulate(
        self, loop_and_inputs, trained_cluster_model, operational_cluster_data
    ):
        loop = loop_and_inputs
        before = len(loop.detected_aes)
        _, report = loop.run(trained_cluster_model, operational_cluster_data)
        assert len(loop.detected_aes) >= before
        assert len(loop.detected_aes) - before == report.total_aes
