"""Tests for repro.op.profile."""

import numpy as np
import pytest

from repro.data import GridPartition, make_gaussian_clusters
from repro.exceptions import ProfileError, ShapeError
from repro.op import (
    CellProfile,
    EmpiricalProfile,
    GaussianMixtureProfile,
    ground_truth_profile_for_clusters,
    profile_from_dataset,
)


@pytest.fixture()
def gmm_profile():
    weights = np.array([0.7, 0.3])
    means = np.array([[0.3, 0.3], [0.7, 0.7]])
    variances = np.full((2, 2), 0.01)
    return GaussianMixtureProfile(weights, means, variances, component_labels=np.array([0, 1]))


class TestGaussianMixtureProfile:
    def test_density_higher_at_means(self, gmm_profile):
        at_mean = gmm_profile.density(np.array([[0.3, 0.3]]))[0]
        far = gmm_profile.density(np.array([[0.05, 0.95]]))[0]
        assert at_mean > far

    def test_density_respects_weights(self, gmm_profile):
        heavy = gmm_profile.density(np.array([[0.3, 0.3]]))[0]
        light = gmm_profile.density(np.array([[0.7, 0.7]]))[0]
        assert heavy > light

    def test_log_density_consistent(self, gmm_profile):
        x = np.random.default_rng(0).random((10, 2))
        np.testing.assert_allclose(
            np.log(gmm_profile.density(x)), gmm_profile.log_density(x), atol=1e-9
        )

    def test_responsibilities_sum_to_one(self, gmm_profile):
        x = np.random.default_rng(0).random((20, 2))
        resp = gmm_profile.responsibilities(x)
        np.testing.assert_allclose(resp.sum(axis=1), np.ones(20), atol=1e-12)

    def test_samples_follow_weights(self, gmm_profile):
        x, labels = gmm_profile.sample_labeled(4000, rng=0)
        assert np.mean(labels == 0) == pytest.approx(0.7, abs=0.03)
        assert np.all(x >= 0) and np.all(x <= 1)

    def test_sample_without_labels(self):
        profile = GaussianMixtureProfile(
            np.array([1.0]), np.array([[0.5, 0.5]]), np.array([[0.01, 0.01]])
        )
        x, labels = profile.sample_labeled(10, rng=0)
        assert labels is None
        assert x.shape == (10, 2)

    def test_class_prior(self, gmm_profile):
        np.testing.assert_allclose(gmm_profile.class_prior(2), [0.7, 0.3])

    def test_class_prior_requires_labels(self):
        profile = GaussianMixtureProfile(
            np.array([1.0]), np.array([[0.5, 0.5]]), np.array([[0.01, 0.01]])
        )
        with pytest.raises(ProfileError):
            profile.class_prior(2)

    def test_cell_probabilities_sum_to_one(self, gmm_profile):
        partition = GridPartition(2, bins_per_dim=5)
        probs = gmm_profile.cell_probabilities(partition, num_samples=2000, rng=0)
        assert probs.shape == (25,)
        assert probs.sum() == pytest.approx(1.0)

    def test_wrong_dimension_rejected(self, gmm_profile):
        with pytest.raises(ShapeError):
            gmm_profile.density(np.zeros((3, 5)))

    @pytest.mark.parametrize(
        "weights,means,variances",
        [
            (np.array([0.5]), np.zeros((2, 2)), np.ones((2, 2))),
            (np.array([-0.5, 1.5]), np.zeros((2, 2)), np.ones((2, 2))),
            (np.array([0.5, 0.5]), np.zeros((2, 2)), np.zeros((2, 2))),
        ],
    )
    def test_invalid_construction(self, weights, means, variances):
        with pytest.raises(ProfileError):
            GaussianMixtureProfile(weights, means, variances)

    def test_invalid_sample_size(self, gmm_profile):
        with pytest.raises(ProfileError):
            gmm_profile.sample(0)


class TestEmpiricalProfile:
    def test_density_peaks_near_samples(self):
        samples = np.array([[0.2, 0.2], [0.8, 0.8]])
        profile = EmpiricalProfile(samples, bandwidth=0.05)
        near = profile.density(np.array([[0.21, 0.2]]))[0]
        far = profile.density(np.array([[0.5, 0.5]]))[0]
        assert near > far

    def test_weights_change_density(self):
        samples = np.array([[0.2, 0.2], [0.8, 0.8]])
        skewed = EmpiricalProfile(samples, weights=np.array([0.9, 0.1]), bandwidth=0.05)
        assert skewed.density(np.array([[0.2, 0.2]]))[0] > skewed.density(np.array([[0.8, 0.8]]))[0]

    def test_sampling_respects_weights(self):
        samples = np.array([[0.0, 0.0], [1.0, 1.0]])
        profile = EmpiricalProfile(
            samples, labels=np.array([0, 1]), weights=np.array([0.85, 0.15])
        )
        _, labels = profile.sample_labeled(3000, rng=0)
        assert np.mean(labels == 0) == pytest.approx(0.85, abs=0.03)

    def test_resample_noise_moves_points(self):
        samples = np.full((5, 3), 0.5)
        noisy = EmpiricalProfile(samples, resample_noise=0.05)
        drawn = noisy.sample(50, rng=0)
        assert not np.allclose(drawn, 0.5)
        assert np.all(drawn >= 0) and np.all(drawn <= 1)

    def test_class_prior(self):
        profile = EmpiricalProfile(np.zeros((4, 2)), labels=np.array([0, 0, 1, 1]))
        np.testing.assert_allclose(profile.class_prior(2), [0.5, 0.5])

    def test_class_prior_requires_labels(self):
        with pytest.raises(ProfileError):
            EmpiricalProfile(np.zeros((4, 2))).class_prior(2)

    def test_invalid_construction(self):
        with pytest.raises(ProfileError):
            EmpiricalProfile(np.zeros((0, 2)))
        with pytest.raises(ProfileError):
            EmpiricalProfile(np.zeros((3, 2)), weights=np.array([1.0, 1.0]))
        with pytest.raises(ProfileError):
            EmpiricalProfile(np.zeros((3, 2)), bandwidth=-1.0)


class TestCellProfile:
    def test_density_and_sampling(self):
        partition = GridPartition(2, bins_per_dim=2)
        probs = np.array([0.7, 0.1, 0.1, 0.1])
        profile = CellProfile(partition, probs)
        # density at a point in cell 0 equals its cell probability
        point = partition.cell_center(0)[None, :]
        assert profile.density(point)[0] == pytest.approx(0.7)
        samples = profile.sample(2000, rng=0)
        cells = partition.assign(samples)
        assert np.mean(cells == 0) == pytest.approx(0.7, abs=0.05)

    def test_cell_probabilities_same_partition(self):
        partition = GridPartition(2, bins_per_dim=2)
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        profile = CellProfile(partition, probs)
        np.testing.assert_allclose(profile.cell_probabilities(partition), probs)

    def test_invalid_construction(self):
        partition = GridPartition(2, bins_per_dim=2)
        with pytest.raises(ProfileError):
            CellProfile(partition, np.array([0.5, 0.5]))
        with pytest.raises(ProfileError):
            CellProfile(partition, np.array([-1.0, 1.0, 0.5, 0.5]))


class TestFactories:
    def test_ground_truth_matches_generator(self):
        priors = [0.4, 0.3, 0.2, 0.1]
        dataset = make_gaussian_clusters(
            5000, num_classes=4, cluster_std=0.05, class_priors=priors, rng=0
        )
        profile = ground_truth_profile_for_clusters(4, 2, 0.05, class_priors=priors)
        # data drawn from the generator should have much higher density than
        # uniform points under the ground-truth profile
        data_density = profile.density(dataset.x[:200]).mean()
        uniform_density = profile.density(np.random.default_rng(1).random((200, 2))).mean()
        assert data_density > 2 * uniform_density
        np.testing.assert_allclose(profile.class_prior(4), np.array(priors))

    def test_profile_from_dataset_reweights_classes(self):
        dataset = make_gaussian_clusters(400, num_classes=4, rng=0)
        profile = profile_from_dataset(dataset, class_priors=[0.7, 0.1, 0.1, 0.1])
        np.testing.assert_allclose(profile.class_prior(4), [0.7, 0.1, 0.1, 0.1], atol=1e-9)
        _, labels = profile.sample_labeled(2000, rng=0)
        assert np.mean(labels == 0) == pytest.approx(0.7, abs=0.04)

    def test_profile_from_dataset_invalid_priors(self):
        dataset = make_gaussian_clusters(100, num_classes=4, rng=0)
        with pytest.raises(ProfileError):
            profile_from_dataset(dataset, class_priors=[0.5, 0.5])

    def test_normalized_density_reference_mean_one(self):
        dataset = make_gaussian_clusters(300, num_classes=4, rng=0)
        profile = profile_from_dataset(dataset)
        values = profile.normalized_density(dataset.x, dataset.x)
        assert np.mean(values) == pytest.approx(1.0, rel=0.2)
