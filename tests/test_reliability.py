"""Tests for the cell-based reliability assessment (RQ5)."""

import numpy as np
import pytest

from repro.data import GridPartition
from repro.exceptions import ReliabilityError
from repro.reliability import (
    BayesianCellModel,
    BetaPrior,
    CellEvidence,
    CellEvidenceTable,
    CellRobustnessEvaluator,
    ReliabilityAssessor,
    ReliabilityEstimate,
    StoppingRule,
)


class TestCellEvidence:
    def test_unastuteness(self):
        evidence = CellEvidence(cell_id=0, label=1, trials=10, failures=3)
        assert evidence.unastuteness == pytest.approx(0.3)

    def test_unastuteness_no_trials(self):
        assert CellEvidence(cell_id=0, label=None).unastuteness == 0.0

    def test_merge(self):
        a = CellEvidence(cell_id=2, label=1, trials=10, failures=2, support=3)
        b = CellEvidence(cell_id=2, label=1, trials=5, failures=1, support=2)
        merged = a.merge(b)
        assert merged.trials == 15
        assert merged.failures == 3
        assert merged.support == 5

    def test_merge_different_cells_rejected(self):
        with pytest.raises(ReliabilityError):
            CellEvidence(cell_id=0, label=1).merge(CellEvidence(cell_id=1, label=1))


class TestCellEvidenceTable:
    def test_add_merges_same_cell(self):
        partition = GridPartition(2, bins_per_dim=2)
        table = CellEvidenceTable(partition=partition)
        table.add(CellEvidence(cell_id=0, label=1, trials=4, failures=1))
        table.add(CellEvidence(cell_id=0, label=1, trials=6, failures=2))
        assert table.cells[0].trials == 10
        assert table.cells[0].failures == 3

    def test_vectors(self):
        partition = GridPartition(2, bins_per_dim=2)
        table = CellEvidenceTable(partition=partition)
        table.add(CellEvidence(cell_id=1, label=0, trials=10, failures=5))
        unastuteness = table.unastuteness_vector()
        trials = table.trials_vector()
        failures = table.failures_vector()
        assert unastuteness[1] == pytest.approx(0.5)
        assert unastuteness[0] == 0.0
        assert trials[1] == 10 and failures[1] == 5
        assert table.evaluated_cells == [1]


class TestCellRobustnessEvaluator:
    def test_collects_evidence_for_occupied_cells(
        self, trained_cluster_model, operational_cluster_data
    ):
        partition = GridPartition(2, bins_per_dim=6)
        evaluator = CellRobustnessEvaluator(partition, samples_per_cell=5)
        table = evaluator.evaluate(trained_cluster_model, operational_cluster_data, rng=0)
        occupied = set(np.unique(partition.assign(operational_cluster_data.x)).tolist())
        assert set(table.cells) == occupied
        assert table.queries > 0
        for evidence in table.cells.values():
            assert evidence.trials > 0
            assert 0 <= evidence.failures <= evidence.trials
            assert evidence.label is not None

    def test_accurate_model_has_low_unastuteness(
        self, trained_cluster_model, operational_cluster_data
    ):
        partition = GridPartition(2, bins_per_dim=6)
        evaluator = CellRobustnessEvaluator(partition, samples_per_cell=5)
        table = evaluator.evaluate(trained_cluster_model, operational_cluster_data, rng=0)
        weights = np.array([table.cells[c].support for c in table.cells], dtype=float)
        values = np.array([table.cells[c].unastuteness for c in table.cells])
        weighted_mean = float(np.average(values, weights=weights))
        assert weighted_mean < 0.35

    def test_subset_of_cells(self, trained_cluster_model, operational_cluster_data):
        partition = GridPartition(2, bins_per_dim=6)
        evaluator = CellRobustnessEvaluator(partition, samples_per_cell=3)
        table = evaluator.evaluate(
            trained_cluster_model, operational_cluster_data, cell_ids=np.array([0, 1]), rng=0
        )
        assert set(table.cells).issubset({0, 1})

    def test_invalid_config(self):
        with pytest.raises(ReliabilityError):
            CellRobustnessEvaluator(GridPartition(2, 4), samples_per_cell=0)


class TestBayesianCellModel:
    def test_posterior_mean_between_prior_and_mle(self):
        model = BayesianCellModel(BetaPrior(1.0, 9.0))
        posterior = model.posterior_for(trials=10, failures=5)
        assert 0.1 < posterior.mean < 0.5

    def test_upper_bound_above_mean_and_decreasing_with_evidence(self):
        model = BayesianCellModel(BetaPrior(1.0, 9.0))
        weak = model.posterior_for(trials=5, failures=0)
        strong = model.posterior_for(trials=500, failures=0)
        assert weak.upper_bound(0.95) > weak.mean
        assert strong.upper_bound(0.95) < weak.upper_bound(0.95)

    def test_lower_bound_below_mean(self):
        posterior = BayesianCellModel().posterior_for(trials=20, failures=10)
        assert posterior.lower_bound(0.95) < posterior.mean

    def test_invalid_evidence(self):
        with pytest.raises(ReliabilityError):
            BayesianCellModel().posterior_for(trials=2, failures=3)

    def test_invalid_prior(self):
        with pytest.raises(ReliabilityError):
            BetaPrior(alpha=0.0)

    def test_invalid_confidence(self):
        posterior = BayesianCellModel().posterior_for(10, 1)
        with pytest.raises(ReliabilityError):
            posterior.upper_bound(1.5)

    def test_unexplored_cells_pessimistic_by_default(self):
        partition = GridPartition(2, bins_per_dim=2)
        table = CellEvidenceTable(partition=partition)
        table.add(CellEvidence(cell_id=0, label=0, trials=100, failures=0))
        model = BayesianCellModel(BetaPrior(1.0, 9.0))
        means = model.posterior_means(table)
        assert means[0] < 0.02
        assert means[1] == pytest.approx(0.1)  # the prior mean

    def test_unexplored_cells_optimistic_when_configured(self):
        partition = GridPartition(2, bins_per_dim=2)
        table = CellEvidenceTable(partition=partition)
        model = BayesianCellModel(unexplored_pessimistic=False)
        assert np.all(model.posterior_means(table) < 0.01)


class TestReliabilityAssessor:
    @pytest.fixture()
    def assessor(self, cluster_profile):
        partition = GridPartition(2, bins_per_dim=6)
        return ReliabilityAssessor(
            partition=partition, profile=cluster_profile, confidence=0.9, rng=0
        )

    def test_cell_probabilities_sum_to_one(self, assessor):
        assert assessor.cell_probabilities.sum() == pytest.approx(1.0)

    def test_assess_produces_consistent_estimate(
        self, assessor, trained_cluster_model, operational_cluster_data
    ):
        estimate = assessor.assess(trained_cluster_model, operational_cluster_data, rng=0)
        assert isinstance(estimate, ReliabilityEstimate)
        assert 0.0 <= estimate.pmi <= 1.0
        assert estimate.pmi_lower <= estimate.pmi <= estimate.pmi_upper
        assert estimate.operational_accuracy == pytest.approx(1.0 - estimate.pmi)
        assert estimate.cells_evaluated > 0
        assert 0.0 < estimate.total_op_mass_evaluated <= 1.0
        assert estimate.queries > 0

    def test_pmi_matches_manual_weighted_sum(
        self, assessor, trained_cluster_model, operational_cluster_data
    ):
        table = assessor.evaluator.evaluate(
            trained_cluster_model, operational_cluster_data, rng=0
        )
        estimate = assessor.assess_from_evidence(table)
        manual = float(
            np.dot(assessor.cell_probabilities, assessor.bayes.posterior_means(table))
        )
        assert estimate.pmi == pytest.approx(manual)

    def test_bad_model_scores_worse(self, assessor, trained_cluster_model, operational_cluster_data):
        from repro.nn import build_mlp_classifier

        untrained = build_mlp_classifier(2, 4, hidden_sizes=(8,), rng=0)
        good = assessor.assess(trained_cluster_model, operational_cluster_data, rng=0)
        bad = assessor.assess(untrained, operational_cluster_data, rng=0)
        assert bad.pmi > good.pmi

    def test_monte_carlo_accuracy_consistent(
        self, assessor, trained_cluster_model, operational_cluster_data
    ):
        mc = assessor.operational_accuracy_monte_carlo(
            trained_cluster_model, operational_cluster_data, num_samples=500, rng=0
        )
        estimate = assessor.assess(trained_cluster_model, operational_cluster_data, rng=0)
        assert abs(mc - estimate.operational_accuracy) < 0.25

    def test_identify_weak_cells(self, assessor, trained_cluster_model, operational_cluster_data):
        table = assessor.evaluator.evaluate(
            trained_cluster_model, operational_cluster_data, rng=0
        )
        weak = assessor.identify_weak_cells(table, top_k=5)
        assert 0 < len(weak) <= 5
        with pytest.raises(ReliabilityError):
            assessor.identify_weak_cells(table, top_k=0)

    def test_meets_target(self):
        estimate = ReliabilityEstimate(
            pmi=0.01,
            pmi_upper=0.03,
            pmi_lower=0.005,
            operational_accuracy=0.99,
            confidence=0.9,
            cells_evaluated=10,
            total_op_mass_evaluated=0.9,
        )
        assert estimate.meets_target(0.05, conservative=True)
        assert not estimate.meets_target(0.02, conservative=True)
        assert estimate.meets_target(0.02, conservative=False)
        with pytest.raises(ReliabilityError):
            estimate.meets_target(0.0)

    def test_invalid_confidence(self, cluster_profile):
        with pytest.raises(ReliabilityError):
            ReliabilityAssessor(GridPartition(2, 4), cluster_profile, confidence=1.0)


class TestStoppingRule:
    def _estimate(self, pmi_upper):
        return ReliabilityEstimate(
            pmi=pmi_upper / 2,
            pmi_upper=pmi_upper,
            pmi_lower=0.0,
            operational_accuracy=1 - pmi_upper / 2,
            confidence=0.9,
            cells_evaluated=5,
            total_op_mass_evaluated=0.8,
        )

    def test_stops_when_target_met(self):
        rule = StoppingRule(target_pmi=0.05, max_iterations=10)
        assert rule.should_stop(self._estimate(0.01), iteration=0, test_cases_used=10)

    def test_continues_when_not_met(self):
        rule = StoppingRule(target_pmi=0.05, max_iterations=10)
        assert not rule.should_stop(self._estimate(0.2), iteration=0, test_cases_used=10)

    def test_stops_at_max_iterations(self):
        rule = StoppingRule(target_pmi=0.001, max_iterations=3)
        assert rule.should_stop(self._estimate(0.2), iteration=2, test_cases_used=10)

    def test_stops_at_budget(self):
        rule = StoppingRule(target_pmi=0.001, max_iterations=10, max_test_cases=100)
        assert rule.should_stop(self._estimate(0.2), iteration=0, test_cases_used=150)

    def test_non_conservative_uses_point_estimate(self):
        rule = StoppingRule(target_pmi=0.06, conservative=False, max_iterations=10)
        assert rule.should_stop(self._estimate(0.1), iteration=0, test_cases_used=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_pmi": 0.0},
            {"confidence": 1.0},
            {"max_iterations": 0},
            {"max_test_cases": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ReliabilityError):
            StoppingRule(**kwargs)
