"""Fault-tolerant execution: retry policy, injection, supervision, chaos.

Fast tier: RetryPolicy/FaultPlan serialization and validation, supervisor
unit behaviour against scripted failures (dead pools, hung workers,
exhaustion), engine-level bit-identity under real SIGKILLs on the shared
cluster fixtures, per-record cache CRC recovery, the workflow's
degrade-time checkpoint, and the CLI's exit-2 fingerprint diagnosis.

Slow tier (``pytest -m slow``): the chaos scenario matrix — for each
scenario of the differential suite, a campaign that loses a worker to a
real SIGKILL (and one that loses *all* workers and degrades) must match
the clean run bit-identically: per-seed queries, detections, adversarial
examples and reliability estimates.
"""

import pickle
import warnings
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from functools import lru_cache

import numpy as np
import pytest

from repro.core import OperationalTestingLoop, WorkflowConfig
from repro.engine import (
    BatchedQueryEngine,
    QueryStats,
    ShardedQueryEngine,
    plan_shards,
)
from repro.engine.batching import FAULT_COUNTER_FIELDS
from repro.evaluation import make_scenario
from repro.exceptions import ConfigurationError, FaultToleranceError
from repro.faults import (
    DegradeEvent,
    FaultPlan,
    RetryPolicy,
    ShardSupervisor,
    corrupt_cache_segments,
    on_degrade,
)
from repro.faults.supervision import _notify_degrade
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.reliability import ReliabilityAssessor, StoppingRule
from repro.retraining import RetrainingConfig
from repro.runtime import ExecutionPolicy
from repro.store import PersistentQueryCache, read_checkpoint
from repro.store.cache import _HEADER
from repro.store.cli import main as cli_main

SCENARIO_MATRIX = ["two-moons", "gaussian-clusters", "glyph-digits"]

#: Reduced scenario sizes so the chaos matrix stays minutes, not hours.
SCENARIO_OVERRIDES = {
    "two-moons": dict(num_samples=600, epochs=12),
    "gaussian-clusters": dict(num_samples=600, epochs=12),
    "glyph-digits": dict(num_samples=500, image_size=10, epochs=8),
}

#: Kill every worker slot at first contact; with a zero respawn budget the
#: engine must degrade to in-process execution.
KILL_ALL = FaultPlan(kills=((0, 0), (1, 0)))
NO_RETRY = RetryPolicy(max_attempts=1, max_respawns=0, backoff_base_s=0.0)


@lru_cache(maxsize=None)
def _scenario(name):
    return make_scenario(name, rng=2021, **SCENARIO_OVERRIDES[name])


def _sharded_policy(**overrides):
    # batch_size 8: campaign dispatches span several shards, so both worker
    # slots actually receive work and the injected kills really fire
    defaults = dict(backend="sharded", num_workers=2, cache=True, batch_size=8)
    defaults.update(overrides)
    return ExecutionPolicy(**defaults)


def _fuzz(scenario, policy, *, n_seeds=16, rng=2021):
    fuzzer = OperationalFuzzer(
        naturalness=scenario.naturalness,
        config=FuzzerConfig(
            epsilon=0.12,
            queries_per_seed=20,
            naturalness_threshold=0.3,
            execution="population",
            policy=policy,
        ),
        natural_pool=scenario.operational_data.x,
    )
    return fuzzer.fuzz(
        scenario.model,
        scenario.operational_data.x[:n_seeds],
        scenario.operational_data.y[:n_seeds],
        rng=rng,
    )


def _assert_campaigns_identical(reference, candidate):
    """Per-seed queries, detections and AEs must be bit-identical."""
    assert len(reference.per_seed) == len(candidate.per_seed)
    for ref, cand in zip(reference.per_seed, candidate.per_seed):
        assert ref.seed_index == cand.seed_index
        assert ref.queries == cand.queries
        assert ref.best_fitness == cand.best_fitness
        assert (ref.adversarial_example is None) == (cand.adversarial_example is None)
        if ref.adversarial_example is not None:
            np.testing.assert_array_equal(
                ref.adversarial_example.perturbed,
                cand.adversarial_example.perturbed,
            )
            assert (
                ref.adversarial_example.predicted_label
                == cand.adversarial_example.predicted_label
            )
    assert reference.total_queries == candidate.total_queries
    assert reference.detection_rate == candidate.detection_rate


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_round_trip_through_dict(self):
        policy = RetryPolicy(
            max_attempts=3,
            max_respawns=1,
            backoff_base_s=0.1,
            backoff_ceiling_s=2.0,
            shard_timeout_s=30.0,
            on_exhaustion="fail",
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown RetryPolicy"):
            RetryPolicy.from_dict({"max_attempts": 2, "jitter": 0.1})

    @pytest.mark.parametrize(
        "bad",
        [
            dict(max_attempts=0),
            dict(max_respawns=-1),
            dict(backoff_base_s=-0.1),
            dict(shard_timeout_s=0),
            dict(on_exhaustion="panic"),
        ],
    )
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**bad)

    def test_backoff_is_exponential_with_ceiling(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_ceiling_s=0.35)
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.35)  # ceiling
        assert policy.backoff_delay(10) == pytest.approx(0.35)
        with pytest.raises(ConfigurationError):
            policy.backoff_delay(0)

    def test_execution_policy_coerces_mapping_and_serializes(self):
        policy = ExecutionPolicy(
            backend="sharded",
            num_workers=2,
            retry={"max_attempts": 4},
            faults={"kills": [[0, 1]], "seed": 9},
        )
        assert policy.retry == RetryPolicy(max_attempts=4)
        assert policy.faults == FaultPlan(kills=((0, 1),), seed=9)
        rebuilt = ExecutionPolicy.from_dict(policy.to_dict())
        assert rebuilt.retry == policy.retry
        assert rebuilt.faults == policy.faults

    def test_execution_policy_rejects_non_policy_values(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(retry="twice")
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(faults=42)


# --------------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_round_trip_and_normalisation(self):
        plan = FaultPlan(
            kills=[[1, 2]], delays=[(0, 0.5)], corrupt_segments=[[0, 16]], seed=3
        )
        assert plan.kills == ((1, 2),)
        assert plan.delays == ((0, 0.5),)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown FaultPlan"):
            FaultPlan.from_dict({"explosions": []})

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kills=((-1, 0),)),
            dict(delays=((0, -1.0),)),
            dict(corrupt_segments=((0, 0),)),
            dict(kills=((1,),)),
        ],
    )
    def test_invalid_entries_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan(**bad)

    def test_plan_is_picklable_for_pool_initargs(self):
        plan = FaultPlan(kills=((0, 1),), delays=((2, 0.1),))
        assert pickle.loads(pickle.dumps(plan)) == plan


# --------------------------------------------------------------------------- #
# supervisor units (scripted failures, no real processes)
# --------------------------------------------------------------------------- #
class _StubHeartbeat:
    """Coordinator-settable heartbeat ages for supervisor unit tests."""

    def __init__(self, num_workers, age=0.0):
        self.ages = [age] * num_workers
        self.resets = []

    def age(self, worker):
        return self.ages[worker]

    def reset(self, worker):
        self.ages[worker] = 0.0
        self.resets.append(worker)


class _DoneFuture:
    def __init__(self, shard):
        self._value = np.full(shard.stop - shard.start, float(shard.index))

    def result(self, timeout=None):
        return self._value, QueryStats(model_calls=1)


class _NeverFuture:
    def result(self, timeout=None):
        raise FutureTimeoutError()


class _Harness:
    """One supervisor over scripted worker behaviour."""

    def __init__(self, retry, num_workers=2, broken=(), hung=()):
        self.total = QueryStats()
        self.respawn_calls = []
        self.broken = set(broken)  # workers whose pool breaks at submit once
        self.hung = set(hung)  # workers whose futures never complete
        self.heartbeat = _StubHeartbeat(num_workers)
        self.supervisor = ShardSupervisor(
            retry=retry,
            num_workers=num_workers,
            heartbeat=self.heartbeat,
            respawn_worker=self._respawn,
            absorb=self.total.merge,
            poll_interval=0.01,
        )

    def _respawn(self, worker, rebuild):
        self.respawn_calls.append((worker, rebuild))
        if rebuild:
            self.broken.discard(worker)
            self.hung.discard(worker)

    def submit(self, worker, shard):
        if worker in self.broken:
            raise BrokenExecutor()
        if worker in self.hung:
            return _NeverFuture()
        return _DoneFuture(shard)

    def run_local(self, shard):
        return (
            np.full(shard.stop - shard.start, float(shard.index)),
            QueryStats(model_calls=1),
        )

    def execute(self, shards):
        return self.supervisor.execute(shards, self.submit, self.run_local)


class TestShardSupervisorUnits:
    def test_clean_run_gathers_in_shard_order(self):
        harness = _Harness(RetryPolicy())
        shards = plan_shards(10, 3, 2)
        pieces = harness.execute(shards)
        assert [piece[0] for piece in pieces] == [0.0, 1.0, 2.0, 3.0]
        assert harness.total.model_calls == len(shards)
        assert all(
            getattr(harness.total, field) == 0 for field in FAULT_COUNTER_FIELDS
        )

    def test_broken_pool_at_submit_respawns_and_replans(self):
        harness = _Harness(RetryPolicy(backoff_base_s=0.0), broken={1})
        shards = plan_shards(12, 3, 2)
        pieces = harness.execute(shards)
        assert [piece[0] for piece in pieces] == [0.0, 1.0, 2.0, 3.0]
        assert harness.respawn_calls == [(1, True)]
        assert harness.heartbeat.resets == [1]
        assert harness.total.worker_respawns == 1
        assert not harness.supervisor.degraded

    def test_stale_heartbeat_buries_hung_worker_and_retries_elsewhere(self):
        retry = RetryPolicy(
            max_attempts=2, max_respawns=0, backoff_base_s=0.0, shard_timeout_s=0.02
        )
        harness = _Harness(retry, hung={0})
        harness.heartbeat.ages[0] = 10.0  # stale: way past shard_timeout_s
        shards = plan_shards(8, 2, 2)
        pieces = harness.execute(shards)
        assert [piece[0] for piece in pieces] == [0.0, 1.0, 2.0, 3.0]
        # respawn budget is 0: the slot is buried, not rebuilt
        assert harness.respawn_calls == [(0, False)]
        assert harness.supervisor.alive_workers() == [1]
        assert harness.total.shard_retries >= 1
        assert not harness.supervisor.degraded

    def test_exhaustion_fail_raises_fault_tolerance_error(self):
        retry = RetryPolicy(
            max_attempts=1, max_respawns=0, backoff_base_s=0.0, on_exhaustion="fail"
        )
        harness = _Harness(retry, broken={0, 1})
        with pytest.raises(FaultToleranceError, match="on_exhaustion=fail"):
            harness.execute(plan_shards(6, 2, 2))

    def test_exhaustion_degrades_notifies_once_and_sticks(self):
        retry = RetryPolicy(max_attempts=1, max_respawns=0, backoff_base_s=0.0)
        harness = _Harness(retry, broken={0, 1})
        events = []
        with on_degrade(events.append):
            first = harness.execute(plan_shards(6, 2, 2))
            second = harness.execute(plan_shards(4, 2, 2))
        assert [piece[0] for piece in first] == [0.0, 1.0, 2.0]
        assert [piece[0] for piece in second] == [0.0, 1.0]
        assert harness.supervisor.degraded
        assert len(events) == 1  # notified exactly once, then sticky
        assert isinstance(events[0], DegradeEvent) and events[0].reason
        assert harness.total.degraded_shards == 5
        assert harness.total.model_calls == 5


# --------------------------------------------------------------------------- #
# engine-level fault tolerance (real worker processes, real SIGKILLs)
# --------------------------------------------------------------------------- #
class TestShardedEngineFaultTolerance:
    @pytest.fixture()
    def clean_reference(self, trained_cluster_model, operational_cluster_data):
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=6)
        x = operational_cluster_data.x[:32]
        return x, engine.predict_proba(x), engine.stats

    def test_one_worker_sigkill_is_bit_identical(
        self, trained_cluster_model, clean_reference
    ):
        x, expected, clean_stats = clean_reference
        engine = ShardedQueryEngine(
            trained_cluster_model,
            batch_size=6,
            num_workers=2,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=FaultPlan(kills=((1, 1),)),
        )
        try:
            np.testing.assert_array_equal(engine.predict_proba(x), expected)
            assert engine.stats.worker_respawns >= 1
            assert engine.stats.shard_retries >= 1
            # non-fault counters are exactly the clean run's: lost
            # executions never contribute accounting
            for field, value in clean_stats.as_dict().items():
                if field not in FAULT_COUNTER_FIELDS:
                    assert getattr(engine.stats, field) == value, field
        finally:
            engine.close()

    def test_all_workers_killed_degrades_bit_identical(
        self, trained_cluster_model, clean_reference
    ):
        x, expected, _ = clean_reference
        engine = ShardedQueryEngine(
            trained_cluster_model,
            batch_size=6,
            num_workers=2,
            retry=NO_RETRY,
            faults=KILL_ALL,
        )
        try:
            events = []
            with on_degrade(events.append):
                np.testing.assert_array_equal(engine.predict_proba(x), expected)
                # degradation is sticky: later dispatches stay in-process
                np.testing.assert_array_equal(engine.predict_proba(x), expected)
            assert len(events) == 1
            assert engine.stats.degraded_shards > 0
        finally:
            engine.close()

    def test_on_exhaustion_fail_raises_at_engine_level(self, trained_cluster_model):
        engine = ShardedQueryEngine(
            trained_cluster_model,
            batch_size=6,
            num_workers=2,
            retry=RetryPolicy(
                max_attempts=1, max_respawns=0, backoff_base_s=0.0,
                on_exhaustion="fail",
            ),
            faults=KILL_ALL,
        )
        try:
            with pytest.raises(FaultToleranceError):
                engine.predict_proba(np.zeros((24, 2)))
        finally:
            engine.close()

    def test_hung_worker_detected_and_recovered(
        self, trained_cluster_model, clean_reference
    ):
        x, expected, _ = clean_reference
        # shard 0 sleeps past the heartbeat deadline wherever it runs, so
        # both attempts look hung; the supervisor must kill, retry, exhaust
        # and finally degrade — still bit-identical
        engine = ShardedQueryEngine(
            trained_cluster_model,
            batch_size=6,
            num_workers=2,
            retry=RetryPolicy(
                max_attempts=2, max_respawns=1, backoff_base_s=0.0,
                shard_timeout_s=0.25,
            ),
            faults=FaultPlan(delays=((0, 1.0),)),
        )
        try:
            np.testing.assert_array_equal(engine.predict_proba(x), expected)
            assert engine.stats.worker_respawns >= 1
        finally:
            engine.close()

    def test_retry_and_faults_flow_from_execution_policy(self, trained_cluster_model):
        policy = _sharded_policy(
            retry=RetryPolicy(max_attempts=5), faults=FaultPlan(seed=11)
        )
        engine = policy.build_engine(trained_cluster_model)
        try:
            assert engine.retry == RetryPolicy(max_attempts=5)
            assert engine.faults == FaultPlan(seed=11)
        finally:
            engine.close()

    def test_invalid_retry_and_faults_rejected(self, trained_cluster_model):
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine(trained_cluster_model, num_workers=2, retry="never")
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine(trained_cluster_model, num_workers=2, faults=[1, 2])


# --------------------------------------------------------------------------- #
# per-record cache CRC (corruption recovery)
# --------------------------------------------------------------------------- #
class TestCacheCorruptionRecovery:
    @pytest.fixture()
    def populated(self, tmp_path):
        cache = PersistentQueryCache(tmp_path / "cache")
        rows = [np.arange(4, dtype=float) + i for i in range(6)]
        for i, row in enumerate(rows):
            cache.put(row, np.array([i, i + 0.5]))
        segment = cache._own_segment
        offsets = sorted(offset for _, offset in cache._index.values())
        cache.close()
        return tmp_path / "cache", rows, segment, offsets

    def test_crc_corrupt_record_skipped_rest_kept(self, populated):
        root, rows, segment, offsets = populated
        blob = bytearray(segment.read_bytes())
        blob[offsets[2] + _HEADER.size + 5] ^= 0xFF  # one payload byte
        segment.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="corrupt record"):
            cache = PersistentQueryCache(root)
        assert cache.corrupt_records == 1
        hits = [cache.get(row) is not None for row in rows]
        assert hits == [True, True, False, True, True, True]
        for i in (0, 1, 3, 4, 5):
            np.testing.assert_array_equal(
                cache.get(rows[i]), np.array([i, i + 0.5])
            )
        # refresh never double-counts already-confirmed corruption
        assert cache.refresh() == 0
        assert cache.corrupt_records == 1
        cache.close()

    def test_smashed_magic_resyncs_on_next_record(self, populated):
        root, rows, segment, offsets = populated
        blob = bytearray(segment.read_bytes())
        blob[offsets[1] : offsets[1] + 4] = b"XXXX"
        segment.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning):
            cache = PersistentQueryCache(root)
        # record 1 lost its framing; resync drops record 2's bytes too (they
        # are unreachable without record 1's lengths) but finds 3, 4, 5
        assert cache.get(rows[0]) is not None
        assert cache.get(rows[1]) is None
        assert all(cache.get(rows[i]) is not None for i in (3, 4, 5))
        assert cache.corrupt_records >= 1
        cache.close()

    def test_torn_tail_is_not_corruption_and_refresh_completes_it(self, populated):
        root, rows, segment, _ = populated
        blob = segment.read_bytes()
        segment.write_bytes(blob[:-5])  # writer killed mid-append
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a torn tail must not warn
            cache = PersistentQueryCache(root)
        assert len(cache) == len(rows) - 1
        assert cache.corrupt_records == 0
        # the writer "comes back" and completes the record
        with open(segment, "ab") as handle:
            handle.write(blob[-5:])
        assert cache.refresh() == 1
        assert len(cache) == len(rows)
        assert cache.corrupt_records == 0
        cache.close()

    def test_fault_plan_corruption_is_deterministic(self, populated, tmp_path):
        root, rows, segment, _ = populated
        pristine = segment.read_bytes()
        plan = FaultPlan(corrupt_segments=((0, 8),), seed=13)
        assert corrupt_cache_segments(plan, root) == 1
        first = segment.read_bytes()
        segment.write_bytes(pristine)
        assert corrupt_cache_segments(plan, root) == 1
        assert segment.read_bytes() == first  # same seed, same damage
        # out-of-range ordinals are ignored, not an error
        assert corrupt_cache_segments(
            FaultPlan(corrupt_segments=((99, 8),)), root
        ) == 0

    def test_engine_surfaces_corrupt_records_stat(
        self, populated, trained_cluster_model
    ):
        root, rows, segment, offsets = populated
        blob = bytearray(segment.read_bytes())
        blob[offsets[0] + _HEADER.size] ^= 0xFF
        segment.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning):
            cache = PersistentQueryCache(root)
        engine = BatchedQueryEngine(trained_cluster_model, cache=cache)
        assert engine.stats.cache_corrupt_records == 1
        assert engine.stats.as_dict()["cache_corrupt_records"] == 1


# --------------------------------------------------------------------------- #
# workflow: degrade-time checkpoint and end-to-end degradation
# --------------------------------------------------------------------------- #
class _DegradeProbeRule(StoppingRule):
    """Fires a degrade event during iteration 1 and records what it saw.

    Carries no extra dataclass fields, so the campaign fingerprint matches a
    plain StoppingRule with the same knobs.
    """

    probe = {}

    def should_stop(self, estimate, iteration, test_cases_used):
        if iteration == 1 and not self.probe.get("fired"):
            path = self.probe["checkpoint"]
            self.probe["existed_before"] = path.exists()
            _notify_degrade(DegradeEvent(reason="probe"))
            self.probe["existed_after"] = path.exists()
            self.probe["fired"] = True
        return super().should_stop(estimate, iteration, test_cases_used)


class TestWorkflowDegradation:
    def _loop(self, profile, train, naturalness, rule, policy):
        return OperationalTestingLoop(
            profile=profile,
            train_data=train,
            naturalness=naturalness,
            fuzzer_config=FuzzerConfig(epsilon=0.1, queries_per_seed=8),
            retraining_config=RetrainingConfig(epochs=2),
            stopping_rule=rule,
            workflow_config=WorkflowConfig(
                test_budget_per_iteration=100,
                seeds_per_iteration=6,
                policy=policy,
            ),
            rng=21,
        )

    def test_degrade_event_writes_checkpoint_of_last_completed_iteration(
        self,
        tmp_path,
        cluster_profile,
        clusters_split,
        cluster_naturalness,
        trained_cluster_model,
        operational_cluster_data,
    ):
        train, _ = clusters_split
        checkpoint = tmp_path / "loop.ckpt"
        # cadence 100: the periodic path never saves inside 3 iterations, so
        # any checkpoint on disk was written by the degrade listener
        rule = _DegradeProbeRule(target_pmi=1e-6, max_iterations=3)
        _DegradeProbeRule.probe = {"checkpoint": checkpoint}
        loop = self._loop(
            cluster_profile,
            train,
            cluster_naturalness,
            rule,
            ExecutionPolicy(cache=True, checkpoint_every=100),
        )
        loop.run(
            trained_cluster_model,
            operational_cluster_data,
            checkpoint_path=str(checkpoint),
        )
        probe = _DegradeProbeRule.probe
        assert probe["fired"]
        assert not probe["existed_before"]
        assert probe["existed_after"]
        # the snapshot describes the last *completed* iteration boundary
        payload = read_checkpoint(str(checkpoint))
        assert payload["next_iteration"] == 2
        assert payload["report"].num_iterations == 2

    def test_all_workers_killed_campaign_degrades_and_matches_clean(
        self,
        cluster_profile,
        clusters_split,
        cluster_naturalness,
        trained_cluster_model,
        operational_cluster_data,
    ):
        train, _ = clusters_split
        rule = StoppingRule(target_pmi=1e-6, max_iterations=2)
        results = {}
        for label, policy in (
            ("clean", _sharded_policy()),
            ("chaos", _sharded_policy(retry=NO_RETRY, faults=KILL_ALL)),
        ):
            loop = self._loop(
                cluster_profile, train, cluster_naturalness, rule, policy
            )
            _, report = loop.run(trained_cluster_model, operational_cluster_data)
            results[label] = (loop, report)
        clean_loop, clean_report = results["clean"]
        chaos_loop, chaos_report = results["chaos"]
        assert chaos_loop.query_stats.degraded_shards > 0
        assert clean_loop.query_stats.degraded_shards == 0
        assert chaos_report.final_pmi == clean_report.final_pmi
        assert chaos_report.total_aes == clean_report.total_aes
        assert len(chaos_loop.detected_aes) == len(clean_loop.detected_aes)
        for clean_ae, chaos_ae in zip(
            clean_loop.detected_aes, chaos_loop.detected_aes
        ):
            np.testing.assert_array_equal(
                clean_ae.perturbed, chaos_ae.perturbed
            )
        for field in ("model_calls", "rows_queried", "cache_hits"):
            assert getattr(chaos_loop.query_stats, field) == getattr(
                clean_loop.query_stats, field
            ), field


# --------------------------------------------------------------------------- #
# CLI: resume fingerprint mismatch exits 2 with a one-line diagnosis
# --------------------------------------------------------------------------- #
class TestResumeFingerprintDiagnosis:
    def _tiny_run_argv(self, runs_dir):
        return [
            "--runs-dir", str(runs_dir), "run",
            "--scenario", "two-moons", "--samples", "80", "--epochs", "4",
            "--iterations", "1", "--budget", "40",
            "--seeds-per-iteration", "3", "--queries-per-seed", "5",
        ]

    def test_mismatched_checkpoint_exits_two(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert cli_main(self._tiny_run_argv(runs_dir)) == 0
        checkpoint = runs_dir / "run-0001" / "checkpoint.pkl"
        assert checkpoint.exists()
        # put the run back into a resumable state with a foreign checkpoint
        registry_file = runs_dir / "run-0001" / "run.json"
        import json

        record = json.loads(registry_file.read_text())
        record["status"] = "failed"
        registry_file.write_text(json.dumps(record))
        data = pickle.loads(checkpoint.read_bytes())
        expected = data["payload"]["fingerprint"]
        data["payload"]["fingerprint"] = "deadbeef"
        checkpoint.write_bytes(pickle.dumps(data))

        capsys.readouterr()
        assert cli_main(["--runs-dir", str(runs_dir), "resume", "run-0001"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line diagnosis
        assert str(checkpoint) in err
        assert "deadbeef" in err and expected in err

    def test_retry_flags_recorded_verbatim_in_spec(self, tmp_path, capsys):
        import json

        runs_dir = tmp_path / "runs"
        argv = self._tiny_run_argv(runs_dir) + [
            "--engine", "sharded", "--workers", "2",
            "--max-attempts", "3", "--shard-timeout", "45",
            "--on-exhaustion", "fail",
        ]
        assert cli_main(argv) == 0
        record = json.loads((runs_dir / "run-0001" / "run.json").read_text())
        retry = record["config"]["spec"]["policy"]["retry"]
        assert RetryPolicy.from_dict(retry) == RetryPolicy(
            max_attempts=3, shard_timeout_s=45.0, on_exhaustion="fail"
        )


# --------------------------------------------------------------------------- #
# chaos scenario matrix (slow tier)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.parametrize("scenario_name", SCENARIO_MATRIX)
class TestChaosScenarioMatrix:
    """Real SIGKILLs on every scenario of the differential suite.

    A campaign that loses one worker mid-flight — or every worker, forcing
    degradation to in-process execution — must reproduce the clean sharded
    campaign bit-identically: detections, per-seed query counts and
    reliability estimates.
    """

    @pytest.fixture()
    def scenario(self, scenario_name):
        return _scenario(scenario_name)

    def test_one_worker_sigkill_campaign_bit_identical(self, scenario):
        clean = _fuzz(scenario, _sharded_policy())
        chaos_policy = _sharded_policy(
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=FaultPlan(kills=((1, 1),)),
        )
        chaos = _fuzz(scenario, chaos_policy)
        _assert_campaigns_identical(clean, chaos)

    def test_all_workers_killed_degrades_and_matches(self, scenario):
        clean = _fuzz(scenario, _sharded_policy())
        chaos = _fuzz(
            scenario, _sharded_policy(retry=NO_RETRY, faults=KILL_ALL)
        )
        _assert_campaigns_identical(clean, chaos)

    def test_reliability_estimates_identical_under_faults(self, scenario):
        estimates = {}
        for label, policy in (
            ("clean", _sharded_policy()),
            (
                "chaos",
                _sharded_policy(
                    retry=RetryPolicy(backoff_base_s=0.0),
                    faults=FaultPlan(kills=((0, 2),)),
                ),
            ),
        ):
            assessor = ReliabilityAssessor(
                partition=scenario.partition,
                profile=scenario.profile,
                policy=policy,
                rng=99,
            )
            estimates[label] = assessor.assess(
                scenario.model, scenario.operational_data, rng=99
            )
        clean, chaos = estimates["clean"], estimates["chaos"]
        assert clean.pmi == chaos.pmi
        assert clean.pmi_upper == chaos.pmi_upper
        assert clean.pmi_lower == chaos.pmi_lower
        assert clean.queries == chaos.queries
