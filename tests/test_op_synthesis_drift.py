"""Tests for operational dataset synthesis and drift simulation/detection."""

import numpy as np
import pytest

from repro.data import GridPartition, default_augmenter, make_gaussian_clusters
from repro.exceptions import ConfigurationError, DataError, ProfileError
from repro.op import (
    DriftDetector,
    EmpiricalProfile,
    OperationScenario,
    OperationalDatasetSynthesizer,
    ground_truth_profile_for_clusters,
    profile_from_dataset,
    synthesize_operational_dataset,
)


@pytest.fixture(scope="module")
def reference():
    return make_gaussian_clusters(500, num_classes=4, cluster_std=0.06, rng=0)


class TestSynthesis:
    def test_size_and_label_range(self, reference):
        profile = profile_from_dataset(reference, class_priors=[0.6, 0.2, 0.1, 0.1])
        dataset = synthesize_operational_dataset(profile, 300, reference=reference, rng=0)
        assert len(dataset) == 300
        assert dataset.num_classes == 4
        assert np.all(dataset.x >= 0) and np.all(dataset.x <= 1)

    def test_skewed_priors_show_up_in_labels(self, reference):
        profile = profile_from_dataset(reference, class_priors=[0.7, 0.1, 0.1, 0.1])
        dataset = synthesize_operational_dataset(profile, 1000, reference=reference, rng=0)
        assert dataset.class_frequencies()[0] == pytest.approx(0.7, abs=0.06)

    def test_label_transfer_from_reference(self, reference):
        # an unlabelled GMM profile forces nearest-neighbour label transfer
        profile = ground_truth_profile_for_clusters(4, 2, 0.06)
        unlabelled = EmpiricalProfile(profile.sample(200, rng=0))
        dataset = synthesize_operational_dataset(unlabelled, 100, reference=reference, rng=0)
        assert len(dataset) == 100
        # transferred labels should mostly agree with the nearest cluster identity
        truth_labels = profile.responsibilities(dataset.x).argmax(axis=1)
        assert np.mean(truth_labels == dataset.y) > 0.9

    def test_oracle_labels_when_no_reference(self, reference, trained_cluster_model):
        profile = EmpiricalProfile(reference.x[:100])
        synthesizer = OperationalDatasetSynthesizer(profile=profile, oracle=trained_cluster_model)
        dataset = synthesizer.synthesize(50, rng=0)
        assert len(dataset) == 50

    def test_unlabelled_profile_without_reference_or_oracle_fails(self, reference):
        profile = EmpiricalProfile(reference.x[:50])
        synthesizer = OperationalDatasetSynthesizer(profile=profile)
        with pytest.raises(ProfileError):
            synthesizer.synthesize(10, rng=0)

    def test_augmentation_grows_dataset(self, reference):
        profile = profile_from_dataset(reference)
        augmenter = default_augmenter(None, copies=1, rng=0)
        dataset = synthesize_operational_dataset(
            profile, 100, reference=reference, augmenter=augmenter, rng=0
        )
        assert len(dataset) == 200

    def test_invalid_size(self, reference):
        profile = profile_from_dataset(reference)
        with pytest.raises(DataError):
            synthesize_operational_dataset(profile, 0, reference=reference)

    def test_max_label_distance_drops_far_samples(self, reference):
        profile = EmpiricalProfile(np.full((10, 2), 0.0))  # far from the clusters
        synthesizer = OperationalDatasetSynthesizer(
            profile=profile, reference=reference, max_label_distance=1e-6
        )
        with pytest.raises(DataError):
            synthesizer.synthesize(20, rng=0)


class TestOperationScenario:
    def test_priors_interpolate(self, reference):
        scenario = OperationScenario(
            source=reference,
            initial_priors=[0.7, 0.1, 0.1, 0.1],
            final_priors=[0.1, 0.1, 0.1, 0.7],
            horizon=10,
        )
        start = scenario.priors_at(0)
        middle = scenario.priors_at(5)
        end = scenario.priors_at(10)
        assert start[0] == pytest.approx(0.7)
        assert end[0] == pytest.approx(0.1)
        assert start[0] > middle[0] > end[0]

    def test_constant_without_final(self, reference):
        scenario = OperationScenario(source=reference, initial_priors=[0.25] * 4)
        np.testing.assert_allclose(scenario.priors_at(100), [0.25] * 4)

    def test_batches_follow_priors(self, reference):
        scenario = OperationScenario(source=reference, initial_priors=[0.8, 0.1, 0.05, 0.05])
        batch = scenario.batch(0, 800, rng=0)
        assert batch.class_frequencies()[0] == pytest.approx(0.8, abs=0.05)

    def test_noise_keeps_domain(self, reference):
        scenario = OperationScenario(
            source=reference, initial_priors=[0.25] * 4, noise_std=0.1
        )
        batch = scenario.batch(0, 50, rng=0)
        assert np.all(batch.x >= 0) and np.all(batch.x <= 1)

    def test_stream_yields_requested_batches(self, reference):
        scenario = OperationScenario(source=reference, initial_priors=[0.25] * 4)
        batches = list(scenario.stream(5, 20, rng=0))
        assert len(batches) == 5
        assert all(len(b) == 20 for b in batches)

    def test_invalid_args(self, reference):
        with pytest.raises(DataError):
            OperationScenario(source=reference, initial_priors=[0.5, 0.5])
        with pytest.raises(ConfigurationError):
            OperationScenario(source=reference, initial_priors=[0.25] * 4, horizon=0)
        scenario = OperationScenario(source=reference, initial_priors=[0.25] * 4)
        with pytest.raises(DataError):
            scenario.batch(0, 0)


class TestDriftDetector:
    def _detector(self, reference, priors, threshold=0.08):
        partition = GridPartition(2, bins_per_dim=5)
        profile = profile_from_dataset(reference, class_priors=priors)
        return DriftDetector(
            partition=partition,
            assumed_profile=profile,
            threshold=threshold,
            patience=2,
            window_size=300,
            rng=0,
        )

    def test_no_drift_when_operation_matches(self, reference):
        detector = self._detector(reference, [0.7, 0.1, 0.1, 0.1])
        scenario = OperationScenario(source=reference, initial_priors=[0.7, 0.1, 0.1, 0.1])
        flagged = False
        for step, batch in enumerate(scenario.stream(6, 100, rng=1)):
            flagged = flagged or detector.update(batch.x).drift_detected
        assert not flagged

    def test_detects_strong_prior_shift(self, reference):
        detector = self._detector(reference, [0.7, 0.1, 0.1, 0.1])
        shifted = OperationScenario(source=reference, initial_priors=[0.05, 0.05, 0.1, 0.8])
        reports = [detector.update(batch.x) for batch in shifted.stream(6, 100, rng=1)]
        assert reports[-1].drift_detected
        assert reports[-1].divergence > reports[-1].threshold

    def test_reset_adopts_new_profile(self, reference):
        detector = self._detector(reference, [0.7, 0.1, 0.1, 0.1])
        new_profile = profile_from_dataset(reference, class_priors=[0.1, 0.1, 0.1, 0.7])
        detector.reset(new_profile)
        shifted = OperationScenario(source=reference, initial_priors=[0.1, 0.1, 0.1, 0.7])
        flagged = False
        for batch in shifted.stream(6, 100, rng=1):
            flagged = flagged or detector.update(batch.x).drift_detected
        assert not flagged

    def test_history_recorded(self, reference):
        detector = self._detector(reference, [0.25] * 4)
        detector.update(reference.x[:50])
        detector.update(reference.x[50:100])
        assert len(detector.history) == 2
        assert detector.history[0].step == 0

    def test_invalid_config(self, reference):
        partition = GridPartition(2, bins_per_dim=5)
        profile = profile_from_dataset(reference)
        with pytest.raises(ConfigurationError):
            DriftDetector(partition=partition, assumed_profile=profile, threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftDetector(partition=partition, assumed_profile=profile, patience=0)
        detector = DriftDetector(partition=partition, assumed_profile=profile, rng=0)
        with pytest.raises(DataError):
            detector.update(np.zeros((0, 2)))
