"""Tests for repro.nn.layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    activation_from_name,
)


def numerical_input_gradient(layer, x, grad_output, eps=1e-5):
    """Finite-difference gradient of sum(forward(x) * grad_output) w.r.t. x."""
    grad = np.zeros_like(x)
    for index in np.ndindex(*x.shape):
        plus = x.copy()
        plus[index] += eps
        minus = x.copy()
        minus[index] -= eps
        f_plus = np.sum(layer.forward(plus, training=False) * grad_output)
        f_minus = np.sum(layer.forward(minus, training=False) * grad_output)
        grad[index] = (f_plus - f_minus) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 5, rng=0)
        out = layer.forward(np.random.default_rng(0).random((4, 3)))
        assert out.shape == (4, 5)

    def test_forward_rejects_wrong_width(self):
        layer = Dense(3, 5, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((4, 2)))

    def test_backward_before_forward_fails(self):
        layer = Dense(3, 5, rng=0)
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((4, 5)))

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng=0)
        x = rng.random((5, 4))
        grad_output = rng.random((5, 3))
        layer.forward(x)
        analytic = layer.backward(grad_output)
        numerical = numerical_input_gradient(layer, x, grad_output)
        np.testing.assert_allclose(analytic, numerical, atol=1e-6)

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng=0)
        x = rng.random((4, 3))
        grad_output = rng.random((4, 2))
        layer.forward(x)
        layer.backward(grad_output)
        analytic = layer.grad_weight.copy()
        eps = 1e-6
        numerical = np.zeros_like(layer.weight)
        for index in np.ndindex(*layer.weight.shape):
            original = layer.weight[index]
            layer.weight[index] = original + eps
            f_plus = np.sum(layer.forward(x) * grad_output)
            layer.weight[index] = original - eps
            f_minus = np.sum(layer.forward(x) * grad_output)
            layer.weight[index] = original
            numerical[index] = (f_plus - f_minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 5)

    def test_parameters_and_gradients_keys(self):
        layer = Dense(3, 2, rng=0)
        assert set(layer.parameters()) == {"weight", "bias"}
        assert set(layer.gradients()) == {"weight", "bias"}

    def test_output_dim(self):
        assert Dense(3, 7, rng=0).output_dim(3) == 7


@pytest.mark.parametrize(
    "layer_factory",
    [ReLU, lambda: LeakyReLU(0.1), Sigmoid, Tanh, Softmax],
    ids=["relu", "leaky", "sigmoid", "tanh", "softmax"],
)
def test_activation_gradients_match_numerical(layer_factory):
    rng = np.random.default_rng(3)
    layer = layer_factory()
    x = rng.normal(size=(4, 6))
    grad_output = rng.normal(size=(4, 6))
    layer.forward(x)
    analytic = layer.backward(grad_output)
    numerical = numerical_input_gradient(layer, x, grad_output)
    np.testing.assert_allclose(analytic, numerical, atol=1e-5)


class TestActivations:
    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_leaky_relu_negative_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[-0.1, 2.0]])

    def test_leaky_relu_invalid_slope(self):
        with pytest.raises(ConfigurationError):
            LeakyReLU(-0.5)

    def test_sigmoid_range_and_stability(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.all(out >= 0) and np.all(out <= 1)
        assert out[0, 1] == pytest.approx(0.5)

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), atol=1e-12)

    def test_tanh_range(self):
        out = Tanh().forward(np.array([[-50.0, 50.0]]))
        np.testing.assert_allclose(out, [[-1.0, 1.0]], atol=1e-6)

    def test_activation_from_name(self):
        assert isinstance(activation_from_name("relu"), ReLU)
        with pytest.raises(ConfigurationError):
            activation_from_name("swish")


class TestDropout:
    def test_identity_at_inference(self):
        x = np.random.default_rng(0).random((10, 5))
        out = Dropout(0.5, rng=0).forward(x, training=False)
        np.testing.assert_allclose(out, x)

    def test_training_zeroes_some_units(self):
        x = np.ones((100, 20))
        out = Dropout(0.5, rng=0).forward(x, training=True)
        assert np.sum(out == 0) > 0

    def test_expected_scale_preserved(self):
        x = np.ones((200, 50))
        out = Dropout(0.4, rng=0).forward(x, training=True)
        assert np.mean(out) == pytest.approx(1.0, rel=0.1)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((20, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestBatchNorm:
    def test_training_normalises(self):
        rng = np.random.default_rng(0)
        layer = BatchNorm(4)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), np.ones(4), atol=1e-2)

    def test_inference_uses_running_stats(self):
        rng = np.random.default_rng(0)
        layer = BatchNorm(3, momentum=0.5)
        for _ in range(20):
            layer.forward(rng.normal(2.0, 1.0, size=(64, 3)), training=True)
        out = layer.forward(np.full((1, 3), 2.0), training=False)
        assert np.all(np.abs(out) < 1.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        layer = BatchNorm(3)
        x = rng.random((6, 3)) + 0.5
        grad_output = rng.random((6, 3))

        def forward_sum(x_in):
            return np.sum(layer.forward(x_in, training=True) * grad_output)

        layer.forward(x, training=True)
        analytic = layer.backward(grad_output)
        eps = 1e-5
        numerical = np.zeros_like(x)
        for index in np.ndindex(*x.shape):
            plus, minus = x.copy(), x.copy()
            plus[index] += eps
            minus[index] -= eps
            numerical[index] = (forward_sum(plus) - forward_sum(minus)) / (2 * eps)
        np.testing.assert_allclose(analytic, numerical, atol=1e-4)

    def test_wrong_width_rejected(self):
        with pytest.raises(ShapeError):
            BatchNorm(3).forward(np.zeros((2, 4)), training=True)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            BatchNorm(0)
        with pytest.raises(ConfigurationError):
            BatchNorm(3, momentum=1.5)


class TestShapes:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(0).random((3, 2, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_reshape_roundtrip(self):
        layer = Reshape((2, 3, 3))
        x = np.random.default_rng(0).random((5, 18))
        out = layer.forward(x)
        assert out.shape == (5, 2, 3, 3)
        assert layer.backward(out).shape == x.shape

    def test_reshape_bad_size(self):
        with pytest.raises(ShapeError):
            Reshape((2, 3, 3)).forward(np.zeros((5, 10)))

    def test_reshape_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Reshape((0, 3))

    def test_reshape_output_dim(self):
        assert Reshape((2, 3, 3)).output_dim(18) == 18


class TestConv2D:
    def test_forward_shape_with_padding(self):
        layer = Conv2D(1, 4, kernel_size=3, padding=1, rng=0)
        out = layer.forward(np.random.default_rng(0).random((2, 1, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_forward_shape_without_padding(self):
        layer = Conv2D(2, 3, kernel_size=3, padding=0, rng=0)
        out = layer.forward(np.random.default_rng(0).random((2, 2, 6, 6)))
        assert out.shape == (2, 3, 4, 4)

    def test_wrong_channels_rejected(self):
        layer = Conv2D(2, 3, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 1, 6, 6)))

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(5)
        layer = Conv2D(1, 2, kernel_size=3, padding=1, rng=0)
        x = rng.random((2, 1, 5, 5))
        grad_output_shape = layer.forward(x).shape
        grad_output = rng.random(grad_output_shape)
        layer.forward(x)
        analytic = layer.backward(grad_output)
        numerical = numerical_input_gradient(layer, x, grad_output)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            Conv2D(0, 3)


class TestMaxPool2D:
    def test_forward_shape(self):
        layer = MaxPool2D(pool_size=2)
        out = layer.forward(np.random.default_rng(0).random((2, 3, 8, 8)))
        assert out.shape == (2, 3, 4, 4)

    def test_picks_maximum(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2D(pool_size=2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_backward_routes_gradient_to_max(self):
        layer = MaxPool2D(pool_size=2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad[0, 0, 1, 1] == 1.0  # value 5 was the max of its window
        assert grad[0, 0, 0, 0] == 0.0

    def test_invalid_pool_size(self):
        with pytest.raises(ConfigurationError):
            MaxPool2D(0)
