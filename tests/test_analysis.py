"""Tests for ``repro.analysis`` — the AST invariant linter.

Each rule gets a fixture snippet carrying exactly one seeded violation at a
known line, plus the clean variant it must not flag.  The framework tests pin
pragma suppression, baseline workflow, the JSON report schema and the CLI
exit-code contract that CI gates on — and a self-scan test asserts the shipped
tree is clean against the committed (empty) baseline, which is the regression
pin for every rule that currently finds nothing.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    analyze_paths,
    analyze_source,
    collect_pragmas,
    default_rules,
    is_suppressed,
    registered_rules,
    render_json,
    render_text,
    sort_findings,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.walker import PARSE_RULE_ID
from repro.exceptions import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A path the funnel rule applies to (not under engine/runtime/nn).
APP_PATH = "src/repro/op/example.py"


def dedent(snippet: str) -> str:
    return textwrap.dedent(snippet).lstrip("\n")


# --------------------------------------------------------------------------- #
# registry / framework
# --------------------------------------------------------------------------- #
class TestFramework:
    def test_eight_rules_registered(self):
        assert sorted(registered_rules()) == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008",
        ]

    def test_default_rules_are_fresh_instances_in_id_order(self):
        first, second = default_rules(), default_rules()
        assert [r.rule_id for r in first] == sorted(registered_rules())
        assert all(a is not b for a, b in zip(first, second))

    def test_syntax_error_becomes_parse_finding(self):
        findings = analyze_source("def broken(:\n", APP_PATH)
        assert len(findings) == 1
        assert findings[0].rule == PARSE_RULE_ID
        assert "does not parse" in findings[0].message

    def test_findings_sorted_by_location(self):
        source = dedent(
            """
            import numpy as np


            def late(model, x):
                np.random.seed(0)
                return model.predict(x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert findings == sort_findings(findings)


# --------------------------------------------------------------------------- #
# REP001 engine-funnel
# --------------------------------------------------------------------------- #
class TestEngineFunnel:
    def test_direct_predict_flagged_at_exact_line(self):
        source = dedent(
            """
            import numpy as np


            def pseudo_label(model, x):
                return model.predict(x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.name) == ("REP001", "engine-funnel")
        assert finding.line == 5
        assert "model.predict(...)" in finding.message

    def test_training_fit_on_model_argument_flagged(self):
        source = dedent(
            """
            def retrain(trainer, model, x, y):
                trainer.fit(model, x, y)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "trained via fit" in findings[0].message

    def test_engine_receivers_are_funnel_traffic(self):
        source = dedent(
            """
            def ok(engine, query_engine, x):
                a = engine.predict(x)
                b = query_engine.predict_proba(x)
                c = self_engine = engine.loss_input_gradient(x, a)
                return a, b, c
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_self_calls_and_dynamic_receivers_skipped(self):
        source = dedent(
            """
            class Wrapper:
                def predict(self, x):
                    return self.predict(x)


            def dynamic(models, x):
                return models[0].predict(x)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_engine_runtime_nn_layers_exempt(self):
        source = "def f(model, x):\n    return model.predict(x)\n"
        for exempt in (
            "src/repro/engine/batching.py",
            "src/repro/runtime/policy.py",
            "src/repro/nn/trainer.py",
            "src/repro/types.py",
        ):
            assert analyze_source(source, exempt) == []
        assert len(analyze_source(source, APP_PATH)) == 1


# --------------------------------------------------------------------------- #
# REP002 rng-discipline
# --------------------------------------------------------------------------- #
class TestRngDiscipline:
    def test_global_state_api_flagged_at_exact_line(self):
        source = dedent(
            """
            import numpy as np


            def scramble():
                np.random.seed(1234)
                return np.random.normal(size=3)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP002", 5), ("REP002", 6)]
        assert "global random state" in findings[0].message

    def test_argless_default_rng_flagged_seeded_clean(self):
        source = dedent(
            """
            import numpy as np
            from numpy.random import default_rng


            def fresh():
                return np.random.default_rng()


            def seeded():
                return default_rng(7)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP002", 6)]
        assert "without a seed" in findings[0].message

    def test_generator_methods_clean(self):
        source = dedent(
            """
            def draw(rng):
                return rng.normal(size=3) + rng.choice(5)
            """
        )
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP003 legacy-knob
# --------------------------------------------------------------------------- #
class TestLegacyKnob:
    def test_shim_owner_with_legacy_knob_flagged(self):
        # a dead branch like this is exactly what the runtime warning gate
        # misses — the static rule must see it anyway
        source = dedent(
            """
            def build(sharded):
                if sharded:
                    return FuzzerConfig(num_workers=4)
                return FuzzerConfig(queries_per_seed=5)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        assert (findings[0].rule, findings[0].line) == ("REP003", 3)
        assert "policy=ExecutionPolicy(num_workers=...)" in findings[0].hint

    def test_knob_to_policy_field_mapping_in_hint(self):
        source = "cfg = WorkflowConfig(engine='sharded', use_query_cache=True)\n"
        findings = analyze_source(source, APP_PATH)
        hints = " ".join(f.hint for f in findings)
        assert "ExecutionPolicy(backend=...)" in hints
        assert "ExecutionPolicy(cache=...)" in hints

    def test_policy_itself_and_unknown_owners_clean(self):
        source = dedent(
            """
            policy = ExecutionPolicy(num_workers=4, cache_dir="/tmp/c")
            engine = ShardedQueryEngine(model, num_workers=2)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_runtime_shim_layer_exempt(self):
        source = "cfg = FuzzerConfig(num_workers=4)\n"
        assert analyze_source(source, "src/repro/runtime/policy.py") == []


# --------------------------------------------------------------------------- #
# REP004 lock-discipline
# --------------------------------------------------------------------------- #
LOCKED_CLASS = """
class Engine:
    def __init__(self):
        self.stats = 0

    def absorb(self, delta):
        with self._lock:
            self.stats += delta

    def snapshot(self):
        return self.stats
"""


class TestLockDiscipline:
    def test_lock_free_access_to_guarded_attr_flagged(self):
        findings = analyze_source(dedent(LOCKED_CLASS), APP_PATH)
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line) == ("REP004", 10)
        assert "Engine.snapshot touches self.stats" in finding.message
        assert "Engine.absorb" in finding.message

    def test_construction_methods_exempt(self):
        # __init__ writes self.stats lock-free at line 3 and is not flagged
        findings = analyze_source(dedent(LOCKED_CLASS), APP_PATH)
        assert all(f.line != 3 for f in findings)

    def test_consistent_locking_clean(self):
        source = dedent(
            """
            class Engine:
                def absorb(self, delta):
                    with self._lock:
                        self.stats += delta

                def snapshot(self):
                    with self._lock:
                        return self.stats
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_unguarded_config_reads_clean(self):
        source = dedent(
            """
            class Engine:
                def absorb(self, delta):
                    with self._lock:
                        self.stats += delta

                def plan(self):
                    return self.num_workers * 2
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_method_call_receiver_counts_as_mutation(self):
        source = dedent(
            """
            class Engine:
                def absorb(self, delta):
                    with self._lock:
                        self.stats.merge(delta)

                def snapshot(self):
                    return self.stats
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP004", 7)]


# --------------------------------------------------------------------------- #
# REP005 dict-round-trip
# --------------------------------------------------------------------------- #
class TestDictRoundTrip:
    def test_key_drift_flagged_at_serializer(self):
        source = dedent(
            """
            class Estimate:
                def to_dict(self):
                    return {"pmi": self.pmi}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"], variance=data["variance"])
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line) == ("REP005", 2)
        assert "'variance'" in finding.message
        assert "never produced" in finding.message

    def test_extra_produced_key_flagged(self):
        source = dedent(
            """
            class Estimate:
                def to_dict(self):
                    return {"pmi": self.pmi, "stale": 1}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"])
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        assert "not consumed by from_dict" in findings[0].message

    def test_symmetric_pair_clean(self):
        source = dedent(
            """
            class Estimate:
                def to_dict(self):
                    return {"pmi": self.pmi, "variance": self.variance}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"], variance=data["variance"])
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_dataclass_fields_validation_counts_fields(self):
        # the ExecutionPolicy pattern: asdict() + __dataclass_fields__ check
        source = dedent(
            """
            @dataclass
            class Policy:
                backend: str = "batched"
                num_workers: int = 1

                def to_dict(self):
                    return dataclasses.asdict(self)

                @classmethod
                def from_dict(cls, data):
                    unknown = set(data) - set(cls.__dataclass_fields__)
                    if unknown:
                        raise ValueError(unknown)
                    return cls(**dict(data))
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_dynamic_serializer_skipped_not_guessed(self):
        source = dedent(
            """
            class Opaque:
                def to_dict(self):
                    return make_payload(self)

                @classmethod
                def from_dict(cls, data):
                    return cls(**data)
            """
        )
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP006 timeout-discipline
# --------------------------------------------------------------------------- #
class TestTimeoutDiscipline:
    def test_bare_result_flagged(self):
        findings = analyze_source("value = future.result()\n", APP_PATH)
        assert [(f.rule, f.name) for f in findings] == [
            ("REP006", "timeout-discipline")
        ]
        assert "waits forever" in findings[0].message

    def test_result_with_timeout_clean(self):
        assert analyze_source("value = future.result(timeout=5.0)\n", APP_PATH) == []
        assert analyze_source("value = future.result(5.0)\n", APP_PATH) == []

    def test_queue_get_without_timeout_flagged(self):
        findings = analyze_source("item = work_queue.get()\n", APP_PATH)
        assert [f.rule for f in findings] == ["REP006"]

    def test_queue_get_bounded_clean(self):
        assert analyze_source("item = work_queue.get(timeout=1.0)\n", APP_PATH) == []
        assert analyze_source("item = work_queue.get(True, 1.0)\n", APP_PATH) == []

    def test_dict_get_never_matches(self):
        # .get on a non-queue receiver is ordinary dict access
        assert analyze_source("value = config.get('key')\n", APP_PATH) == []

    def test_pool_submit_flagged_even_via_subscript(self):
        findings = analyze_source("fut = pools[worker].submit(fn, arg)\n", APP_PATH)
        assert [f.rule for f in findings] == ["REP006"]
        assert "ShardSupervisor" in findings[0].hint

    def test_non_pool_submit_clean(self):
        assert analyze_source("form.submit()\n", APP_PATH) == []

    def test_faults_layer_exempt(self):
        source = "value = future.result()\n"
        assert analyze_source(source, "src/repro/faults/supervision.py") == []


# --------------------------------------------------------------------------- #
# REP007 — shm-lifecycle
# --------------------------------------------------------------------------- #
class TestShmLifecycleRule:
    def test_bare_creation_flagged(self):
        findings = analyze_source(
            "segment = SharedMemory(create=True, size=1024)\n", APP_PATH
        )
        assert [(f.rule, f.name) for f in findings] == [("REP007", "shm-lifecycle")]
        assert "outlives the process" in findings[0].message

    def test_attribute_call_flagged(self):
        source = dedent(
            """
            def open_ring(name):
                return shared_memory.SharedMemory(name=name)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_context_manager_clean(self):
        source = dedent(
            """
            def use(name):
                with SharedMemory(name=name) as segment:
                    return bytes(segment.buf[:4])
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_try_finally_cleanup_clean(self):
        source = dedent(
            """
            def roundtrip(data):
                segment = SharedMemory(create=True, size=len(data))
                try:
                    segment.buf[: len(data)] = data
                    return bytes(segment.buf[: len(data)])
                finally:
                    segment.close()
                    segment.unlink()
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_finally_without_cleanup_still_flagged(self):
        source = dedent(
            """
            def leaky(data):
                segment = SharedMemory(create=True, size=len(data))
                try:
                    return bytes(segment.buf[: len(data)])
                finally:
                    log.info("done")
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_creation_inside_finally_not_protected_by_it(self):
        source = dedent(
            """
            def weird():
                try:
                    pass
                finally:
                    segment = SharedMemory(create=True, size=8)
                    segment.close()
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_cleanup_in_enclosing_scope_does_not_bless_nested_function(self):
        # the creation's cleanup must live in the *same* function scope
        source = dedent(
            """
            def outer():
                try:
                    def inner():
                        return SharedMemory(create=True, size=8)
                    return inner()
                finally:
                    cleanup.close()
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_pragma_documents_ownership_transfer(self):
        source = dedent(
            """
            def attach(name):
                # close happens on cache eviction — repro: allow[shm-lifecycle]
                return SharedMemory(name=name)  # repro: allow[shm-lifecycle]
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_unrelated_constructors_clean(self):
        assert analyze_source("pool = SharedPool(create=True)\n", APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP008 — clock-discipline
# --------------------------------------------------------------------------- #
class TestClockDiscipline:
    def test_time_time_flagged(self):
        findings = analyze_source("import time\nstamp = time.time()\n", APP_PATH)
        assert [(f.rule, f.name) for f in findings] == [
            ("REP008", "clock-discipline")
        ]
        assert "wall clock" in findings[0].message
        assert "clock.monotonic" in findings[0].hint

    def test_other_wall_reads_flagged(self):
        for call in ("time.time_ns()", "time.localtime()", "time.gmtime()",
                     "time.ctime()"):
            findings = analyze_source(f"value = {call}\n", APP_PATH)
            assert [f.rule for f in findings] == ["REP008"], call

    def test_datetime_shapes_flagged(self):
        for call in ("datetime.now()", "datetime.utcnow()", "date.today()"):
            findings = analyze_source(f"value = {call}\n", APP_PATH)
            assert [f.rule for f in findings] == ["REP008"], call

    def test_monotonic_clocks_clean(self):
        # the safe duration clocks are not the hazard, only wall reads are
        for call in ("time.monotonic()", "time.perf_counter()", "time.sleep(1)"):
            assert analyze_source(f"value = {call}\n", APP_PATH) == [], call

    def test_non_clock_receivers_clean(self):
        # .time()/.now() on arbitrary receivers is not a clock read
        assert analyze_source("value = lap.time()\n", APP_PATH) == []
        assert analyze_source("value = feed.now()\n", APP_PATH) == []

    def test_telemetry_layer_exempt(self):
        source = "import time\nstamp = time.time()\n"
        assert analyze_source(source, "src/repro/telemetry/clock.py") == []

    def test_pragma_blesses_calendar_site(self):
        source = "stamp = time.time()  # repro: allow[clock-discipline]\n"
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# pragmas
# --------------------------------------------------------------------------- #
class TestPragmas:
    VIOLATION = "def f(model, x):\n    return model.predict(x)"

    def test_same_line_pragma_by_slug_and_id(self):
        for tag in ("engine-funnel", "REP001", "rep001"):
            source = self.VIOLATION.replace(
                "model.predict(x)", f"model.predict(x)  # repro: allow[{tag}]"
            )
            assert analyze_source(source, APP_PATH) == []

    def test_standalone_comment_blesses_next_code_line(self):
        source = dedent(
            """
            def f(model, x):
                # whitebox on purpose — repro: allow[engine-funnel]
                # repro: allow[engine-funnel]
                return model.predict(x)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_wildcard_and_comma_lists(self):
        source = self.VIOLATION.replace(
            "model.predict(x)", "model.predict(x)  # repro: allow[*]"
        )
        assert analyze_source(source, APP_PATH) == []
        pragmas = collect_pragmas("x = 1  # repro: allow[REP001, rng-discipline]\n")
        assert is_suppressed(pragmas, 1, "REP001", "engine-funnel")
        assert is_suppressed(pragmas, 1, "REP002", "rng-discipline")
        assert not is_suppressed(pragmas, 1, "REP004", "lock-discipline")

    def test_wrong_rule_pragma_does_not_suppress(self):
        source = self.VIOLATION.replace(
            "model.predict(x)", "model.predict(x)  # repro: allow[rng-discipline]"
        )
        assert len(analyze_source(source, APP_PATH)) == 1

    def test_pragma_inside_string_literal_ignored(self):
        source = 'def f(model):\n    return model.predict("# repro: allow[engine-funnel]")'
        assert len(analyze_source(source, APP_PATH)) == 1

    def test_suppressions_counted_per_run(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(model, x):\n"
            "    return model.predict(x)  # repro: allow[engine-funnel]\n"
        )
        result = analyze_paths([str(target)])
        assert result.findings == []
        assert result.suppressed == 1
        assert result.files_scanned == 1


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #
def _finding(message: str = "direct model query model.predict(...)") -> Finding:
    return Finding(
        rule="REP001",
        name="engine-funnel",
        severity="error",
        path="src/repro/op/example.py",
        line=5,
        col=11,
        message=message,
    )


class TestBaseline:
    def test_round_trip_and_identity_ignores_line(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline([_finding()]).write(target)
        loaded = Baseline.load(target)
        assert len(loaded) == 1
        moved = Finding(**dict(_finding().to_dict(), line=99, col=0))
        assert loaded.is_known(moved)
        assert not loaded.is_known(_finding(message="something else"))

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
        assert not baseline.is_known(_finding())

    def test_stale_entries_surfaced(self):
        baseline = Baseline([_finding(), _finding(message="fixed long ago")])
        stale = baseline.stale_entries([_finding()])
        assert [entry.message for entry in stale] == ["fixed long ago"]

    def test_version_and_shape_validated(self, tmp_path):
        bad_version = tmp_path / "v0.json"
        bad_version.write_text(json.dumps({"version": 0, "findings": []}))
        with pytest.raises(ConfigurationError, match="version"):
            Baseline.load(bad_version)
        bad_shape = tmp_path / "list.json"
        bad_shape.write_text("[]")
        with pytest.raises(ConfigurationError, match="findings"):
            Baseline.load(bad_shape)

    def test_finding_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown Finding fields"):
            Finding.from_dict(dict(_finding().to_dict(), status="new"))


# --------------------------------------------------------------------------- #
# reporters
# --------------------------------------------------------------------------- #
class TestReporters:
    def _result(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(model, x):\n    return model.predict(x)\n")
        return analyze_paths([str(target)])

    def test_json_schema(self, tmp_path):
        result = self._result(tmp_path)
        report = render_json(result, new=result.findings, baselined=[], stale=[])
        assert set(report) == {"version", "findings", "stale_baseline", "summary"}
        assert report["version"] == 1
        assert set(report["summary"]) == {
            "files_scanned", "total", "new", "baselined", "suppressed", "by_rule",
        }
        (row,) = report["findings"]
        assert set(row) == {
            "rule", "name", "severity", "path", "line", "col",
            "message", "hint", "status",
        }
        assert row["status"] == "new"
        assert report["summary"]["by_rule"] == {"REP001": 1}
        json.dumps(report)  # must be JSON-serializable as-is

    def test_json_marks_baselined_rows(self, tmp_path):
        result = self._result(tmp_path)
        report = render_json(result, new=[], baselined=result.findings, stale=[])
        assert [row["status"] for row in report["findings"]] == ["baselined"]
        assert report["summary"]["new"] == 0

    def test_text_report_one_line_per_new_finding(self, tmp_path):
        result = self._result(tmp_path)
        text = render_text(result, new=result.findings, baselined=[], stale=[])
        assert "REP001[engine-funnel]" in text
        assert "1 new, 0 baselined" in text


# --------------------------------------------------------------------------- #
# CLI exit-code contract (what CI gates on)
# --------------------------------------------------------------------------- #
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(engine, x):\n    return engine.predict(x)\n")
        assert lint_main([str(clean), "--no-baseline"]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        assert lint_main([str(bad), "--no-baseline"]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_update_baseline_then_clean_then_ratchet(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.exists()
        # accepted debt no longer fails the run
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        # ...but a new violation still does, and only it is reported
        bad.write_text(
            "def f(model, x):\n"
            "    return model.predict(x)\n"
            "def g(model, x):\n"
            "    return model.predict_proba(x)\n"
        )
        capsys.readouterr()
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "predict_proba" in out
        assert "1 new, 1 baselined" in out

    def test_stale_baseline_reported_not_fatal(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        baseline = tmp_path / "baseline.json"
        lint_main([str(bad), "--baseline", str(baseline), "--update-baseline"])
        bad.write_text("def f(engine, x):\n    return engine.predict(x)\n")
        capsys.readouterr()
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        assert "stale baseline" in capsys.readouterr().out

    def test_json_flag_emits_parseable_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        assert lint_main([str(bad), "--no-baseline", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["new"] == 1

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope"), "--no-baseline"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out

    def test_conflicting_baseline_flags_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path), "--no-baseline", "--update-baseline"])

    def test_module_entry_point_dispatches_lint_verb(self, capsys):
        from repro.__main__ import main as module_main

        assert module_main(["lint", "--list-rules"]) == 0
        assert "REP001" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# self-scan: the shipped tree is clean vs the committed baseline
# --------------------------------------------------------------------------- #
class TestSelfScan:
    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert len(baseline) == 0, "the shipped tree must carry no lint debt"

    def test_shipped_tree_has_no_findings(self):
        # also the regression pin that REP003/REP004/REP005 (which currently
        # find nothing in the tree) stay silent: any future hit fails here
        result = analyze_paths([str(REPO_ROOT / "src" / "repro")])
        assert result.findings == [], "\n".join(f.format() for f in result.findings)
        assert result.by_rule() == {}
        # the justified whitebox sites are pragma'd, not invisible
        assert result.suppressed >= 19

    def test_every_rule_fires_on_its_fixture(self):
        # guards against a rule being silently disabled (e.g. a renamed
        # visit_ method): each must detect its seeded violation
        seeded = {
            "REP001": "def f(model, x):\n    return model.predict(x)\n",
            "REP002": "import numpy as np\nnp.random.seed(0)\n",
            "REP003": "cfg = FuzzerConfig(engine='sharded')\n",
            "REP004": dedent(LOCKED_CLASS),
            "REP005": dedent(
                """
                class C:
                    def to_dict(self):
                        return {"a": 1}

                    @classmethod
                    def from_dict(cls, data):
                        return cls(a=data["a"], b=data["b"])
                """
            ),
            "REP006": "value = future.result()\n",
            "REP008": "stamp = time.time()\n",
        }
        for rule_id, source in seeded.items():
            findings = analyze_source(source, APP_PATH)
            assert [f.rule for f in findings] == [rule_id]
