"""Tests for ``repro.analysis`` — the AST invariant linter.

Each rule gets a fixture snippet carrying exactly one seeded violation at a
known line, plus the clean variant it must not flag.  The framework tests pin
pragma suppression, baseline workflow, the JSON report schema and the CLI
exit-code contract that CI gates on — and a self-scan test asserts the shipped
tree is clean against the committed (empty) baseline, which is the regression
pin for every rule that currently finds nothing.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    analyze_paths,
    analyze_source,
    collect_pragmas,
    default_program_rules,
    default_rules,
    expand_decorated_pragmas,
    explain_rule,
    is_suppressed,
    registered_program_rules,
    registered_rules,
    render_json,
    render_sarif,
    render_text,
    rule_doc_sections,
    sort_findings,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.walker import PARSE_RULE_ID
from repro.exceptions import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A path the funnel rule applies to (not under engine/runtime/nn).
APP_PATH = "src/repro/op/example.py"


def dedent(snippet: str) -> str:
    return textwrap.dedent(snippet).lstrip("\n")


# --------------------------------------------------------------------------- #
# registry / framework
# --------------------------------------------------------------------------- #
class TestFramework:
    def test_eight_per_file_rules_registered(self):
        assert sorted(registered_rules()) == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008",
        ]

    def test_three_program_rules_registered(self):
        assert sorted(registered_program_rules()) == ["REP009", "REP010", "REP011"]

    def test_default_rules_are_fresh_instances_in_id_order(self):
        first, second = default_rules(), default_rules()
        assert [r.rule_id for r in first] == sorted(registered_rules())
        assert all(a is not b for a, b in zip(first, second))

    def test_default_program_rules_are_fresh_instances_in_id_order(self):
        first, second = default_program_rules(), default_program_rules()
        assert [r.rule_id for r in first] == sorted(registered_program_rules())
        assert all(a is not b for a, b in zip(first, second))

    def test_per_file_and_program_rule_ids_disjoint(self):
        assert not set(registered_rules()) & set(registered_program_rules())

    def test_syntax_error_becomes_parse_finding(self):
        findings = analyze_source("def broken(:\n", APP_PATH)
        assert len(findings) == 1
        assert findings[0].rule == PARSE_RULE_ID
        assert "does not parse" in findings[0].message

    def test_findings_sorted_by_location(self):
        source = dedent(
            """
            import numpy as np


            def late(model, x):
                np.random.seed(0)
                return model.predict(x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert findings == sort_findings(findings)


# --------------------------------------------------------------------------- #
# REP001 engine-funnel
# --------------------------------------------------------------------------- #
class TestEngineFunnel:
    def test_direct_predict_flagged_at_exact_line(self):
        source = dedent(
            """
            import numpy as np


            def pseudo_label(model, x):
                return model.predict(x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.name) == ("REP001", "engine-funnel")
        assert finding.line == 5
        assert "model.predict(...)" in finding.message

    def test_training_fit_on_model_argument_flagged(self):
        source = dedent(
            """
            def retrain(trainer, model, x, y):
                trainer.fit(model, x, y)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "trained via fit" in findings[0].message

    def test_engine_receivers_are_funnel_traffic(self):
        source = dedent(
            """
            def ok(engine, query_engine, x):
                a = engine.predict(x)
                b = query_engine.predict_proba(x)
                c = self_engine = engine.loss_input_gradient(x, a)
                return a, b, c
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_self_calls_and_dynamic_receivers_skipped(self):
        source = dedent(
            """
            class Wrapper:
                def predict(self, x):
                    return self.predict(x)


            def dynamic(models, x):
                return models[0].predict(x)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_engine_runtime_nn_layers_exempt(self):
        source = "def f(model, x):\n    return model.predict(x)\n"
        for exempt in (
            "src/repro/engine/batching.py",
            "src/repro/runtime/policy.py",
            "src/repro/nn/trainer.py",
            "src/repro/types.py",
        ):
            assert analyze_source(source, exempt) == []
        assert len(analyze_source(source, APP_PATH)) == 1


# --------------------------------------------------------------------------- #
# REP002 rng-discipline
# --------------------------------------------------------------------------- #
class TestRngDiscipline:
    def test_global_state_api_flagged_at_exact_line(self):
        source = dedent(
            """
            import numpy as np


            def scramble():
                np.random.seed(1234)
                return np.random.normal(size=3)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP002", 5), ("REP002", 6)]
        assert "global random state" in findings[0].message

    def test_argless_default_rng_flagged_seeded_clean(self):
        source = dedent(
            """
            import numpy as np
            from numpy.random import default_rng


            def fresh():
                return np.random.default_rng()


            def seeded():
                return default_rng(7)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP002", 6)]
        assert "without a seed" in findings[0].message

    def test_generator_methods_clean(self):
        source = dedent(
            """
            def draw(rng):
                return rng.normal(size=3) + rng.choice(5)
            """
        )
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP003 legacy-knob
# --------------------------------------------------------------------------- #
class TestLegacyKnob:
    def test_shim_owner_with_legacy_knob_flagged(self):
        # a dead branch like this is exactly what the runtime warning gate
        # misses — the static rule must see it anyway
        source = dedent(
            """
            def build(sharded):
                if sharded:
                    return FuzzerConfig(num_workers=4)
                return FuzzerConfig(queries_per_seed=5)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        assert (findings[0].rule, findings[0].line) == ("REP003", 3)
        assert "policy=ExecutionPolicy(num_workers=...)" in findings[0].hint

    def test_knob_to_policy_field_mapping_in_hint(self):
        source = "cfg = WorkflowConfig(engine='sharded', use_query_cache=True)\n"
        findings = analyze_source(source, APP_PATH)
        hints = " ".join(f.hint for f in findings)
        assert "ExecutionPolicy(backend=...)" in hints
        assert "ExecutionPolicy(cache=...)" in hints

    def test_policy_itself_and_unknown_owners_clean(self):
        source = dedent(
            """
            policy = ExecutionPolicy(num_workers=4, cache_dir="/tmp/c")
            engine = ShardedQueryEngine(model, num_workers=2)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_runtime_shim_layer_exempt(self):
        source = "cfg = FuzzerConfig(num_workers=4)\n"
        assert analyze_source(source, "src/repro/runtime/policy.py") == []


# --------------------------------------------------------------------------- #
# REP004 lock-discipline
# --------------------------------------------------------------------------- #
LOCKED_CLASS = """
class Engine:
    def __init__(self):
        self.stats = 0

    def absorb(self, delta):
        with self._lock:
            self.stats += delta

    def snapshot(self):
        return self.stats
"""


class TestLockDiscipline:
    def test_lock_free_access_to_guarded_attr_flagged(self):
        findings = analyze_source(dedent(LOCKED_CLASS), APP_PATH)
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line) == ("REP004", 10)
        assert "Engine.snapshot touches self.stats" in finding.message
        assert "Engine.absorb" in finding.message

    def test_construction_methods_exempt(self):
        # __init__ writes self.stats lock-free at line 3 and is not flagged
        findings = analyze_source(dedent(LOCKED_CLASS), APP_PATH)
        assert all(f.line != 3 for f in findings)

    def test_consistent_locking_clean(self):
        source = dedent(
            """
            class Engine:
                def absorb(self, delta):
                    with self._lock:
                        self.stats += delta

                def snapshot(self):
                    with self._lock:
                        return self.stats
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_unguarded_config_reads_clean(self):
        source = dedent(
            """
            class Engine:
                def absorb(self, delta):
                    with self._lock:
                        self.stats += delta

                def plan(self):
                    return self.num_workers * 2
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_method_call_receiver_counts_as_mutation(self):
        source = dedent(
            """
            class Engine:
                def absorb(self, delta):
                    with self._lock:
                        self.stats.merge(delta)

                def snapshot(self):
                    return self.stats
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP004", 7)]


# --------------------------------------------------------------------------- #
# REP005 dict-round-trip
# --------------------------------------------------------------------------- #
class TestDictRoundTrip:
    def test_key_drift_flagged_at_serializer(self):
        source = dedent(
            """
            class Estimate:
                def to_dict(self):
                    return {"pmi": self.pmi}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"], variance=data["variance"])
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line) == ("REP005", 2)
        assert "'variance'" in finding.message
        assert "never produced" in finding.message

    def test_extra_produced_key_flagged(self):
        source = dedent(
            """
            class Estimate:
                def to_dict(self):
                    return {"pmi": self.pmi, "stale": 1}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"])
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert len(findings) == 1
        assert "not consumed by from_dict" in findings[0].message

    def test_symmetric_pair_clean(self):
        source = dedent(
            """
            class Estimate:
                def to_dict(self):
                    return {"pmi": self.pmi, "variance": self.variance}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"], variance=data["variance"])
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_dataclass_fields_validation_counts_fields(self):
        # the ExecutionPolicy pattern: asdict() + __dataclass_fields__ check
        source = dedent(
            """
            @dataclass
            class Policy:
                backend: str = "batched"
                num_workers: int = 1

                def to_dict(self):
                    return dataclasses.asdict(self)

                @classmethod
                def from_dict(cls, data):
                    unknown = set(data) - set(cls.__dataclass_fields__)
                    if unknown:
                        raise ValueError(unknown)
                    return cls(**dict(data))
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_dynamic_serializer_skipped_not_guessed(self):
        source = dedent(
            """
            class Opaque:
                def to_dict(self):
                    return make_payload(self)

                @classmethod
                def from_dict(cls, data):
                    return cls(**data)
            """
        )
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP006 timeout-discipline
# --------------------------------------------------------------------------- #
class TestTimeoutDiscipline:
    def test_bare_result_flagged(self):
        findings = analyze_source("value = future.result()\n", APP_PATH)
        assert [(f.rule, f.name) for f in findings] == [
            ("REP006", "timeout-discipline")
        ]
        assert "waits forever" in findings[0].message

    def test_result_with_timeout_clean(self):
        assert analyze_source("value = future.result(timeout=5.0)\n", APP_PATH) == []
        assert analyze_source("value = future.result(5.0)\n", APP_PATH) == []

    def test_queue_get_without_timeout_flagged(self):
        findings = analyze_source("item = work_queue.get()\n", APP_PATH)
        assert [f.rule for f in findings] == ["REP006"]

    def test_queue_get_bounded_clean(self):
        assert analyze_source("item = work_queue.get(timeout=1.0)\n", APP_PATH) == []
        assert analyze_source("item = work_queue.get(True, 1.0)\n", APP_PATH) == []

    def test_dict_get_never_matches(self):
        # .get on a non-queue receiver is ordinary dict access
        assert analyze_source("value = config.get('key')\n", APP_PATH) == []

    def test_pool_submit_flagged_even_via_subscript(self):
        findings = analyze_source("fut = pools[worker].submit(fn, arg)\n", APP_PATH)
        assert [f.rule for f in findings] == ["REP006"]
        assert "ShardSupervisor" in findings[0].hint

    def test_non_pool_submit_clean(self):
        assert analyze_source("form.submit()\n", APP_PATH) == []

    def test_faults_layer_exempt(self):
        source = "value = future.result()\n"
        assert analyze_source(source, "src/repro/faults/supervision.py") == []


# --------------------------------------------------------------------------- #
# REP007 — shm-lifecycle
# --------------------------------------------------------------------------- #
class TestShmLifecycleRule:
    def test_bare_creation_flagged(self):
        findings = analyze_source(
            "segment = SharedMemory(create=True, size=1024)\n", APP_PATH
        )
        assert [(f.rule, f.name) for f in findings] == [("REP007", "shm-lifecycle")]
        assert "outlives the process" in findings[0].message

    def test_attribute_call_flagged(self):
        source = dedent(
            """
            def open_ring(name):
                return shared_memory.SharedMemory(name=name)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_context_manager_clean(self):
        source = dedent(
            """
            def use(name):
                with SharedMemory(name=name) as segment:
                    return bytes(segment.buf[:4])
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_try_finally_cleanup_clean(self):
        source = dedent(
            """
            def roundtrip(data):
                segment = SharedMemory(create=True, size=len(data))
                try:
                    segment.buf[: len(data)] = data
                    return bytes(segment.buf[: len(data)])
                finally:
                    segment.close()
                    segment.unlink()
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_finally_without_cleanup_still_flagged(self):
        source = dedent(
            """
            def leaky(data):
                segment = SharedMemory(create=True, size=len(data))
                try:
                    return bytes(segment.buf[: len(data)])
                finally:
                    log.info("done")
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_creation_inside_finally_not_protected_by_it(self):
        source = dedent(
            """
            def weird():
                try:
                    pass
                finally:
                    segment = SharedMemory(create=True, size=8)
                    segment.close()
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_cleanup_in_enclosing_scope_does_not_bless_nested_function(self):
        # the creation's cleanup must live in the *same* function scope
        source = dedent(
            """
            def outer():
                try:
                    def inner():
                        return SharedMemory(create=True, size=8)
                    return inner()
                finally:
                    cleanup.close()
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP007"]

    def test_pragma_documents_ownership_transfer(self):
        source = dedent(
            """
            def attach(name):
                # close happens on cache eviction — repro: allow[shm-lifecycle]
                return SharedMemory(name=name)  # repro: allow[shm-lifecycle]
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_unrelated_constructors_clean(self):
        assert analyze_source("pool = SharedPool(create=True)\n", APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP008 — clock-discipline
# --------------------------------------------------------------------------- #
class TestClockDiscipline:
    def test_time_time_flagged(self):
        findings = analyze_source("import time\nstamp = time.time()\n", APP_PATH)
        assert [(f.rule, f.name) for f in findings] == [
            ("REP008", "clock-discipline")
        ]
        assert "wall clock" in findings[0].message
        assert "clock.monotonic" in findings[0].hint

    def test_other_wall_reads_flagged(self):
        for call in ("time.time_ns()", "time.localtime()", "time.gmtime()",
                     "time.ctime()"):
            findings = analyze_source(f"value = {call}\n", APP_PATH)
            assert [f.rule for f in findings] == ["REP008"], call

    def test_datetime_shapes_flagged(self):
        for call in ("datetime.now()", "datetime.utcnow()", "date.today()"):
            findings = analyze_source(f"value = {call}\n", APP_PATH)
            assert [f.rule for f in findings] == ["REP008"], call

    def test_monotonic_clocks_clean(self):
        # the safe duration clocks are not the hazard, only wall reads are
        for call in ("time.monotonic()", "time.perf_counter()", "time.sleep(1)"):
            assert analyze_source(f"value = {call}\n", APP_PATH) == [], call

    def test_non_clock_receivers_clean(self):
        # .time()/.now() on arbitrary receivers is not a clock read
        assert analyze_source("value = lap.time()\n", APP_PATH) == []
        assert analyze_source("value = feed.now()\n", APP_PATH) == []

    def test_telemetry_layer_exempt(self):
        source = "import time\nstamp = time.time()\n"
        assert analyze_source(source, "src/repro/telemetry/clock.py") == []

    def test_pragma_blesses_calendar_site(self):
        source = "stamp = time.time()  # repro: allow[clock-discipline]\n"
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# pragmas
# --------------------------------------------------------------------------- #
class TestPragmas:
    VIOLATION = "def f(model, x):\n    return model.predict(x)"

    def test_same_line_pragma_by_slug_and_id(self):
        for tag in ("engine-funnel", "REP001", "rep001"):
            source = self.VIOLATION.replace(
                "model.predict(x)", f"model.predict(x)  # repro: allow[{tag}]"
            )
            assert analyze_source(source, APP_PATH) == []

    def test_standalone_comment_blesses_next_code_line(self):
        source = dedent(
            """
            def f(model, x):
                # whitebox on purpose — repro: allow[engine-funnel]
                # repro: allow[engine-funnel]
                return model.predict(x)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_wildcard_and_comma_lists(self):
        source = self.VIOLATION.replace(
            "model.predict(x)", "model.predict(x)  # repro: allow[*]"
        )
        assert analyze_source(source, APP_PATH) == []
        pragmas = collect_pragmas("x = 1  # repro: allow[REP001, rng-discipline]\n")
        assert is_suppressed(pragmas, 1, "REP001", "engine-funnel")
        assert is_suppressed(pragmas, 1, "REP002", "rng-discipline")
        assert not is_suppressed(pragmas, 1, "REP004", "lock-discipline")

    def test_wrong_rule_pragma_does_not_suppress(self):
        source = self.VIOLATION.replace(
            "model.predict(x)", "model.predict(x)  # repro: allow[rng-discipline]"
        )
        assert len(analyze_source(source, APP_PATH)) == 1

    def test_pragma_inside_string_literal_ignored(self):
        source = 'def f(model):\n    return model.predict("# repro: allow[engine-funnel]")'
        assert len(analyze_source(source, APP_PATH)) == 1

    def test_suppressions_counted_per_run(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(model, x):\n"
            "    return model.predict(x)  # repro: allow[engine-funnel]\n"
        )
        result = analyze_paths([str(target)])
        assert result.findings == []
        assert result.suppressed == 1
        assert result.files_scanned == 1


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #
def _finding(message: str = "direct model query model.predict(...)") -> Finding:
    return Finding(
        rule="REP001",
        name="engine-funnel",
        severity="error",
        path="src/repro/op/example.py",
        line=5,
        col=11,
        message=message,
    )


class TestBaseline:
    def test_round_trip_and_identity_ignores_line(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline([_finding()]).write(target)
        loaded = Baseline.load(target)
        assert len(loaded) == 1
        moved = Finding(**dict(_finding().to_dict(), line=99, col=0))
        assert loaded.is_known(moved)
        assert not loaded.is_known(_finding(message="something else"))

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
        assert not baseline.is_known(_finding())

    def test_stale_entries_surfaced(self):
        baseline = Baseline([_finding(), _finding(message="fixed long ago")])
        stale = baseline.stale_entries([_finding()])
        assert [entry.message for entry in stale] == ["fixed long ago"]

    def test_version_and_shape_validated(self, tmp_path):
        bad_version = tmp_path / "v0.json"
        bad_version.write_text(json.dumps({"version": 0, "findings": []}))
        with pytest.raises(ConfigurationError, match="version"):
            Baseline.load(bad_version)
        bad_shape = tmp_path / "list.json"
        bad_shape.write_text("[]")
        with pytest.raises(ConfigurationError, match="findings"):
            Baseline.load(bad_shape)

    def test_finding_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown Finding fields"):
            Finding.from_dict(dict(_finding().to_dict(), status="new"))


# --------------------------------------------------------------------------- #
# reporters
# --------------------------------------------------------------------------- #
class TestReporters:
    def _result(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(model, x):\n    return model.predict(x)\n")
        return analyze_paths([str(target)])

    def test_json_schema(self, tmp_path):
        result = self._result(tmp_path)
        report = render_json(result, new=result.findings, baselined=[], stale=[])
        assert set(report) == {"version", "findings", "stale_baseline", "summary"}
        assert report["version"] == 1
        assert set(report["summary"]) == {
            "files_scanned", "total", "new", "baselined", "suppressed", "by_rule",
        }
        (row,) = report["findings"]
        assert set(row) == {
            "rule", "name", "severity", "path", "line", "col",
            "message", "hint", "status",
        }
        assert row["status"] == "new"
        assert report["summary"]["by_rule"] == {"REP001": 1}
        json.dumps(report)  # must be JSON-serializable as-is

    def test_json_marks_baselined_rows(self, tmp_path):
        result = self._result(tmp_path)
        report = render_json(result, new=[], baselined=result.findings, stale=[])
        assert [row["status"] for row in report["findings"]] == ["baselined"]
        assert report["summary"]["new"] == 0

    def test_text_report_one_line_per_new_finding(self, tmp_path):
        result = self._result(tmp_path)
        text = render_text(result, new=result.findings, baselined=[], stale=[])
        assert "REP001[engine-funnel]" in text
        assert "1 new, 0 baselined" in text


# --------------------------------------------------------------------------- #
# CLI exit-code contract (what CI gates on)
# --------------------------------------------------------------------------- #
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(engine, x):\n    return engine.predict(x)\n")
        assert lint_main([str(clean), "--no-baseline"]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        assert lint_main([str(bad), "--no-baseline"]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_update_baseline_then_clean_then_ratchet(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.exists()
        # accepted debt no longer fails the run
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        # ...but a new violation still does, and only it is reported
        bad.write_text(
            "def f(model, x):\n"
            "    return model.predict(x)\n"
            "def g(model, x):\n"
            "    return model.predict_proba(x)\n"
        )
        capsys.readouterr()
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "predict_proba" in out
        assert "1 new, 1 baselined" in out

    def test_stale_baseline_reported_not_fatal(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        baseline = tmp_path / "baseline.json"
        lint_main([str(bad), "--baseline", str(baseline), "--update-baseline"])
        bad.write_text("def f(engine, x):\n    return engine.predict(x)\n")
        capsys.readouterr()
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        assert "stale baseline" in capsys.readouterr().out

    def test_json_flag_emits_parseable_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        assert lint_main([str(bad), "--no-baseline", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["new"] == 1

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope"), "--no-baseline"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out

    def test_conflicting_baseline_flags_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path), "--no-baseline", "--update-baseline"])

    def test_module_entry_point_dispatches_lint_verb(self, capsys):
        from repro.__main__ import main as module_main

        assert module_main(["lint", "--list-rules"]) == 0
        assert "REP001" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# self-scan: the shipped tree is clean vs the committed baseline
# --------------------------------------------------------------------------- #
class TestSelfScan:
    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert len(baseline) == 0, "the shipped tree must carry no lint debt"

    def test_shipped_tree_has_no_findings(self):
        # also the regression pin that REP003/REP004/REP005 (which currently
        # find nothing in the tree) stay silent: any future hit fails here
        result = analyze_paths([str(REPO_ROOT / "src" / "repro")])
        assert result.findings == [], "\n".join(f.format() for f in result.findings)
        assert result.by_rule() == {}
        # the justified whitebox sites are pragma'd, not invisible
        assert result.suppressed >= 19

    def test_every_rule_fires_on_its_fixture(self):
        # guards against a rule being silently disabled (e.g. a renamed
        # visit_ method): each must detect its seeded violation
        seeded = {
            "REP001": "def f(model, x):\n    return model.predict(x)\n",
            "REP002": "import numpy as np\nnp.random.seed(0)\n",
            "REP003": "cfg = FuzzerConfig(engine='sharded')\n",
            "REP004": dedent(LOCKED_CLASS),
            "REP005": dedent(
                """
                class C:
                    def to_dict(self):
                        return {"a": 1}

                    @classmethod
                    def from_dict(cls, data):
                        return cls(a=data["a"], b=data["b"])
                """
            ),
            "REP006": "value = future.result()\n",
            "REP007": "shm = SharedMemory(create=True, size=8)\n",
            "REP008": "stamp = time.time()\n",
            "REP009": dedent(
                """
                import threading


                class C:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def f(self):
                        with self._lock:
                            with self._lock:
                                pass
                """
            ),
            "REP010": dedent(
                """
                def run(engine, x):
                    return engine.predict(x)


                def f(model, x):
                    return run(model, x)
                """
            ),
            "REP011": "def f(shards: set):\n    return [s for s in shards]\n",
        }
        for rule_id, source in seeded.items():
            findings = analyze_source(source, APP_PATH)
            assert [f.rule for f in findings] == [rule_id]


# --------------------------------------------------------------------------- #
# REP009 lock-ordering (whole-program; single-module graphs via analyze_source)
# --------------------------------------------------------------------------- #
class TestLockOrdering:
    def test_nested_reacquisition_of_plain_lock_flagged(self):
        source = dedent(
            """
            import threading


            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def merge(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.name) for f in findings] == [("REP009", "lock-ordering")]
        assert "deadlocks itself" in findings[0].message

    def test_rlock_reentry_clean(self):
        source = dedent(
            """
            import threading


            class Engine:
                def __init__(self):
                    self._lock = threading.RLock()

                def merge(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_transitive_self_deadlock_through_call_flagged(self):
        source = dedent(
            """
            import threading


            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP009"]
        assert "re-acquires" in findings[0].message

    def test_cross_class_lock_cycle_flagged_on_both_paths(self):
        source = dedent(
            """
            import threading


            class Coordinator:
                def __init__(self, supervisor):
                    self._lock = threading.Lock()
                    self._sup = Supervisor()

                def merge(self):
                    with self._lock:
                        self._sup.replan()

                def absorb(self):
                    with self._lock:
                        pass


            class Supervisor:
                def __init__(self):
                    self._lock = threading.Lock()

                def replan(self):
                    with self._lock:
                        pass

                def harvest(self):
                    with self._lock:
                        coord = Coordinator(self)
                        coord.absorb()
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert {f.rule for f in findings} == {"REP009"}
        assert len(findings) == 2, "one finding per edge of the cycle"
        assert all("lock-order cycle" in f.message for f in findings)

    def test_consistent_order_clean(self):
        source = dedent(
            """
            import threading


            class Coordinator:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._sup = Supervisor()

                def merge(self):
                    with self._lock:
                        self._sup.replan()


            class Supervisor:
                def __init__(self):
                    self._lock = threading.Lock()

                def replan(self):
                    with self._lock:
                        pass
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_pragma_blesses_impossible_interleaving(self):
        source = dedent(
            """
            import threading


            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def merge(self):
                    with self._lock:
                        with self._lock:  # repro: allow[lock-ordering] fixture
                            pass
            """
        )
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP010 funnel-escape (interprocedural REP001)
# --------------------------------------------------------------------------- #
class TestFunnelEscape:
    def test_model_into_engine_named_parameter_flagged_at_call_site(self):
        source = dedent(
            """
            def run_batch(engine, x):
                return engine.predict(x)


            def attack(model, x):
                return run_batch(model, x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP010", 6)]
        assert "engine-named parameter 'engine'" in findings[0].message

    def test_keyword_argument_escape_flagged(self):
        source = dedent(
            """
            def run_batch(engine, x):
                return engine.predict(x)


            def attack(model, x):
                return run_batch(x=x, engine=model)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP010", 6)]

    def test_query_on_model_returning_call_flagged(self):
        source = dedent(
            """
            def get_model():
                model = load()
                return model


            def attack(x):
                return get_model().predict(x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP010", 7)]
        assert "return value of get_model()" in findings[0].message

    def test_engine_named_local_bound_to_model_flagged(self):
        source = dedent(
            """
            def get_model():
                model = load()
                return model


            def attack(x):
                engine = get_model()
                return engine.predict(x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP010", 8)]
        assert "wearing the funnel's name" in findings[0].message

    def test_transitive_model_return_chain_tracked(self):
        source = dedent(
            """
            def load_model():
                model = build()
                return model


            def get_backend():
                return load_model()


            def attack(x):
                return get_backend().predict(x)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP010", 11)]

    def test_real_engine_values_clean(self):
        source = dedent(
            """
            def run_batch(engine, x):
                return engine.predict(x)


            def campaign(policy, model, x):
                engine = policy.build_engine(model)
                return run_batch(engine, x)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_engine_layer_exempt(self):
        source = dedent(
            """
            def run_batch(engine, x):
                return engine.predict(x)


            def attack(model, x):
                return run_batch(model, x)
            """
        )
        assert analyze_source(source, "src/repro/engine/batching.py") == []

    def test_pragma_blesses_whitebox_helper(self):
        source = dedent(
            """
            def run_batch(engine, x):
                return engine.predict(x)


            def attack(model, x):
                return run_batch(model, x)  # repro: allow[funnel-escape] whitebox
            """
        )
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# REP011 iteration-order
# --------------------------------------------------------------------------- #
class TestIterationOrder:
    def test_for_over_set_local_flagged(self):
        source = dedent(
            """
            def plan(items):
                pending = set(items)
                out = []
                for item in pending:
                    out.append(item)
                return out
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP011", 4)]
        assert "hash-seed dependent" in findings[0].message

    def test_set_annotated_parameter_flagged(self):
        source = dedent(
            """
            def plan(shards: set):
                return [s for s in shards]
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP011", 2)]

    def test_typed_set_annotation_flagged(self):
        source = dedent(
            """
            from typing import Set


            def plan(shards: Set[int]):
                return list(shards)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP011"]

    def test_module_level_set_constant_flagged(self):
        source = dedent(
            """
            KNOWN = {"a", "b"}


            def dump():
                return [k for k in KNOWN]
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP011"]
        assert "KNOWN" in findings[0].message

    def test_set_valued_self_attribute_flagged(self):
        source = dedent(
            """
            class Planner:
                def __init__(self):
                    self.pending = set()

                def drain(self):
                    for item in self.pending:
                        yield item
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP011"]
        assert "self.pending" in findings[0].message

    def test_sorted_iteration_clean(self):
        source = dedent(
            """
            def plan(shards: set):
                out = []
                for shard in sorted(shards):
                    out.append(shard)
                return [s for s in sorted(shards)]
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_order_insensitive_reducers_clean(self):
        source = dedent(
            """
            def stats(values: set):
                return (
                    sum(values),
                    min(values),
                    max(values),
                    len(values),
                    any(v > 0 for v in values),
                )
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_building_a_set_discards_order_clean(self):
        source = dedent(
            """
            def dedupe(shards: set, extra):
                return {s for s in shards} | set(extra)
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_list_materialization_of_set_flagged(self):
        source = dedent(
            """
            def snapshot(shards: set):
                return list(shards)
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP011"]
        assert "list()" in findings[0].message

    def test_membership_and_mutation_clean(self):
        source = dedent(
            """
            def track(seen: set, item):
                if item in seen:
                    return False
                seen.add(item)
                return True
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_pragma_blesses_order_free_consumer(self):
        source = dedent(
            """
            def purge(stale: set, entries):
                for key in stale:  # repro: allow[iteration-order] deletes commute
                    del entries[key]
            """
        )
        assert analyze_source(source, APP_PATH) == []


# --------------------------------------------------------------------------- #
# decorated-statement pragma spans
# --------------------------------------------------------------------------- #
class TestDecoratedPragmas:
    def test_pragma_above_decorator_suppresses_finding_at_def_line(self):
        source = dedent(
            """
            class Estimate:
                # repro: allow[dict-round-trip] loader backfills variance
                @staticmethod
                def to_dict():
                    return {"pmi": 1}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"], variance=data["variance"])
            """
        )
        assert analyze_source(source, APP_PATH) == []

    def test_without_pragma_decorated_serializer_still_flagged(self):
        source = dedent(
            """
            class Estimate:
                @staticmethod
                def to_dict():
                    return {"pmi": 1}

                @classmethod
                def from_dict(cls, data):
                    return cls(pmi=data["pmi"], variance=data["variance"])
            """
        )
        findings = analyze_source(source, APP_PATH)
        assert [f.rule for f in findings] == ["REP005"]

    def test_expansion_unions_ids_across_the_span(self):
        import ast as ast_mod

        source = dedent(
            """
            @alpha  # repro: allow[engine-funnel]
            @beta
            def f(model, x):  # repro: allow[rng-discipline]
                return 1
            """
        )
        tree = ast_mod.parse(source)
        expanded = expand_decorated_pragmas(tree, collect_pragmas(source))
        for line in (1, 2, 3):
            assert is_suppressed(expanded, line, "REP001", "engine-funnel")
            assert is_suppressed(expanded, line, "REP002", "rng-discipline")
        assert not is_suppressed(expanded, 4, "REP001", "engine-funnel")

    def test_undecorated_statements_unaffected(self):
        import ast as ast_mod

        source = "x = 1  # repro: allow[engine-funnel]\ny = 2\n"
        tree = ast_mod.parse(source)
        expanded = expand_decorated_pragmas(tree, collect_pragmas(source))
        assert expanded == collect_pragmas(source)


# --------------------------------------------------------------------------- #
# --explain
# --------------------------------------------------------------------------- #
class TestExplain:
    def test_every_rule_docstring_has_example_and_fix(self):
        for rule in default_rules() + default_program_rules():
            sections = rule_doc_sections(type(rule))
            assert sections["rationale"], rule.rule_id
            assert sections["example"], f"{rule.rule_id} docstring lacks Example::"
            assert sections["fix"], f"{rule.rule_id} docstring lacks Fix::"

    def test_explain_by_id_and_slug(self):
        by_id = explain_rule("REP009")
        by_slug = explain_rule("lock-ordering")
        assert by_id == by_slug
        assert "Example:" in by_id and "Fix:" in by_id
        assert "repro: allow[lock-ordering]" in by_id

    def test_explain_unknown_rule_raises(self):
        with pytest.raises(ConfigurationError, match="unknown rule"):
            explain_rule("REP999")

    def test_cli_explain_exits_zero_and_prints_sections(self, capsys):
        assert lint_main(["--explain", "REP010"]) == 0
        out = capsys.readouterr().out
        assert "REP010 [funnel-escape]" in out
        assert "Example:" in out and "Fix:" in out

    def test_cli_explain_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--explain", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# SARIF output
# --------------------------------------------------------------------------- #
#: Trimmed (but faithful) subset of the SARIF 2.1.0 schema: the properties
#: GitHub code scanning actually consumes, with required fields and types as
#: the spec defines them.  Validated with jsonschema when available (dev
#: machines); the structural assertions below run everywhere.
SARIF_SCHEMA_SUBSET = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type": "string"}
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "partialFingerprints": {"type": "object"},
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def _findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        return analyze_paths([str(bad)]).findings

    def test_log_validates_against_sarif_schema(self, tmp_path):
        log = render_sarif(self._findings(tmp_path))
        try:
            import jsonschema
        except ImportError:
            jsonschema = None
        if jsonschema is not None:
            jsonschema.validate(log, SARIF_SCHEMA_SUBSET)
        # structural spot checks run with or without jsonschema
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "REP001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2
        assert location["region"]["startColumn"] >= 1

    def test_rule_table_covers_all_rules(self, tmp_path):
        log = render_sarif([])
        ids = [row["id"] for row in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == sorted(ids)
        for rule_id in ("REP001", "REP008", "REP009", "REP010", "REP011"):
            assert rule_id in ids

    def test_rule_index_points_at_matching_descriptor(self, tmp_path):
        log = render_sarif(self._findings(tmp_path))
        run = log["runs"][0]
        (result,) = run["results"]
        descriptor = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert descriptor["id"] == result["ruleId"]

    def test_baselined_findings_carry_suppressions(self, tmp_path):
        findings = self._findings(tmp_path)
        log = render_sarif([], baselined=findings)
        (result,) = log["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "external"
        fresh = render_sarif(findings)
        assert "suppressions" not in fresh["runs"][0]["results"][0]

    def test_fingerprint_stable_across_line_moves(self, tmp_path):
        findings = self._findings(tmp_path)
        moved = [Finding(**dict(f.to_dict(), line=f.line + 7)) for f in findings]
        first = render_sarif(findings)["runs"][0]["results"][0]
        second = render_sarif(moved)["runs"][0]["results"][0]
        assert (
            first["partialFingerprints"]["reproLintKey/v1"]
            == second["partialFingerprints"]["reproLintKey/v1"]
        )

    def test_cli_sarif_flag_emits_parseable_log(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        assert lint_main([str(bad), "--no-baseline", "--sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert len(log["runs"][0]["results"]) == 1

    def test_sarif_and_json_flags_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path), "--sarif", "--json"])


# --------------------------------------------------------------------------- #
# --changed mode
# --------------------------------------------------------------------------- #
class TestChangedMode:
    def _git(self, cwd, *argv):
        import subprocess

        proc = subprocess.run(
            ["git", *argv], cwd=cwd, capture_output=True, text=True, timeout=30,
            env={
                "PATH": __import__("os").environ["PATH"],
                "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(cwd),
            },
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def _repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        clean = tmp_path / "clean.py"
        clean.write_text("def f(engine, x):\n    return engine.predict(x)\n")
        bad = tmp_path / "bad.py"
        bad.write_text("def f(model, x):\n    return model.predict(x)\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        return clean, bad

    def test_changed_scopes_report_to_touched_files(self, tmp_path, capsys, monkeypatch):
        clean, bad = self._repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        # bad.py is committed and untouched: full lint fails, --changed passes
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        capsys.readouterr()
        assert lint_main([str(tmp_path), "--no-baseline", "--changed"]) == 0
        # touching the violating file brings its findings back in scope
        bad.write_text(bad.read_text() + "\n# touched\n")
        capsys.readouterr()
        assert lint_main([str(tmp_path), "--no-baseline", "--changed"]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_untracked_files_count_as_changed(self, tmp_path, capsys, monkeypatch):
        self._repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        fresh = tmp_path / "fresh.py"
        fresh.write_text("def g(model, x):\n    return model.predict(x)\n")
        assert lint_main([str(tmp_path), "--no-baseline", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "bad.py" not in out

    def test_changed_outside_git_exits_two(self, tmp_path, capsys, monkeypatch):
        lonely = tmp_path / "lonely"
        lonely.mkdir()
        (lonely / "mod.py").write_text("x = 1\n")
        monkeypatch.chdir(lonely)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
        assert lint_main([str(lonely), "--no-baseline", "--changed"]) == 2
        assert "failed" in capsys.readouterr().err
