"""Tests for repro.config."""

import numpy as np
import pytest

from repro.config import DEFAULTS, EPSILON, GlobalConfig, clip01, ensure_rng, spawn_rngs
from repro.exceptions import ConfigurationError


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            ensure_rng(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(ConfigurationError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_deterministic_given_seed(self):
        a = [g.random() for g in spawn_rngs(7, 3)]
        b = [g.random() for g in spawn_rngs(7, 3)]
        np.testing.assert_allclose(a, b)


class TestClip01:
    def test_clips_below(self):
        assert clip01(np.array([-0.5])) == pytest.approx(0.0)

    def test_clips_above(self):
        assert clip01(np.array([1.7])) == pytest.approx(1.0)

    def test_interior_unchanged(self):
        values = np.array([0.0, 0.3, 1.0])
        np.testing.assert_allclose(clip01(values), values)


class TestGlobalConfig:
    def test_defaults_exist(self):
        assert DEFAULTS.epsilon == EPSILON
        assert DEFAULTS.default_seed == 2021

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULTS.epsilon = 1.0  # type: ignore[misc]

    def test_custom_instance(self):
        config = GlobalConfig(default_seed=None)
        assert config.default_seed is None
