"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    available_datasets,
    make_concentric_rings,
    make_dataset,
    make_gaussian_clusters,
    make_glyph_digits,
    make_shape_scenes,
    make_two_moons,
)
from repro.exceptions import ConfigurationError, DataError


ALL_GENERATORS = [
    ("gaussian-clusters", make_gaussian_clusters, {}),
    ("two-moons", make_two_moons, {}),
    ("concentric-rings", make_concentric_rings, {}),
    ("glyph-digits", make_glyph_digits, {"num_samples": 200}),
    ("shape-scenes", make_shape_scenes, {"num_samples": 200}),
]


@pytest.mark.parametrize("name,factory,kwargs", ALL_GENERATORS, ids=[g[0] for g in ALL_GENERATORS])
class TestAllGenerators:
    def test_inputs_in_unit_interval(self, name, factory, kwargs):
        dataset = factory(rng=0, **kwargs)
        assert np.all(dataset.x >= 0.0) and np.all(dataset.x <= 1.0)

    def test_labels_in_range(self, name, factory, kwargs):
        dataset = factory(rng=0, **kwargs)
        assert dataset.y.min() >= 0
        assert dataset.y.max() < dataset.num_classes

    def test_deterministic_with_seed(self, name, factory, kwargs):
        a = factory(rng=42, **kwargs)
        b = factory(rng=42, **kwargs)
        np.testing.assert_allclose(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self, name, factory, kwargs):
        a = factory(rng=1, **kwargs)
        b = factory(rng=2, **kwargs)
        assert not np.allclose(a.x, b.x)

    def test_class_names_present(self, name, factory, kwargs):
        dataset = factory(rng=0, **kwargs)
        assert dataset.class_names is not None
        assert len(dataset.class_names) == dataset.num_classes


class TestGaussianClusters:
    def test_respects_class_priors(self):
        priors = [0.7, 0.1, 0.1, 0.1]
        dataset = make_gaussian_clusters(4000, class_priors=priors, rng=0)
        freqs = dataset.class_frequencies()
        assert freqs[0] == pytest.approx(0.7, abs=0.03)

    def test_higher_dimensional(self):
        dataset = make_gaussian_clusters(100, num_features=5, rng=0)
        assert dataset.num_features == 5

    def test_clusters_are_separated_for_small_std(self):
        dataset = make_gaussian_clusters(500, cluster_std=0.02, rng=0)
        centers = [dataset.x[dataset.y == c].mean(axis=0) for c in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.linalg.norm(centers[i] - centers[j]) > 0.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_samples": 0},
            {"num_classes": 1},
            {"num_features": 1},
            {"cluster_std": 0.0},
        ],
    )
    def test_invalid_args(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_gaussian_clusters(**{"num_samples": 100, **kwargs})

    def test_invalid_priors(self):
        with pytest.raises(DataError):
            make_gaussian_clusters(100, class_priors=[0.5, 0.5])


class TestTwoMoons:
    def test_binary(self):
        assert make_two_moons(100, rng=0).num_classes == 2

    def test_skewed_priors(self):
        dataset = make_two_moons(2000, class_priors=[0.9, 0.1], rng=0)
        assert dataset.class_frequencies()[0] == pytest.approx(0.9, abs=0.03)

    def test_invalid_noise(self):
        with pytest.raises(ConfigurationError):
            make_two_moons(100, noise=-0.1)


class TestConcentricRings:
    def test_ring_radii_ordered(self):
        dataset = make_concentric_rings(1500, num_rings=3, ring_width=0.01, rng=0)
        center = np.array([0.5, 0.5])
        radii = [
            np.linalg.norm(dataset.x[dataset.y == c] - center, axis=1).mean() for c in range(3)
        ]
        assert radii[0] < radii[1] < radii[2]

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            make_concentric_rings(100, num_rings=1)
        with pytest.raises(ConfigurationError):
            make_concentric_rings(100, ring_width=0.0)


class TestGlyphDigits:
    def test_image_shape_metadata(self):
        dataset = make_glyph_digits(50, image_size=12, rng=0)
        assert dataset.image_shape == (1, 12, 12)
        assert dataset.num_features == 144

    def test_glyph_classes_are_distinguishable(self):
        # mean images of different digits should differ substantially
        dataset = make_glyph_digits(400, num_classes=4, noise=0.02, max_shift=0, rng=0)
        means = [dataset.x[dataset.y == c].mean(axis=0) for c in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.linalg.norm(means[i] - means[j]) > 0.5

    def test_skewed_priors(self):
        priors = [0.5, 0.3, 0.1, 0.1]
        dataset = make_glyph_digits(2000, num_classes=4, class_priors=priors, rng=0)
        assert dataset.class_frequencies()[0] == pytest.approx(0.5, abs=0.04)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_classes": 11},
            {"num_classes": 1},
            {"image_size": 6},
            {"num_samples": 0},
            {"noise": -0.1},
        ],
    )
    def test_invalid_args(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_glyph_digits(**{"num_samples": 10, **kwargs})


class TestShapeScenes:
    def test_four_classes(self):
        dataset = make_shape_scenes(40, rng=0)
        assert dataset.num_classes == 4
        assert dataset.class_names == ["circle", "square", "triangle", "cross"]

    def test_shapes_have_positive_mass(self):
        dataset = make_shape_scenes(40, noise=0.0, rng=0)
        assert np.all(dataset.x.sum(axis=1) > 1.0)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            make_shape_scenes(0)
        with pytest.raises(ConfigurationError):
            make_shape_scenes(10, image_size=4)


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert "glyph-digits" in names and "two-moons" in names

    def test_make_dataset_dispatch(self):
        dataset = make_dataset("two-moons", num_samples=50, rng=0)
        assert dataset.name == "two-moons"

    def test_make_dataset_unknown(self):
        with pytest.raises(ConfigurationError):
            make_dataset("mnist")
