"""Tests for the naturalness scorers (local-OP proxies)."""

import numpy as np
import pytest

from repro.data import make_gaussian_clusters, make_glyph_digits
from repro.exceptions import ConfigurationError, NotFittedError
from repro.naturalness import (
    CompositeNaturalness,
    DensityNaturalness,
    ReconstructionNaturalness,
    default_naturalness_scorer,
)
from repro.op import ground_truth_profile_for_clusters


@pytest.fixture(scope="module")
def natural_2d():
    return make_gaussian_clusters(400, num_classes=3, cluster_std=0.05, rng=0).x


@pytest.fixture(scope="module")
def natural_images():
    return make_glyph_digits(200, image_size=10, num_classes=4, rng=1).x


class TestDensityNaturalness:
    def test_natural_scores_near_one(self, natural_2d):
        scorer = DensityNaturalness(rng=0).fit(natural_2d)
        scores = scorer.score(natural_2d[:100])
        assert np.median(scores) == pytest.approx(1.0, rel=0.25)

    def test_off_manifold_scores_lower(self, natural_2d):
        scorer = DensityNaturalness(rng=0).fit(natural_2d)
        natural_score = scorer.score(natural_2d[:100]).mean()
        corner = np.full((20, 2), 0.01)
        assert scorer.score(corner).mean() < natural_score

    def test_uses_supplied_profile(self, natural_2d):
        profile = ground_truth_profile_for_clusters(3, 2, 0.05)
        scorer = DensityNaturalness(profile=profile).fit(natural_2d)
        centre_score = scorer.score(profile.means[:1])
        gap_score = scorer.score(np.array([[0.05, 0.95]]))
        assert centre_score[0] > gap_score[0]

    def test_requires_fit(self, natural_2d):
        with pytest.raises(NotFittedError):
            DensityNaturalness().score(natural_2d[:2])

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            DensityNaturalness().fit(np.zeros((0, 2)))

    def test_invalid_max_pool(self):
        with pytest.raises(ConfigurationError):
            DensityNaturalness(max_pool=0)


class TestReconstructionNaturalness:
    def test_natural_scores_higher_than_noise(self, natural_images):
        scorer = ReconstructionNaturalness(rng=0).fit(natural_images)
        natural_scores = scorer.score(natural_images[:50])
        noise = np.random.default_rng(2).random((50, natural_images.shape[1]))
        noise_scores = scorer.score(noise)
        assert natural_scores.mean() > noise_scores.mean()

    def test_scores_positive(self, natural_images):
        scorer = ReconstructionNaturalness(rng=0).fit(natural_images)
        assert np.all(scorer.score(natural_images[:20]) > 0)

    def test_requires_fit(self, natural_images):
        with pytest.raises(NotFittedError):
            ReconstructionNaturalness().score(natural_images[:2])

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            ReconstructionNaturalness().fit(np.zeros((0, 4)))


class TestCompositeNaturalness:
    def test_combines_scorers(self, natural_2d):
        composite = CompositeNaturalness(
            [DensityNaturalness(rng=0), DensityNaturalness(bandwidth=0.1, rng=1)]
        ).fit(natural_2d)
        scores = composite.score(natural_2d[:30])
        assert scores.shape == (30,)
        assert np.all(scores > 0)

    def test_off_manifold_still_lower(self, natural_2d):
        composite = CompositeNaturalness([DensityNaturalness(rng=0)]).fit(natural_2d)
        assert composite.score(np.full((5, 2), 0.01)).mean() < composite.score(natural_2d[:50]).mean()

    def test_weights_validation(self):
        with pytest.raises(ConfigurationError):
            CompositeNaturalness([])
        with pytest.raises(ConfigurationError):
            CompositeNaturalness([DensityNaturalness()], weights=[1.0, 2.0])
        with pytest.raises(ConfigurationError):
            CompositeNaturalness([DensityNaturalness()], weights=[-1.0])

    def test_is_fitted_reflects_members(self, natural_2d):
        composite = CompositeNaturalness([DensityNaturalness(rng=0)])
        assert not composite.is_fitted
        composite.fit(natural_2d)
        assert composite.is_fitted


class TestDefaultScorer:
    def test_low_dim_uses_density_only(self, natural_2d):
        scorer = default_naturalness_scorer(natural_2d, use_autoencoder=True, rng=0)
        assert isinstance(scorer, DensityNaturalness)

    def test_high_dim_uses_composite(self, natural_images):
        scorer = default_naturalness_scorer(natural_images, use_autoencoder=True, rng=0)
        assert isinstance(scorer, CompositeNaturalness)
        assert scorer.is_fitted

    def test_scores_discriminate(self, natural_images):
        scorer = default_naturalness_scorer(natural_images, use_autoencoder=True, rng=0)
        natural = scorer.score(natural_images[:40]).mean()
        perturbed = np.clip(
            natural_images[:40] + np.random.default_rng(3).uniform(-0.4, 0.4, (40, natural_images.shape[1])),
            0,
            1,
        )
        assert scorer.score(perturbed).mean() < natural
