"""Tests for experiment scenarios and text reporting."""

import numpy as np
import pytest

from repro.evaluation import (
    available_scenarios,
    campaign_to_rows,
    format_table,
    make_clusters_scenario,
    make_moons_scenario,
    make_scenario,
    summarize_series,
)
from repro.exceptions import ConfigurationError
from repro.nn import accuracy
from repro.types import CampaignReport, IterationReport


class TestScenarios:
    @pytest.fixture(scope="class")
    def small_clusters(self):
        return make_clusters_scenario(num_samples=400, epochs=10, rng=0)

    def test_clusters_scenario_components(self, small_clusters):
        scenario = small_clusters
        assert len(scenario.train_data) > 0
        assert len(scenario.operational_data) > 0
        assert scenario.model.is_trained
        assert scenario.naturalness.is_fitted
        assert scenario.partition.num_cells > 0
        assert scenario.operational_priors.sum() == pytest.approx(1.0)

    def test_model_is_reasonably_accurate(self, small_clusters):
        scenario = small_clusters
        acc = accuracy(scenario.test_data.y, scenario.model.predict(scenario.test_data.x))
        assert acc > 0.8

    def test_operational_data_is_skewed(self, small_clusters):
        scenario = small_clusters
        freqs = scenario.operational_data.class_frequencies()
        # the operational profile concentrates on class 0
        assert freqs[0] > 1.5 / scenario.operational_data.num_classes

    def test_profile_density_integrates_with_partition(self, small_clusters):
        scenario = small_clusters
        probs = scenario.profile.cell_probabilities(scenario.partition, num_samples=1000, rng=0)
        assert probs.sum() == pytest.approx(1.0)

    def test_moons_scenario(self):
        scenario = make_moons_scenario(num_samples=400, epochs=10, rng=0)
        assert scenario.train_data.num_classes == 2
        acc = accuracy(scenario.test_data.y, scenario.model.predict(scenario.test_data.x))
        assert acc > 0.8

    def test_registry(self):
        assert set(available_scenarios()) == {"gaussian-clusters", "two-moons", "glyph-digits"}
        scenario = make_scenario("gaussian-clusters", num_samples=300, epochs=5, rng=1)
        assert scenario.name == "gaussian-clusters"
        with pytest.raises(ConfigurationError):
            make_scenario("imagenet")

    def test_invalid_priors_rejected(self):
        with pytest.raises(ConfigurationError):
            make_clusters_scenario(num_samples=300, operational_priors=[0.5, 0.5], rng=0)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"method": "a", "score": 1.2345, "count": 10},
            {"method": "longer-name", "score": 0.5, "count": 2},
        ]
        text = format_table(rows, title="results")
        lines = text.splitlines()
        assert lines[0] == "results"
        assert "method" in lines[1]
        assert len(lines) == 5

    def test_format_table_handles_missing_keys(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_campaign_to_rows(self):
        campaign = CampaignReport()
        campaign.append(
            IterationReport(
                iteration=0,
                seeds_selected=5,
                test_cases_used=50,
                aes_detected=2,
                pmi_before=0.1,
                pmi_after=0.08,
                operational_accuracy_before=0.9,
                operational_accuracy_after=0.92,
                reliability_target=0.05,
                target_met=False,
            )
        )
        rows = campaign_to_rows(campaign)
        assert len(rows) == 1
        assert rows[0]["AEs"] == 2
        assert rows[0]["pmi-after"] == pytest.approx(0.08)

    def test_summarize_series(self):
        text = summarize_series("budget vs AEs", [100, 200], [3, 7])
        assert "budget vs AEs" in text
        assert len(text.splitlines()) == 3

    def test_summarize_series_mismatch(self):
        with pytest.raises(ConfigurationError):
            summarize_series("x", [1, 2], [1])
