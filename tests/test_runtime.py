"""Runtime API: ExecutionPolicy, the backend registry, CampaignSpec, shims.

The acceptance pins of the api_redesign PR:

* ``ExecutionPolicy`` / ``CampaignSpec`` serialize exactly (dict and file
  round-trips) and reject unknown keys and unknown backend names.
* A campaign configured via ``ExecutionPolicy`` is **bit-identical**
  (detections, per-seed query counts, reliability estimates, ``QueryStats``)
  to the same campaign configured via the legacy knobs, for both the
  in-process (``batched``) and replicated (``sharded``) backends.
* Every legacy knob emits one ``DeprecationWarning`` naming the
  ``ExecutionPolicy`` replacement.
* ``python -m repro run --spec`` records the spec document verbatim,
  ``show`` renders it, and ``run --from-run`` re-launches from it.
"""

import json
import warnings

import numpy as np
import pytest

from repro.data import build_partition_for_dataset
from repro.engine import BatchedQueryEngine, QueryCache
from repro.evaluation.scenarios import Scenario
from repro.exceptions import (
    AttackError,
    ConfigurationError,
    FuzzingError,
    ReliabilityError,
)
from repro.fuzzing import DEFAULT_FUZZER_POLICY, FuzzerConfig, OperationalFuzzer
from repro.reliability import ReliabilityAssessor
from repro.runtime import (
    CampaignSpec,
    ExecutionPolicy,
    ModelBackend,
    ReplicatedBackend,
    SequentialBackend,
    available_backends,
    register_backend,
    unregister_backend,
)


def _legacy(factory, *args, **kwargs):
    """Build an object through its deprecated knobs, warnings silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return factory(*args, **kwargs)


def _campaign_digest(campaign):
    """Bit-comparable digest of a fuzzing campaign's logical outcome."""
    return [
        (
            r.seed_index,
            r.queries,
            r.best_fitness,
            r.candidates_rejected_by_naturalness,
            None
            if r.adversarial_example is None
            else r.adversarial_example.perturbed.tobytes(),
        )
        for r in campaign.per_seed
    ]


# --------------------------------------------------------------------------- #
# ExecutionPolicy: serialization and validation
# --------------------------------------------------------------------------- #
class TestExecutionPolicy:
    def test_dict_roundtrip_is_exact(self):
        policy = ExecutionPolicy(
            backend="sharded",
            num_workers=3,
            transport="shm",
            batch_size=128,
            cache=True,
            cache_max_entries=99,
            cache_dir="/tmp/some-cache",
            checkpoint_every=2,
        )
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy

    def test_to_dict_is_json_safe(self):
        payload = ExecutionPolicy().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_file_roundtrip(self, tmp_path):
        policy = ExecutionPolicy(batch_size=77, cache=True, checkpoint_every=5)
        path = tmp_path / "nested" / "policy.json"
        policy.to_file(path)
        assert ExecutionPolicy.from_file(path) == policy

    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "policy.toml"
        path.write_text('backend = "sharded"\nnum_workers = 2\ncache = true\n')
        policy = ExecutionPolicy.from_file(path)
        assert policy.backend == "sharded"
        assert policy.num_workers == 2
        assert policy.cache is True

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown ExecutionPolicy"):
            ExecutionPolicy.from_dict({"backend": "batched", "warp_factor": 9})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            ExecutionPolicy(backend="quantum")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"transport": "carrier-pigeon"},
            {"batch_size": 0},
            {"cache_max_entries": 0},
            {"checkpoint_every": -1},
            {"rng_spawning": "global"},
            {"cache": "yes"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(**kwargs)

    def test_replace_validates(self):
        policy = ExecutionPolicy()
        assert policy.replace(num_workers=4).num_workers == 4
        with pytest.raises(ConfigurationError):
            policy.replace(backend="quantum")

    def test_cache_dir_coerced_to_str(self, tmp_path):
        policy = ExecutionPolicy(cache=True, cache_dir=tmp_path)
        assert policy.cache_dir == str(tmp_path)
        assert json.loads(json.dumps(policy.to_dict()))["cache_dir"] == str(tmp_path)


# --------------------------------------------------------------------------- #
# the backend registry and the engine factory
# --------------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_shipping_backends_registered(self):
        assert set(available_backends()) >= {"batched", "sharded"}

    def test_engines_and_models_satisfy_model_backend(self, trained_cluster_model):
        assert isinstance(trained_cluster_model, ModelBackend)
        engine = BatchedQueryEngine(trained_cluster_model)
        assert isinstance(engine, ModelBackend)

    def test_build_engine_selects_backend(self, trained_cluster_model):
        batched = ExecutionPolicy().build_engine(trained_cluster_model)
        assert isinstance(batched, SequentialBackend)
        sharded = ExecutionPolicy(backend="sharded", num_workers=2).build_engine(
            trained_cluster_model
        )
        try:
            assert isinstance(sharded, ReplicatedBackend)
            assert sharded.num_workers == 2
        finally:
            sharded.close()

    def test_build_engine_passthrough_shares_engine(self, trained_cluster_model):
        owned = BatchedQueryEngine(trained_cluster_model, batch_size=3)
        assert ExecutionPolicy(backend="sharded").build_engine(owned) is owned

    def test_session_closes_created_engines_only(self, trained_cluster_model):
        policy = ExecutionPolicy(backend="sharded", num_workers=2)
        with policy.session(trained_cluster_model) as engine:
            engine.predict(np.zeros((3, 2)))
            assert engine._pools is not None
        assert engine._pools is None
        owned = policy.build_engine(trained_cluster_model)
        try:
            owned.predict(np.zeros((3, 2)))
            with policy.session(owned) as passed_through:
                assert passed_through is owned
            assert owned._pools is not None
        finally:
            owned.close()

    def test_policy_cache_spec_builds_caches(self, tmp_path):
        from repro.store import PersistentQueryCache

        assert ExecutionPolicy().build_cache() is False
        assert ExecutionPolicy(cache=True).build_cache() is True
        durable = ExecutionPolicy(cache=True, cache_dir=str(tmp_path)).build_cache()
        assert isinstance(durable, PersistentQueryCache)
        # cache_dir without cache=True stays off (cache is the master switch)
        assert ExecutionPolicy(cache=False, cache_dir=str(tmp_path)).build_cache() is False

    def test_custom_backend_plugs_in(self, trained_cluster_model):
        calls = []

        try:

            @register_backend("recording")
            class RecordingBackend(BatchedQueryEngine):
                @classmethod
                def from_policy(cls, model, naturalness, policy, cache):
                    calls.append(policy.backend)
                    return cls(model, naturalness=naturalness,
                               batch_size=policy.batch_size, cache=cache)

            policy = ExecutionPolicy(backend="recording", batch_size=7)
            engine = policy.build_engine(trained_cluster_model)
            assert isinstance(engine, RecordingBackend)
            assert engine.batch_size == 7
            assert calls == ["recording"]
        finally:
            unregister_backend("recording")
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(backend="recording")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_backend("batched")
            class Shadow(BatchedQueryEngine):
                @classmethod
                def from_policy(cls, model, naturalness, policy, cache):
                    raise AssertionError("never built")

    def test_backend_requires_factory(self):
        with pytest.raises(ConfigurationError, match="from_policy"):

            @register_backend("no-factory")
            class Broken:
                pass


# --------------------------------------------------------------------------- #
# deprecation shims: one warning per knob, naming the replacement
# --------------------------------------------------------------------------- #
class TestLegacyKnobShims:
    @pytest.mark.parametrize(
        "kwargs, knob",
        [
            ({"num_workers": 2}, "num_workers"),
            ({"batch_size": 64}, "batch_size"),
            ({"use_query_cache": False}, "use_query_cache"),
            ({"cache_max_entries": 128}, "cache_max_entries"),
            ({"cache_dir": "/tmp/x"}, "cache_dir"),
            ({"checkpoint_every": 3}, "checkpoint_every"),
            ({"execution": "sharded"}, "execution"),
        ],
    )
    def test_fuzzer_config_knobs_warn_and_name_replacement(self, kwargs, knob):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy") as record:
            FuzzerConfig(**kwargs)
        messages = [str(w.message) for w in record]
        assert any(f"FuzzerConfig({knob}=...)" in m for m in messages)

    def test_fuzzer_legacy_knobs_fold_into_policy(self):
        cfg = _legacy(
            FuzzerConfig,
            execution="sharded",
            num_workers=3,
            batch_size=32,
            use_query_cache=False,
            cache_max_entries=11,
            cache_dir="/tmp/c",
            checkpoint_every=4,
        )
        assert cfg.execution == "population"  # control flow normalised
        assert cfg.policy == ExecutionPolicy(
            backend="sharded",
            num_workers=3,
            batch_size=32,
            cache=False,
            cache_max_entries=11,
            cache_dir="/tmp/c",
            checkpoint_every=4,
        )
        # the shims are spent: reconstructing from the resolved config is
        # warning-free and equal
        import dataclasses

        assert dataclasses.replace(cfg) == cfg
        assert cfg.num_workers is None and cfg.batch_size is None

    def test_fuzzer_sharded_alias_keeps_historical_worker_default(self):
        cfg = _legacy(FuzzerConfig, execution="sharded")
        assert cfg.policy.backend == "sharded"
        assert cfg.policy.num_workers == 2

    def test_fuzzer_default_policy(self):
        cfg = FuzzerConfig()
        assert cfg.policy == DEFAULT_FUZZER_POLICY
        assert cfg.policy.cache is True  # the fuzzer's historical default

    def test_fuzzer_legacy_validation_keeps_its_taxonomy(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(FuzzingError):
                FuzzerConfig(batch_size=0)

    def test_workflow_config_knobs_warn(self):
        from repro.core import WorkflowConfig

        for kwargs in (
            {"engine": "sharded"},
            {"num_workers": 2},
            {"cache_dir": "/tmp/x"},
            {"checkpoint_every": 1},
        ):
            with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
                WorkflowConfig(**kwargs)

    def test_workflow_legacy_engine_resolves_overrides(self):
        from repro.core import WorkflowConfig

        cfg = _legacy(WorkflowConfig, engine="sharded", num_workers=2, cache_dir="/tmp/c")
        execution, patch = cfg.fuzzer_overrides()
        assert execution == "population"
        assert patch == {"backend": "sharded", "num_workers": 2, "cache_dir": "/tmp/c"}
        assert cfg.assessor_policy() == ExecutionPolicy(backend="sharded", num_workers=2)
        assert cfg.checkpoint_cadence == 0

    def test_workflow_policy_drives_cadence_and_assessor(self):
        from repro.core import WorkflowConfig

        policy = ExecutionPolicy(backend="sharded", num_workers=2, cache=True,
                                 checkpoint_every=3)
        cfg = WorkflowConfig(policy=policy)
        assert cfg.checkpoint_cadence == 3
        assert cfg.assessor_policy() == policy.replace(checkpoint_every=0)
        _, patch = cfg.fuzzer_overrides()
        assert patch["backend"] == "sharded"
        assert "checkpoint_every" not in patch  # fuzzer cadence stays its own

    def test_workflow_policy_config_copies_warning_free(self):
        import dataclasses

        from repro.core import WorkflowConfig

        cfg = WorkflowConfig(policy=ExecutionPolicy(cache=True, checkpoint_every=3))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            copied = dataclasses.replace(cfg)
        assert copied.checkpoint_cadence == 3
        assert copied == cfg

    def test_legacy_engine_sequential_warning_names_fuzzer_execution(self):
        from repro.core import WorkflowConfig

        with pytest.warns(DeprecationWarning, match="FuzzerConfig"):
            cfg = WorkflowConfig(engine="sequential")
        execution, patch = cfg.fuzzer_overrides()
        assert execution == "sequential"
        # the named replacement must not be an ExecutionPolicy backend —
        # the control flow has no policy equivalent
        assert patch["backend"] == "batched"

    def test_wrong_typed_policy_rejected_at_construction(self):
        from repro.attacks import RandomFuzz
        from repro.core import WorkflowConfig

        with pytest.raises(FuzzingError, match="ExecutionPolicy"):
            FuzzerConfig(policy="sharded")
        with pytest.raises(ConfigurationError, match="ExecutionPolicy"):
            WorkflowConfig(policy={"backend": "sharded"})
        with pytest.raises(AttackError, match="ExecutionPolicy"):
            RandomFuzz(policy="batched")

    def test_assessor_and_evaluator_knobs_warn(self, cluster_profile, clusters_dataset):
        from repro.reliability.cells import CellRobustnessEvaluator

        partition = build_partition_for_dataset(
            clusters_dataset.x, scheme="grid", bins_per_dim=4
        )
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            ReliabilityAssessor(
                partition, cluster_profile, engine="batched", rng=0
            )
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            CellRobustnessEvaluator(partition, batch_size=64)
        with pytest.raises(ReliabilityError):
            _legacy(CellRobustnessEvaluator, partition, num_workers=0)

    def test_attack_knobs_warn(self):
        from repro.attacks import BoundaryNudge, GaussianNoise, RandomFuzz

        for cls in (RandomFuzz, GaussianNoise, BoundaryNudge):
            with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
                attack = cls(engine="batched", batch_size=32)
            assert attack.policy.batch_size == 32
        with pytest.raises(AttackError):
            _legacy(RandomFuzz, engine="warp")


# --------------------------------------------------------------------------- #
# legacy knobs vs ExecutionPolicy: bit-identical campaigns
# --------------------------------------------------------------------------- #
class TestLegacyPolicyEquivalence:
    """Old-style and new-style configuration of the *same* campaign must be
    indistinguishable: detections, per-seed query counts, fitness, rejected
    counts and QueryStats, for both shipping backends."""

    def _run(self, config, model, naturalness, data):
        fuzzer = OperationalFuzzer(naturalness, config=config, natural_pool=data.x)
        campaign = fuzzer.fuzz(model, data.x[:10], data.y[:10], budget=120, rng=9)
        return campaign, fuzzer.last_query_stats

    def test_fuzzer_batched_equivalence(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        base = dict(epsilon=0.12, queries_per_seed=15, naturalness_threshold=0.3)
        legacy_cfg = _legacy(
            FuzzerConfig, batch_size=32, use_query_cache=True, **base
        )
        policy_cfg = FuzzerConfig(
            policy=ExecutionPolicy(batch_size=32, cache=True), **base
        )
        legacy, legacy_stats = self._run(
            legacy_cfg, trained_cluster_model, cluster_naturalness,
            operational_cluster_data,
        )
        modern, modern_stats = self._run(
            policy_cfg, trained_cluster_model, cluster_naturalness,
            operational_cluster_data,
        )
        assert _campaign_digest(legacy) == _campaign_digest(modern)
        assert legacy_stats.as_dict() == modern_stats.as_dict()

    def test_fuzzer_sharded_equivalence(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        base = dict(epsilon=0.12, queries_per_seed=15, naturalness_threshold=0.3)
        legacy_cfg = _legacy(
            FuzzerConfig, execution="sharded", num_workers=2, batch_size=32, **base
        )
        policy_cfg = FuzzerConfig(
            policy=ExecutionPolicy(
                backend="sharded", num_workers=2, batch_size=32, cache=True
            ),
            **base,
        )
        legacy, legacy_stats = self._run(
            legacy_cfg, trained_cluster_model, cluster_naturalness,
            operational_cluster_data,
        )
        modern, modern_stats = self._run(
            policy_cfg, trained_cluster_model, cluster_naturalness,
            operational_cluster_data,
        )
        assert _campaign_digest(legacy) == _campaign_digest(modern)
        assert legacy_stats.as_dict() == modern_stats.as_dict()

    @pytest.mark.parametrize("backend,workers", [("batched", 1), ("sharded", 2)])
    def test_attack_equivalence(
        self, backend, workers, trained_cluster_model, operational_cluster_data
    ):
        from repro.attacks import RandomFuzz

        x = operational_cluster_data.x[:20]
        y = operational_cluster_data.y[:20]
        legacy_attack = _legacy(
            RandomFuzz, epsilon=0.1, batch_size=16, engine=backend,
            num_workers=workers,
        )
        policy_attack = RandomFuzz(
            epsilon=0.1,
            policy=ExecutionPolicy(
                backend=backend, num_workers=workers, batch_size=16
            ),
        )
        legacy = legacy_attack.run(trained_cluster_model, x, y, rng=4)
        modern = policy_attack.run(trained_cluster_model, x, y, rng=4)
        np.testing.assert_array_equal(legacy.adversarial_x, modern.adversarial_x)
        np.testing.assert_array_equal(legacy.success, modern.success)
        np.testing.assert_array_equal(legacy.queries_per_seed, modern.queries_per_seed)
        assert legacy.queries == modern.queries

    @pytest.mark.parametrize("backend,workers", [("batched", 1), ("sharded", 2)])
    def test_assessor_equivalence(
        self,
        backend,
        workers,
        trained_cluster_model,
        cluster_profile,
        clusters_dataset,
        operational_cluster_data,
    ):
        partition = build_partition_for_dataset(
            clusters_dataset.x, scheme="grid", bins_per_dim=4
        )
        legacy_assessor = _legacy(
            ReliabilityAssessor, partition, cluster_profile,
            engine=backend, num_workers=workers, batch_size=64, rng=5,
        )
        policy_assessor = ReliabilityAssessor(
            partition,
            cluster_profile,
            policy=ExecutionPolicy(backend=backend, num_workers=workers, batch_size=64),
            rng=5,
        )
        legacy = legacy_assessor.assess(
            trained_cluster_model, operational_cluster_data, rng=5
        )
        modern = policy_assessor.assess(
            trained_cluster_model, operational_cluster_data, rng=5
        )
        assert legacy.to_dict() == modern.to_dict()

    def test_workflow_equivalence(
        self,
        cluster_profile,
        clusters_split,
        cluster_naturalness,
        trained_cluster_model,
        operational_cluster_data,
    ):
        from repro.core import OperationalTestingLoop, WorkflowConfig
        from repro.reliability import StoppingRule

        def run(workflow_config):
            loop = OperationalTestingLoop(
                profile=cluster_profile,
                train_data=clusters_split[0],
                naturalness=cluster_naturalness,
                fuzzer_config=FuzzerConfig(epsilon=0.1, queries_per_seed=8),
                stopping_rule=StoppingRule(target_pmi=1e-6, max_iterations=1),
                workflow_config=workflow_config,
                rng=21,
            )
            _, report = loop.run(trained_cluster_model, operational_cluster_data)
            return report, loop.last_estimate, loop.query_stats

        legacy = run(
            _legacy(
                WorkflowConfig,
                test_budget_per_iteration=80,
                seeds_per_iteration=5,
                engine="sharded",
                num_workers=2,
            )
        )
        modern = run(
            WorkflowConfig(
                test_budget_per_iteration=80,
                seeds_per_iteration=5,
                policy=ExecutionPolicy(
                    backend="sharded", num_workers=2, cache=True
                ),
            )
        )
        legacy_report, legacy_estimate, legacy_stats = legacy
        modern_report, modern_estimate, modern_stats = modern
        assert [it.__dict__ for it in legacy_report.iterations] == [
            it.__dict__ for it in modern_report.iterations
        ]
        assert legacy_estimate.to_dict() == modern_estimate.to_dict()
        assert legacy_stats.as_dict() == modern_stats.as_dict()


# --------------------------------------------------------------------------- #
# Scenario.query_engine: typed cache parameter + policy routing
# --------------------------------------------------------------------------- #
class TestScenarioQueryEngine:
    @pytest.fixture()
    def scenario(
        self,
        clusters_split,
        trained_cluster_model,
        cluster_profile,
        cluster_naturalness,
        operational_cluster_data,
        clusters_dataset,
    ):
        train, test = clusters_split
        return Scenario(
            name="fixture-clusters",
            train_data=train,
            test_data=test,
            operational_data=operational_cluster_data,
            model=trained_cluster_model,
            profile=cluster_profile,
            naturalness=cluster_naturalness,
            partition=build_partition_for_dataset(
                clusters_dataset.x, scheme="grid", bins_per_dim=4
            ),
            operational_priors=np.array([0.55, 0.25, 0.15, 0.05]),
        )

    def test_policy_selects_backend(self, scenario):
        engine = scenario.query_engine(policy=ExecutionPolicy(batch_size=9))
        assert isinstance(engine, SequentialBackend)
        assert engine.batch_size == 9
        assert engine.naturalness is scenario.naturalness

    def test_cache_accepts_backend_instance(self, scenario):
        cache = QueryCache(max_entries=16)
        engine = scenario.query_engine(cache=cache)
        x = scenario.operational_data.x[:4]
        engine.predict_proba(x)
        assert len(cache) == 4  # the handed-in backend is the live cache

    def test_cache_rejects_bools(self, scenario):
        with pytest.raises(ConfigurationError, match="CacheBackend"):
            scenario.query_engine(cache=True)
        with pytest.raises(ConfigurationError, match="CacheBackend"):
            scenario.query_engine(cache=False)

    def test_legacy_knobs_warn_and_route(self, scenario):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            engine = scenario.query_engine(engine="batched", batch_size=5)
        assert engine.batch_size == 5


# --------------------------------------------------------------------------- #
# CampaignSpec: round-trips and validation
# --------------------------------------------------------------------------- #
class TestCampaignSpec:
    def _spec(self, **overrides):
        payload = {
            "name": "unit-spec",
            "seed": 7,
            "scenario": {"name": "two-moons", "samples": 200, "epochs": 3},
            "fuzzer": {"queries_per_seed": 5},
            "workflow": {"test_budget_per_iteration": 40, "seeds_per_iteration": 3},
            "stopping": {"target_pmi": 0.05, "max_iterations": 1},
            "policy": ExecutionPolicy(cache=True, checkpoint_every=1).to_dict(),
        }
        payload.update(overrides)
        return payload

    def test_dict_roundtrip_is_exact(self):
        spec = CampaignSpec.from_dict(self._spec())
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict() == self._spec()

    def test_file_roundtrip(self, tmp_path):
        spec = CampaignSpec.from_dict(self._spec())
        path = tmp_path / "campaign.json"
        spec.to_file(path)
        assert CampaignSpec.from_file(path) == spec

    def test_toml_spec_loads(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            '\n'.join(
                (
                    'seed = 3',
                    '[scenario]',
                    'name = "two-moons"',
                    '[policy]',
                    'backend = "batched"',
                    'cache = true',
                )
            )
        )
        spec = CampaignSpec.from_file(path)
        assert spec.seed == 3
        assert spec.policy.cache is True

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown campaign-spec keys"):
            CampaignSpec.from_dict(self._spec(extra_section={}))

    def test_unknown_section_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            CampaignSpec.from_dict(self._spec(fuzzer={"queries_per_sseed": 5}))
        with pytest.raises(ConfigurationError, match="unknown key"):
            CampaignSpec.from_dict(self._spec(workflow={"budget": 40}))

    def test_legacy_knobs_in_sections_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            CampaignSpec.from_dict(self._spec(fuzzer={"num_workers": 2}))
        with pytest.raises(ConfigurationError, match="policy"):
            CampaignSpec.from_dict(self._spec(workflow={"cache_dir": "/tmp/x"}))
        # the deprecated execution alias is rejected too; the non-deprecated
        # control-flow values stay allowed
        with pytest.raises(ConfigurationError, match="backend='sharded'"):
            CampaignSpec.from_dict(self._spec(fuzzer={"execution": "sharded"}))
        spec = CampaignSpec.from_dict(self._spec(fuzzer={"execution": "sequential"}))
        assert spec.fuzzer["execution"] == "sequential"

    def test_seed_must_be_an_integer(self):
        with pytest.raises(ConfigurationError, match="seed"):
            CampaignSpec.from_dict(self._spec(seed=None))
        with pytest.raises(ConfigurationError, match="seed"):
            CampaignSpec.from_dict(self._spec(seed="2021"))

    def test_bad_backend_name_rejected(self):
        payload = self._spec()
        payload["policy"]["backend"] = "quantum"
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            CampaignSpec.from_dict(payload)

    def test_scenario_section_requires_name(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            CampaignSpec.from_dict(self._spec(scenario={"samples": 10}))
        with pytest.raises(ConfigurationError, match="scenario"):
            CampaignSpec.from_dict({"seed": 1})

    def test_campaign_name_defaults_to_scenario(self):
        spec = CampaignSpec.from_dict(self._spec(name=None))
        assert spec.campaign_name == "two-moons"


# --------------------------------------------------------------------------- #
# CLI: --spec records verbatim, show renders, --from-run re-launches
# --------------------------------------------------------------------------- #
class TestSpecCli:
    SPEC = {
        "name": "cli-spec",
        "seed": 2021,
        "scenario": {"name": "gaussian-clusters", "samples": 250, "epochs": 4},
        "fuzzer": {"queries_per_seed": 6},
        "workflow": {"test_budget_per_iteration": 60, "seeds_per_iteration": 4},
        "stopping": {"target_pmi": 0.02, "max_iterations": 1},
        "policy": {"backend": "batched", "cache": True, "checkpoint_every": 1},
    }

    def test_spec_run_records_verbatim_and_relaunches(self, tmp_path, capsys):
        from repro.store import RunRegistry
        from repro.store.cli import main as cli_main

        runs_dir = str(tmp_path / "runs")
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(json.dumps(self.SPEC))
        base = ["--runs-dir", runs_dir]

        assert cli_main(base + ["run", "--spec", str(spec_path)]) == 0
        registry = RunRegistry(runs_dir)
        first = registry.get("run-0001")
        assert first.status == "completed"
        # the registry records the on-disk document verbatim, not a
        # normalised re-serialisation
        assert first.config["spec"] == json.loads(spec_path.read_text())

        capsys.readouterr()
        assert cli_main(base + ["show", "run-0001"]) == 0
        shown = capsys.readouterr().out
        assert "campaign spec:" in shown
        assert '"gaussian-clusters"' in shown

        # --from-run re-launches a new campaign from the stored spec and
        # reproduces it exactly (same seed, same spec => same artifacts)
        assert cli_main(base + ["run", "--from-run", "run-0001"]) == 0
        second = registry.get("run-0002")
        assert second.config["spec"] == first.config["spec"]
        assert (
            second.load_estimates()["final"].to_dict()
            == first.load_estimates()["final"].to_dict()
        )
        assert [ae.perturbed.tobytes() for ae in second.load_detections()] == [
            ae.perturbed.tobytes() for ae in first.load_detections()
        ]

    def test_malformed_spec_never_creates_a_run(self, tmp_path, capsys):
        from repro.store import RunRegistry
        from repro.store.cli import main as cli_main

        runs_dir = str(tmp_path / "runs")
        bad = dict(self.SPEC, fuzzer={"num_workers": 2})
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps(bad))
        assert cli_main(["--runs-dir", runs_dir, "run", "--spec", str(spec_path)]) == 1
        assert "policy" in capsys.readouterr().err
        assert RunRegistry(runs_dir).runs() == []

    def test_from_run_requires_stored_spec(self, tmp_path, capsys):
        from repro.store import RunRegistry
        from repro.store.cli import main as cli_main

        runs_dir = str(tmp_path / "runs")
        RunRegistry(runs_dir).create("old-format", {"scenario": "two-moons"})
        assert cli_main(["--runs-dir", runs_dir, "run", "--from-run", "run-0001"]) == 1
        assert "spec" in capsys.readouterr().err
