"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.losses import (
    MeanSquaredError,
    NegativeLogLikelihood,
    SoftmaxCrossEntropy,
    loss_from_name,
)


class TestSoftmaxCrossEntropy:
    def test_matches_manual_computation(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[2.0, 0.0, -1.0], [0.5, 0.5, 0.5]])
        targets = np.array([0, 2])
        value = loss.forward(logits, targets)
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(2), targets]))
        assert value == pytest.approx(expected)

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[20.0, 0.0], [0.0, 20.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        loss.forward(logits, targets)
        analytic = loss.backward()
        eps = 1e-6
        numerical = np.zeros_like(logits)
        for index in np.ndindex(*logits.shape):
            plus, minus = logits.copy(), logits.copy()
            plus[index] += eps
            minus[index] -= eps
            numerical[index] = (
                loss.forward(plus, targets) - loss.forward(minus, targets)
            ) / (2 * eps)
        loss.forward(logits, targets)  # restore state
        np.testing.assert_allclose(analytic, numerical, atol=1e-6)

    def test_sample_weight_zero_removes_contribution(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[3.0, 0.0], [0.0, 3.0]])
        targets = np.array([1, 1])  # first is wrong, second is right
        weighted = loss.forward(logits, targets, sample_weight=np.array([0.0, 1.0]))
        only_correct = loss.forward(logits[1:], targets[1:])
        assert weighted == pytest.approx(only_correct, abs=1e-9)

    def test_sample_weight_shape_error(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((3, 2)), np.zeros(3, dtype=int), sample_weight=np.ones(2))

    def test_negative_sample_weight_rejected(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((2, 2)), np.zeros(2, dtype=int), sample_weight=np.array([-1.0, 1.0]))

    def test_label_out_of_range(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((2, 2)), np.array([0, 5]))

    def test_backward_before_forward(self):
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().backward()

    def test_rejects_1d_logits(self):
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().forward(np.zeros(3), np.array([0]))


class TestMeanSquaredError:
    def test_zero_for_identical(self):
        loss = MeanSquaredError()
        x = np.random.default_rng(0).random((4, 3))
        assert loss.forward(x, x) == pytest.approx(0.0)

    def test_matches_manual(self):
        loss = MeanSquaredError()
        predictions = np.array([[1.0, 2.0]])
        targets = np.array([[0.0, 0.0]])
        assert loss.forward(predictions, targets) == pytest.approx(2.5)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        loss = MeanSquaredError()
        predictions = rng.random((3, 4))
        targets = rng.random((3, 4))
        loss.forward(predictions, targets)
        analytic = loss.backward()
        eps = 1e-6
        numerical = np.zeros_like(predictions)
        for index in np.ndindex(*predictions.shape):
            plus, minus = predictions.copy(), predictions.copy()
            plus[index] += eps
            minus[index] -= eps
            numerical[index] = (
                loss.forward(plus, targets) - loss.forward(minus, targets)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numerical, atol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().forward(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_sample_weights_scale(self):
        loss = MeanSquaredError()
        predictions = np.array([[1.0], [0.0]])
        targets = np.array([[0.0], [0.0]])
        # weighting the erroneous sample twice as much increases the loss
        balanced = loss.forward(predictions, targets)
        skewed = loss.forward(predictions, targets, sample_weight=np.array([2.0, 0.0]))
        assert skewed > balanced


class TestNegativeLogLikelihood:
    def test_matches_manual(self):
        loss = NegativeLogLikelihood()
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        targets = np.array([0, 1])
        expected = -np.mean(np.log([0.9, 0.8]))
        assert loss.forward(probs, targets) == pytest.approx(expected)

    def test_gradient_sign(self):
        loss = NegativeLogLikelihood()
        probs = np.array([[0.5, 0.5]])
        loss.forward(probs, np.array([0]))
        grad = loss.backward()
        assert grad[0, 0] < 0  # increasing the true-class probability lowers loss
        assert grad[0, 1] == 0.0

    def test_backward_before_forward(self):
        with pytest.raises(ShapeError):
            NegativeLogLikelihood().backward()

    def test_target_shape_error(self):
        with pytest.raises(ShapeError):
            NegativeLogLikelihood().forward(np.full((3, 2), 0.5), np.array([0, 1]))


class TestLossRegistry:
    def test_known_names(self):
        assert isinstance(loss_from_name("cross_entropy"), SoftmaxCrossEntropy)
        assert isinstance(loss_from_name("mse"), MeanSquaredError)
        assert isinstance(loss_from_name("nll"), NegativeLogLikelihood)

    def test_unknown_name(self):
        with pytest.raises(ShapeError):
            loss_from_name("hinge")
