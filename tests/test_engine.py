"""Tests for the batched query engine and lock-step population fuzzing."""

import numpy as np
import pytest

from repro.engine import (
    BatchedQueryEngine,
    QueryCache,
    as_query_engine,
)
from repro.exceptions import ConfigurationError, FuzzingError
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.runtime import ExecutionPolicy


@pytest.fixture()
def engine_inputs(operational_cluster_data):
    data = operational_cluster_data
    return data.x[:32], data.y[:32]


class TestBatchedQueryEngine:
    def test_chunked_predict_proba_matches_direct(self, trained_cluster_model, engine_inputs):
        x, _ = engine_inputs
        direct = trained_cluster_model.predict_proba(x)
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=5)
        chunked = engine.predict_proba(x)
        np.testing.assert_allclose(chunked, direct, rtol=1e-12)
        assert engine.stats.rows_queried == len(x)
        assert engine.stats.model_calls == int(np.ceil(len(x) / 5))

    def test_predict_matches_model(self, trained_cluster_model, engine_inputs):
        x, _ = engine_inputs
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=7)
        np.testing.assert_array_equal(engine.predict(x), trained_cluster_model.predict(x))

    def test_chunked_gradient_sign_matches_direct(self, trained_cluster_model, engine_inputs):
        x, y = engine_inputs
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=4)
        chunked = engine.loss_input_gradient(x, y)
        # chunking changes the batch-mean scaling, never the direction
        per_row = np.stack(
            [
                trained_cluster_model.loss_input_gradient(x[i][None, :], [y[i]])[0]
                for i in range(len(x))
            ]
        )
        np.testing.assert_array_equal(np.sign(chunked), np.sign(per_row))
        assert engine.stats.gradient_rows == len(x)
        assert engine.stats.gradient_calls == int(np.ceil(len(x) / 4))

    def test_cache_answers_repeat_rows(self, trained_cluster_model, engine_inputs):
        x, _ = engine_inputs
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=64, cache=True)
        first = engine.predict_proba(x)
        calls_after_first = engine.stats.model_calls
        second = engine.predict_proba(x)
        np.testing.assert_array_equal(first, second)
        assert engine.stats.model_calls == calls_after_first  # no new physical calls
        assert engine.stats.cache_hits == len(x)

    def test_cache_eviction_is_bounded(self):
        cache = QueryCache(max_entries=3)
        rows = np.eye(4)
        for row in rows:
            cache.put(row, row)
        assert len(cache) == 3
        assert cache.get(rows[0]) is None  # oldest entry evicted
        assert cache.get(rows[3]) is not None

    def test_cache_overwrite_does_not_evict(self):
        # regression: a put of an already-present key used to evict an
        # unrelated entry once the cache was full
        cache = QueryCache(max_entries=3)
        rows = np.eye(3)
        for i, row in enumerate(rows):
            cache.put(row, np.array([float(i)]))
        assert len(cache) == 3
        cache.put(rows[2], np.array([42.0]))  # overwrite at capacity
        assert len(cache) == 3
        for row in rows:  # every key survived the overwrite
            assert cache.get(row) is not None
        np.testing.assert_array_equal(cache.get(rows[2]), [42.0])

    def test_cache_keys_tag_dtype_and_shape(self):
        # regression: raw tobytes() keys collided across dtype/shape — the
        # float32 pair [1, 2] and the float64 scalar row with the same byte
        # pattern must be distinct entries, never serve each other's values
        cache = QueryCache(max_entries=16)
        row64 = np.array([1.0, 2.0])
        row32 = np.frombuffer(row64.tobytes(), dtype=np.float32)
        assert row64.tobytes() == row32.tobytes()  # the collision precondition
        cache.put(row64, np.array([0.25]))
        assert cache.get(row32) is None  # different dtype: a miss, not a hit
        cache.put(row32, np.array([0.75]))
        assert len(cache) == 2
        np.testing.assert_array_equal(cache.get(row64), [0.25])
        np.testing.assert_array_equal(cache.get(row32), [0.75])
        # same bytes, same dtype, different shape must not collide either
        flat = np.zeros(4)
        square = np.zeros((2, 2))
        cache.put(flat, np.array([1.0]))
        assert cache.get(square) is None

    def test_naturalness_scoring_chunked(self, trained_cluster_model, cluster_naturalness, engine_inputs):
        x, _ = engine_inputs
        engine = BatchedQueryEngine(
            trained_cluster_model, naturalness=cluster_naturalness, batch_size=6
        )
        scores = engine.score_naturalness(x)
        np.testing.assert_allclose(scores, cluster_naturalness.score(x), rtol=1e-12)
        assert engine.stats.naturalness_calls == int(np.ceil(len(x) / 6))

    def test_score_naturalness_requires_scorer(self, trained_cluster_model, engine_inputs):
        x, _ = engine_inputs
        engine = BatchedQueryEngine(trained_cluster_model)
        with pytest.raises(ConfigurationError):
            engine.score_naturalness(x)

    def test_as_query_engine_is_idempotent(self, trained_cluster_model):
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=11)
        assert as_query_engine(engine) is engine
        wrapped = as_query_engine(trained_cluster_model)
        assert isinstance(wrapped, BatchedQueryEngine)
        assert wrapped.model is trained_cluster_model

    def test_invalid_configuration(self, trained_cluster_model):
        with pytest.raises(ConfigurationError):
            BatchedQueryEngine(trained_cluster_model, batch_size=0)
        with pytest.raises(ConfigurationError):
            QueryCache(max_entries=0)


def _make_fuzzer(cluster_naturalness, pool, execution, **overrides):
    defaults = dict(
        epsilon=0.12,
        queries_per_seed=25,
        naturalness_threshold=0.3,
        execution=execution,
    )
    defaults.update(overrides)
    return OperationalFuzzer(
        naturalness=cluster_naturalness,
        config=FuzzerConfig(**defaults),
        natural_pool=pool,
    )


class TestPopulationSequentialEquivalence:
    """The batched population path must match the sequential reference."""

    def test_unbudgeted_campaigns_are_identical(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        seeds, labels = data.x[:16], data.y[:16]
        campaigns = {}
        for mode in ("population", "sequential"):
            fuzzer = _make_fuzzer(cluster_naturalness, data.x, mode)
            campaigns[mode] = fuzzer.fuzz(trained_cluster_model, seeds, labels, rng=0)
        population, sequential = campaigns["population"], campaigns["sequential"]
        assert len(population.per_seed) == len(sequential.per_seed)
        for p, s in zip(population.per_seed, sequential.per_seed):
            assert p.seed_index == s.seed_index
            assert p.queries == s.queries
            assert (p.adversarial_example is None) == (s.adversarial_example is None)
            if p.adversarial_example is not None:
                np.testing.assert_allclose(
                    p.adversarial_example.perturbed,
                    s.adversarial_example.perturbed,
                    rtol=1e-9,
                    atol=1e-12,
                )
        assert population.total_queries == sequential.total_queries

    def test_natural_failures_found_identically(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        predictions = trained_cluster_model.predict(data.x)
        wrong = np.flatnonzero(predictions != data.y)
        if len(wrong) == 0:
            pytest.skip("model has no natural failures on the operational data")
        seeds, labels = data.x[wrong[:4]], data.y[wrong[:4]]
        for mode in ("population", "sequential"):
            fuzzer = _make_fuzzer(cluster_naturalness, data.x, mode)
            campaign = fuzzer.fuzz(trained_cluster_model, seeds, labels, rng=3)
            assert campaign.detection_rate == 1.0
            for result in campaign.per_seed:
                assert result.queries == 1
                assert result.adversarial_example.distance == 0.0

    def test_natural_failure_waves_do_not_strand_waitlist(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        # when a whole admission wave retires as natural failures (1 query
        # each), the refunded budget must keep admitting waitlisted seeds —
        # exactly like the sequential loop does
        data = operational_cluster_data
        predictions = trained_cluster_model.predict(data.x)
        wrong = np.flatnonzero(predictions != data.y)
        if len(wrong) < 6:
            pytest.skip("not enough natural failures in the scenario")
        seeds, labels = data.x[wrong[:6]], data.y[wrong[:6]]
        counts = {}
        for mode in ("population", "sequential"):
            fuzzer = _make_fuzzer(cluster_naturalness, data.x, mode, queries_per_seed=5)
            campaign = fuzzer.fuzz(
                trained_cluster_model, seeds, labels, budget=6, rng=0
            )
            counts[mode] = (len(campaign.per_seed), campaign.total_queries)
        assert counts["population"] == counts["sequential"] == (6, 6)

    def test_detection_rate_comparable_under_budget(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        seeds, labels = data.x[:20], data.y[:20]
        rates = {}
        for mode in ("population", "sequential"):
            fuzzer = _make_fuzzer(cluster_naturalness, data.x, mode)
            campaign = fuzzer.fuzz(
                trained_cluster_model, seeds, labels, budget=300, rng=1
            )
            rates[mode] = campaign.detection_rate
        # admission order differs slightly under a shared budget, but the
        # batched path must remain a comparable detector
        assert rates["population"] >= rates["sequential"] - 0.15

    def test_population_uses_far_fewer_model_calls(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        seeds, labels = data.x[:16], data.y[:16]
        calls = {}
        for mode in ("population", "sequential"):
            fuzzer = _make_fuzzer(
                cluster_naturalness, data.x, mode, policy=ExecutionPolicy(cache=False)
            )
            fuzzer.fuzz(trained_cluster_model, seeds, labels, rng=0)
            stats = fuzzer.last_query_stats
            calls[mode] = stats.model_calls + stats.gradient_calls
        assert calls["population"] * 5 <= calls["sequential"]


class TestBudgetInvariants:
    """Campaign query accounting: never exceed the budget, always consistent."""

    @pytest.mark.parametrize("execution", ["population", "sequential"])
    @pytest.mark.parametrize("budget", [1, 37, 150, 10_000])
    def test_total_queries_never_exceed_budget(
        self,
        execution,
        budget,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
    ):
        data = operational_cluster_data
        fuzzer = _make_fuzzer(cluster_naturalness, data.x, execution)
        campaign = fuzzer.fuzz(
            trained_cluster_model, data.x[:30], data.y[:30], budget=budget, rng=5
        )
        total = campaign.total_queries
        assert total <= budget
        assert total == sum(r.queries for r in campaign.per_seed)
        campaign.validate_budget(budget)  # must not raise

    @pytest.mark.parametrize("execution", ["population", "sequential"])
    def test_per_seed_queries_respect_energy_budgets(
        self,
        execution,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
    ):
        data = operational_cluster_data
        config = FuzzerConfig(
            queries_per_seed=12, stall_limit=0, execution=execution
        )
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness, config=config, natural_pool=data.x
        )
        campaign = fuzzer.fuzz(trained_cluster_model, data.x[:10], data.y[:10], rng=2)
        for result in campaign.per_seed:
            assert result.queries <= 2 * config.queries_per_seed  # max_energy bound

    def test_validate_budget_flags_overspend(self):
        from repro.fuzzing import FuzzCampaignResult, SeedFuzzResult

        campaign = FuzzCampaignResult(
            per_seed=[SeedFuzzResult(0, None, queries=10, best_fitness=0.0,
                                     candidates_rejected_by_naturalness=0)]
        )
        with pytest.raises(FuzzingError):
            campaign.validate_budget(5)
        campaign.validate_budget(10)  # exact spend is fine
        campaign.validate_budget(None)  # unbudgeted campaigns always pass


class TestFuzzerConfigEngineKnobs:
    def test_invalid_execution_mode(self):
        with pytest.raises(FuzzingError):
            FuzzerConfig(execution="warp")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"cache_max_entries": 0},
        ],
    )
    def test_invalid_policy_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            FuzzerConfig(policy=ExecutionPolicy(**kwargs))

    def test_cache_does_not_change_results(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        campaigns = {}
        for use_cache in (True, False):
            fuzzer = _make_fuzzer(
                cluster_naturalness,
                data.x,
                "population",
                policy=ExecutionPolicy(cache=use_cache),
            )
            campaigns[use_cache] = fuzzer.fuzz(
                trained_cluster_model, data.x[:12], data.y[:12], rng=7
            )
        cached, uncached = campaigns[True], campaigns[False]
        assert cached.total_queries == uncached.total_queries
        assert len(cached.adversarial_examples) == len(uncached.adversarial_examples)
