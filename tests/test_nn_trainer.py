"""Tests for repro.nn.trainer."""

import numpy as np
import pytest

from repro.data import make_gaussian_clusters
from repro.exceptions import ConfigurationError, DataError
from repro.nn import Adam, SGD, Trainer, TrainerConfig, accuracy, build_mlp_classifier


@pytest.fixture(scope="module")
def toy_data():
    dataset = make_gaussian_clusters(400, num_classes=3, cluster_std=0.07, rng=0)
    return dataset.split(0.25, rng=1)


class TestTrainerConfig:
    def test_defaults_valid(self):
        config = TrainerConfig()
        assert config.epochs > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"early_stopping_patience": 0},
            {"min_delta": -1.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainerConfig(**kwargs)


class TestFit:
    def test_training_improves_accuracy(self, toy_data):
        train, test = toy_data
        model = build_mlp_classifier(2, 3, hidden_sizes=(16,), rng=0)
        before = accuracy(test.y, model.predict(test.x))
        trainer = Trainer(Adam(0.01), TrainerConfig(epochs=20, batch_size=32), rng=0)
        history = trainer.fit(model, train.x, train.y)
        after = accuracy(test.y, model.predict(test.x))
        assert after > before
        assert after > 0.85
        assert history.num_epochs == 20
        assert history.train_loss[-1] < history.train_loss[0]
        assert model.is_trained

    def test_history_tracks_validation(self, toy_data):
        train, test = toy_data
        model = build_mlp_classifier(2, 3, hidden_sizes=(8,), rng=1)
        trainer = Trainer(SGD(0.1), TrainerConfig(epochs=5), rng=0)
        history = trainer.fit(model, train.x, train.y, x_val=test.x, y_val=test.y)
        assert len(history.val_loss) == 5
        assert len(history.val_accuracy) == 5
        assert history.best_val_accuracy() > 0

    def test_best_val_accuracy_without_validation(self, toy_data):
        train, _ = toy_data
        model = build_mlp_classifier(2, 3, hidden_sizes=(8,), rng=1)
        history = Trainer(config=TrainerConfig(epochs=2), rng=0).fit(model, train.x, train.y)
        assert history.best_val_accuracy() == 0.0

    def test_early_stopping_halts_before_max_epochs(self, toy_data):
        train, test = toy_data
        model = build_mlp_classifier(2, 3, hidden_sizes=(16,), rng=2)
        config = TrainerConfig(epochs=100, early_stopping_patience=2, min_delta=1e-3)
        trainer = Trainer(Adam(0.02), config, rng=0)
        history = trainer.fit(model, train.x, train.y, x_val=test.x, y_val=test.y)
        assert history.num_epochs < 100

    def test_sample_weights_shift_decision(self):
        # two overlapping classes: weighting class 1 heavily should raise its recall
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(0.4, 0.1, (200, 2)), rng.normal(0.6, 0.1, (200, 2))])
        y = np.array([0] * 200 + [1] * 200)
        weights = np.where(y == 1, 10.0, 1.0)
        model_plain = build_mlp_classifier(2, 2, hidden_sizes=(8,), rng=3)
        model_weighted = build_mlp_classifier(2, 2, hidden_sizes=(8,), rng=3)
        Trainer(Adam(0.01), TrainerConfig(epochs=15), rng=0).fit(model_plain, x, y)
        Trainer(Adam(0.01), TrainerConfig(epochs=15), rng=0).fit(
            model_weighted, x, y, sample_weight=weights
        )
        recall_plain = np.mean(model_plain.predict(x[y == 1]) == 1)
        recall_weighted = np.mean(model_weighted.predict(x[y == 1]) == 1)
        assert recall_weighted >= recall_plain

    def test_epoch_callback_invoked(self, toy_data):
        train, _ = toy_data
        model = build_mlp_classifier(2, 3, hidden_sizes=(8,), rng=4)
        calls = []
        Trainer(config=TrainerConfig(epochs=3), rng=0).fit(
            model, train.x, train.y, epoch_callback=lambda e, h: calls.append(e)
        )
        assert calls == [0, 1, 2]

    def test_shuffle_off_is_deterministic(self, toy_data):
        train, _ = toy_data
        results = []
        for _ in range(2):
            model = build_mlp_classifier(2, 3, hidden_sizes=(8,), rng=5)
            Trainer(Adam(0.01), TrainerConfig(epochs=3, shuffle=False), rng=0).fit(
                model, train.x, train.y
            )
            results.append(model.predict_logits(train.x[:5]))
        np.testing.assert_allclose(results[0], results[1])


class TestFitValidation:
    def test_rejects_empty_dataset(self):
        model = build_mlp_classifier(2, 2, rng=0)
        with pytest.raises(DataError):
            Trainer(rng=0).fit(model, np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_rejects_mismatched_lengths(self):
        model = build_mlp_classifier(2, 2, rng=0)
        with pytest.raises(DataError):
            Trainer(rng=0).fit(model, np.zeros((4, 2)), np.zeros(3, dtype=int))

    def test_rejects_3d_inputs(self):
        model = build_mlp_classifier(2, 2, rng=0)
        with pytest.raises(DataError):
            Trainer(rng=0).fit(model, np.zeros((4, 2, 1)), np.zeros(4, dtype=int))

    def test_rejects_bad_sample_weight_shape(self):
        model = build_mlp_classifier(2, 2, rng=0)
        with pytest.raises(DataError):
            Trainer(rng=0).fit(
                model, np.zeros((4, 2)), np.zeros(4, dtype=int), sample_weight=np.ones(3)
            )


class TestEvaluate:
    def test_returns_loss_and_accuracy(self, toy_data):
        train, test = toy_data
        model = build_mlp_classifier(2, 3, hidden_sizes=(8,), rng=6)
        trainer = Trainer(Adam(0.01), TrainerConfig(epochs=10), rng=0)
        trainer.fit(model, train.x, train.y)
        metrics = trainer.evaluate(model, test.x, test.y)
        assert set(metrics) == {"loss", "accuracy"}
        assert 0.0 <= metrics["accuracy"] <= 1.0
        assert metrics["loss"] >= 0.0
