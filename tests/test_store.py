"""Tests for repro.store: durable cache, checkpoint/resume, registry + CLI."""

import json
import pickle

import numpy as np
import pytest

from repro.core import OperationalTestingLoop, WorkflowConfig
from repro.engine import BatchedQueryEngine, CacheBackend, QueryCache, QueryStats
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    FuzzingError,
    ReliabilityError,
    StoreError,
)
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.reliability import ReliabilityEstimate, StoppingRule
from repro.retraining import RetrainingConfig
from repro.runtime import ExecutionPolicy
from repro.store import (
    Checkpointer,
    PersistentQueryCache,
    RunRegistry,
    campaign_fingerprint,
    read_checkpoint,
    write_checkpoint,
)
from repro.store.cli import main as cli_main
from repro.types import AdversarialExample, CampaignReport, IterationReport


class _ExplodingModel:
    """Wrapper that dies after a fixed number of physical predict calls.

    Picklable (module level) so it can be shipped to sharded workers; each
    replica then carries its own countdown, which is fine — the tests only
    need *some* mid-campaign crash, not a deterministic one.
    """

    def __init__(self, inner, fail_after: int) -> None:
        self.inner = inner
        self.fail_after = fail_after

    def predict_proba(self, x):
        self.fail_after -= 1
        if self.fail_after < 0:
            raise RuntimeError("killed mid-campaign")
        return self.inner.predict_proba(x)

    def predict(self, x):
        return self.predict_proba(x).argmax(axis=1)

    def loss_input_gradient(self, x, y):
        return self.inner.loss_input_gradient(x, y)


class _KillingRule(StoppingRule):
    """Stopping rule that crashes the loop after ``kill_after`` iterations.

    Carries no extra dataclass fields, so its configuration values — and
    therefore the campaign fingerprint — match a plain StoppingRule.
    """

    kill_after = 1

    def should_stop(self, estimate, iteration, test_cases_used):
        if iteration >= self.kill_after:
            raise RuntimeError("killed mid-campaign")
        return super().should_stop(estimate, iteration, test_cases_used)


def _campaign_summary(campaign):
    """Bit-comparable digest of a fuzzing campaign's logical outcome."""
    return [
        (
            r.seed_index,
            r.queries,
            r.best_fitness,
            r.candidates_rejected_by_naturalness,
            None
            if r.adversarial_example is None
            else r.adversarial_example.perturbed.tobytes(),
        )
        for r in campaign.per_seed
    ]


# --------------------------------------------------------------------------- #
# persistent query cache
# --------------------------------------------------------------------------- #
class TestPersistentQueryCache:
    def test_satisfies_cache_backend_protocol(self, tmp_path):
        assert isinstance(PersistentQueryCache(tmp_path), CacheBackend)
        assert isinstance(QueryCache(), CacheBackend)

    def test_put_get_roundtrip_is_exact(self, tmp_path):
        cache = PersistentQueryCache(tmp_path)
        row = np.random.default_rng(0).random(7)
        value = np.random.default_rng(1).random(4)
        assert cache.get(row) is None
        cache.put(row, value)
        np.testing.assert_array_equal(cache.get(row), value)
        assert len(cache) == 1

    def test_content_addressing_dedupes_identical_rows(self, tmp_path):
        cache = PersistentQueryCache(tmp_path)
        row = np.ones(3)
        cache.put(row, np.zeros(2))
        cache.put(row.copy(), np.zeros(2))
        assert len(cache) == 1

    def test_keys_tag_dtype_and_shape(self, tmp_path):
        # regression: rows with identical bytes but different dtype/shape
        # must be distinct entries — and the durable cache must agree with
        # the in-memory QueryCache on row identity (shared row_cache_key)
        cache = PersistentQueryCache(tmp_path)
        row64 = np.array([1.0, 2.0])
        row32 = np.frombuffer(row64.tobytes(), dtype=np.float32)
        assert row64.tobytes() == row32.tobytes()  # the collision precondition
        cache.put(row64, np.array([0.25]))
        assert cache.get(row32) is None  # different dtype: a miss, not a hit
        cache.put(row32, np.array([0.75]))
        assert len(cache) == 2
        np.testing.assert_array_equal(cache.get(row64), [0.25])
        np.testing.assert_array_equal(cache.get(row32), [0.75])
        cache.put(np.zeros(4), np.array([1.0]))
        assert cache.get(np.zeros((2, 2))) is None  # shape is part of the key

    def test_entries_survive_reopen(self, tmp_path):
        rng = np.random.default_rng(2)
        rows = rng.random((5, 3))
        with PersistentQueryCache(tmp_path) as cache:
            for i, row in enumerate(rows):
                cache.put(row, np.full(2, float(i)))
        reopened = PersistentQueryCache(tmp_path)
        assert len(reopened) == 5
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(reopened.get(row), np.full(2, float(i)))

    def test_segment_rotation_keeps_entries_readable(self, tmp_path):
        cache = PersistentQueryCache(tmp_path, max_segment_bytes=128)
        rows = np.random.default_rng(3).random((10, 4))
        for i, row in enumerate(rows):
            cache.put(row, np.full(3, float(i)))
        cache.close()
        segments = list((tmp_path / "segments").glob("seg-*.bin"))
        assert len(segments) > 1  # tiny threshold must have rotated
        reopened = PersistentQueryCache(tmp_path)
        assert len(reopened) == 10
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(reopened.get(row), np.full(3, float(i)))

    def test_torn_tail_record_is_ignored(self, tmp_path):
        with PersistentQueryCache(tmp_path) as cache:
            cache.put(np.arange(3.0), np.arange(2.0))
            segment = cache._own_segment
        # simulate a writer killed mid-append: a partial record at the tail
        with open(segment, "ab") as handle:
            handle.write(b"RPC1\x10\x00\x00\x00\x10\x00\x00\x00partial")
        reopened = PersistentQueryCache(tmp_path)
        assert len(reopened) == 1
        np.testing.assert_array_equal(reopened.get(np.arange(3.0)), np.arange(2.0))

    def test_refresh_picks_up_other_writers(self, tmp_path):
        reader = PersistentQueryCache(tmp_path)
        writer = PersistentQueryCache(tmp_path)  # simulates another process
        writer.put(np.arange(4.0), np.arange(2.0))
        assert reader.get(np.arange(4.0)) is None  # not seen yet
        assert reader.refresh() == 1
        np.testing.assert_array_equal(reader.get(np.arange(4.0)), np.arange(2.0))

    def test_clear_removes_durable_entries(self, tmp_path):
        cache = PersistentQueryCache(tmp_path)
        cache.put(np.arange(3.0), np.arange(2.0))
        cache.clear()
        assert len(cache) == 0
        assert len(PersistentQueryCache(tmp_path)) == 0

    def test_rejects_bad_segment_size(self, tmp_path):
        with pytest.raises(StoreError):
            PersistentQueryCache(tmp_path, max_segment_bytes=0)

    def test_engine_rejects_non_backend_cache(self, trained_cluster_model):
        with pytest.raises(ConfigurationError):
            BatchedQueryEngine(trained_cluster_model, cache=object())


class TestDiskBackedEngineEquivalence:
    def test_disk_cache_bit_identical_and_fewer_calls(
        self, tmp_path, trained_cluster_model, operational_cluster_data
    ):
        x = operational_cluster_data.x[:64]
        plain = BatchedQueryEngine(trained_cluster_model, batch_size=16)
        cold = BatchedQueryEngine(
            trained_cluster_model,
            batch_size=16,
            cache=PersistentQueryCache(tmp_path),
        )
        np.testing.assert_array_equal(cold.predict_proba(x), plain.predict_proba(x))
        assert cold.stats.model_calls == plain.stats.model_calls
        # a second engine over the same directory simulates a second process
        # reusing the persistent cache: strictly fewer physical calls,
        # bit-identical logical results
        warm = BatchedQueryEngine(
            trained_cluster_model,
            batch_size=16,
            cache=PersistentQueryCache(tmp_path),
        )
        np.testing.assert_array_equal(warm.predict_proba(x), plain.predict_proba(x))
        assert warm.stats.model_calls < cold.stats.model_calls
        assert warm.stats.model_calls == 0
        assert warm.stats.cache_hits == len(x)

    def test_warm_campaign_identical_with_fewer_physical_calls(
        self, tmp_path, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        cfg = FuzzerConfig(
            epsilon=0.12,
            queries_per_seed=8,
            naturalness_threshold=0.3,
            policy=ExecutionPolicy(cache=True, cache_dir=str(tmp_path / "cache")),
        )
        first_fuzzer = OperationalFuzzer(cluster_naturalness, config=cfg, natural_pool=data.x)
        first = first_fuzzer.fuzz(trained_cluster_model, data.x[:6], data.y[:6], rng=3)
        second_fuzzer = OperationalFuzzer(cluster_naturalness, config=cfg, natural_pool=data.x)
        second = second_fuzzer.fuzz(trained_cluster_model, data.x[:6], data.y[:6], rng=3)
        assert _campaign_summary(first) == _campaign_summary(second)
        assert (
            second_fuzzer.last_query_stats.model_calls
            < first_fuzzer.last_query_stats.model_calls
        )


# --------------------------------------------------------------------------- #
# serialization round-trips used by the registry
# --------------------------------------------------------------------------- #
class TestQueryStatsRoundTrip:
    def test_to_from_dict_roundtrip(self):
        stats = QueryStats(
            rows_queried=10,
            model_calls=3,
            cache_hits=4,
            gradient_rows=5,
            gradient_calls=2,
            naturalness_rows=7,
            naturalness_calls=1,
        )
        assert QueryStats.from_dict(stats.to_dict()) == stats

    def test_to_dict_is_json_safe(self):
        assert json.loads(json.dumps(QueryStats().to_dict())) == QueryStats().to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            QueryStats.from_dict({"rows_queried": 1, "bogus": 2})

    def test_from_dict_accepts_partial(self):
        stats = QueryStats.from_dict({"model_calls": 9})
        assert stats.model_calls == 9
        assert stats.rows_queried == 0


class TestReliabilityEstimateRoundTrip:
    def test_roundtrip(self):
        estimate = ReliabilityEstimate(
            pmi=0.05,
            pmi_upper=0.09,
            pmi_lower=0.02,
            operational_accuracy=0.95,
            confidence=0.9,
            cells_evaluated=12,
            total_op_mass_evaluated=0.8,
            queries=345,
        )
        assert ReliabilityEstimate.from_dict(estimate.to_dict()) == estimate

    def test_rejects_unknown_fields(self):
        with pytest.raises(ReliabilityError):
            ReliabilityEstimate.from_dict({"pmi": 0.1, "bogus": 1})


# --------------------------------------------------------------------------- #
# checkpoint primitives
# --------------------------------------------------------------------------- #
class TestCheckpointPrimitives:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "state.pkl"
        payload = {"rng": np.random.default_rng(5), "values": np.arange(4.0)}
        write_checkpoint(path, payload)
        loaded = read_checkpoint(path)
        np.testing.assert_array_equal(loaded["values"], np.arange(4.0))
        # generators round-trip their exact stream
        assert loaded["rng"].random() == np.random.default_rng(5).random()

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "absent.pkl")

    def test_corrupt_checkpoint_raises(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_foreign_pickle_raises(self, tmp_path):
        path = tmp_path / "foreign.pkl"
        path.write_bytes(pickle.dumps({"unrelated": True}))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_checkpointer_cadence(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "c.pkl", every=3)
        assert [s for s in range(10) if checkpointer.due(s)] == [3, 6, 9]
        with pytest.raises(CheckpointError):
            Checkpointer(tmp_path / "c.pkl", every=0)

    def test_keep_history_writes_numbered_snapshots(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "c.pkl", every=1, keep_history=True)
        checkpointer.save(1, {"value": 1})
        checkpointer.save(2, {"value": 2})
        assert read_checkpoint(tmp_path / "c.pkl")["value"] == 2
        assert read_checkpoint(tmp_path / "c.pkl.000001")["value"] == 1

    def test_fingerprint_sensitive_to_inputs(self):
        a = campaign_fingerprint(np.arange(4.0), extra="x")
        assert a == campaign_fingerprint(np.arange(4.0), extra="x")
        assert a != campaign_fingerprint(np.arange(5.0), extra="x")
        assert a != campaign_fingerprint(np.arange(4.0), extra="y")


# --------------------------------------------------------------------------- #
# fuzzer checkpoint/resume (acceptance: bit-identical to uninterrupted)
# --------------------------------------------------------------------------- #
class TestFuzzerCheckpointResume:
    @pytest.fixture()
    def campaign_inputs(self, operational_cluster_data):
        data = operational_cluster_data
        return data.x[:8], data.y[:8]

    def _config(self, policy=None, **overrides):
        base = dict(
            epsilon=0.12,
            queries_per_seed=12,
            naturalness_threshold=0.3,
            policy=policy
            if policy is not None
            else ExecutionPolicy(cache=True, checkpoint_every=1),
        )
        base.update(overrides)
        return FuzzerConfig(**base)

    def _run_interrupted_then_resume(
        self,
        tmp_path,
        model,
        naturalness,
        pool,
        seeds,
        labels,
        interrupted_config,
        resume_config,
        budget=80,
    ):
        baseline_fuzzer = OperationalFuzzer(
            naturalness, config=resume_config, natural_pool=pool
        )
        baseline = baseline_fuzzer.fuzz(model, seeds, labels, budget=budget, rng=3)
        physical = baseline_fuzzer.last_query_stats.model_calls

        checkpoint = tmp_path / "fuzz.ckpt"
        dying = OperationalFuzzer(
            naturalness, config=interrupted_config, natural_pool=pool
        )
        with pytest.raises(RuntimeError, match="killed"):
            dying.fuzz(
                _ExplodingModel(model, fail_after=max(2, physical // 2)),
                seeds,
                labels,
                budget=budget,
                rng=3,
                checkpoint_path=str(checkpoint),
            )
        assert checkpoint.exists(), "campaign died before its first checkpoint"

        resumed_fuzzer = OperationalFuzzer(
            naturalness, config=resume_config, natural_pool=pool
        )
        resumed = resumed_fuzzer.fuzz(
            model, seeds, labels, budget=budget, rng=3, resume_from=str(checkpoint)
        )
        return baseline, resumed, baseline_fuzzer, resumed_fuzzer

    def test_population_resume_bit_identical(
        self,
        tmp_path,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
        campaign_inputs,
    ):
        seeds, labels = campaign_inputs
        cfg = self._config()
        baseline, resumed, base_fz, res_fz = self._run_interrupted_then_resume(
            tmp_path,
            trained_cluster_model,
            cluster_naturalness,
            operational_cluster_data.x,
            seeds,
            labels,
            cfg,
            cfg,
        )
        assert _campaign_summary(baseline) == _campaign_summary(resumed)
        assert baseline.total_queries == resumed.total_queries
        # restored counters continue the interrupted campaign's accounting:
        # logical rows agree exactly with the uninterrupted campaign
        assert (
            res_fz.last_query_stats.rows_queried
            == base_fz.last_query_stats.rows_queried
        )

    def test_population_checkpoint_resumes_under_sharded(
        self,
        tmp_path,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
        campaign_inputs,
    ):
        seeds, labels = campaign_inputs
        baseline, resumed, _, _ = self._run_interrupted_then_resume(
            tmp_path,
            trained_cluster_model,
            cluster_naturalness,
            operational_cluster_data.x,
            seeds,
            labels,
            self._config(),
            self._config(
                policy=ExecutionPolicy(
                    backend="sharded", num_workers=2, cache=True, checkpoint_every=1
                )
            ),
        )
        assert _campaign_summary(baseline) == _campaign_summary(resumed)

    def test_sequential_resume_bit_identical(
        self,
        tmp_path,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
        campaign_inputs,
    ):
        seeds, labels = campaign_inputs
        cfg = self._config(
            execution="sequential",
            policy=ExecutionPolicy(cache=True, checkpoint_every=2),
        )
        baseline, resumed, _, _ = self._run_interrupted_then_resume(
            tmp_path,
            trained_cluster_model,
            cluster_naturalness,
            operational_cluster_data.x,
            seeds,
            labels,
            cfg,
            cfg,
        )
        assert _campaign_summary(baseline) == _campaign_summary(resumed)

    def test_resume_rejects_foreign_campaign(
        self,
        tmp_path,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
        campaign_inputs,
    ):
        seeds, labels = campaign_inputs
        cfg = self._config()
        checkpoint = tmp_path / "fuzz.ckpt"
        fuzzer = OperationalFuzzer(
            cluster_naturalness, config=cfg, natural_pool=operational_cluster_data.x
        )
        fuzzer.fuzz(
            trained_cluster_model,
            seeds,
            labels,
            budget=80,
            rng=3,
            checkpoint_path=str(checkpoint),
        )
        assert checkpoint.exists()
        other = OperationalFuzzer(
            cluster_naturalness, config=cfg, natural_pool=operational_cluster_data.x
        )
        with pytest.raises(FuzzingError, match="different campaign"):
            other.fuzz(
                trained_cluster_model,
                seeds + 0.5,  # different seed matrix => different fingerprint
                labels,
                budget=80,
                rng=3,
                resume_from=str(checkpoint),
            )
        # per-seed densities shape the energy allocation, so they are part
        # of the campaign identity too
        with pytest.raises(FuzzingError, match="different campaign"):
            other.fuzz(
                trained_cluster_model,
                seeds,
                labels,
                op_densities=np.linspace(0.5, 2.0, len(seeds)),
                budget=80,
                rng=3,
                resume_from=str(checkpoint),
            )


# --------------------------------------------------------------------------- #
# workflow checkpoint/resume (acceptance: identical reliability estimates)
# --------------------------------------------------------------------------- #
class TestWorkflowCheckpointResume:
    def _build_loop(self, profile, train, naturalness, stopping_rule, **workflow_kwargs):
        return OperationalTestingLoop(
            profile=profile,
            train_data=train,
            naturalness=naturalness,
            fuzzer_config=FuzzerConfig(epsilon=0.1, queries_per_seed=8),
            retraining_config=RetrainingConfig(epochs=2),
            stopping_rule=stopping_rule,
            workflow_config=WorkflowConfig(
                test_budget_per_iteration=100,
                seeds_per_iteration=6,
                policy=ExecutionPolicy(cache=True, checkpoint_every=1),
                **workflow_kwargs,
            ),
            rng=21,
        )

    def test_killed_loop_resumes_bit_identical(
        self,
        tmp_path,
        cluster_profile,
        clusters_split,
        cluster_naturalness,
        trained_cluster_model,
        operational_cluster_data,
    ):
        train, _ = clusters_split
        rule = StoppingRule(target_pmi=1e-6, max_iterations=3)

        uninterrupted = self._build_loop(
            cluster_profile, train, cluster_naturalness, rule
        )
        model_a, report_a = uninterrupted.run(
            trained_cluster_model, operational_cluster_data
        )

        checkpoint = tmp_path / "loop.ckpt"
        killing_rule = _KillingRule(target_pmi=1e-6, max_iterations=3)
        dying = self._build_loop(
            cluster_profile, train, cluster_naturalness, killing_rule
        )
        with pytest.raises(RuntimeError, match="killed"):
            dying.run(
                trained_cluster_model,
                operational_cluster_data,
                checkpoint_path=str(checkpoint),
            )
        assert checkpoint.exists()

        resumed = self._build_loop(cluster_profile, train, cluster_naturalness, rule)
        model_b, report_b = resumed.run(
            trained_cluster_model,
            operational_cluster_data,
            resume_from=str(checkpoint),
        )

        digest = lambda report: [  # noqa: E731 - local comparison helper
            (
                it.iteration,
                it.seeds_selected,
                it.test_cases_used,
                it.aes_detected,
                it.pmi_before,
                it.pmi_after,
                it.operational_accuracy_after,
                it.target_met,
            )
            for it in report.iterations
        ]
        assert digest(report_a) == digest(report_b)
        assert uninterrupted.last_estimate.to_dict() == resumed.last_estimate.to_dict()
        for layer_a, layer_b in zip(model_a.get_weights(), model_b.get_weights()):
            for key in layer_a:
                np.testing.assert_array_equal(layer_a[key], layer_b[key])

    def test_resume_rejects_different_campaign(
        self,
        tmp_path,
        cluster_profile,
        clusters_split,
        cluster_naturalness,
        trained_cluster_model,
        operational_cluster_data,
    ):
        train, _ = clusters_split
        rule = StoppingRule(target_pmi=1e-6, max_iterations=2)
        checkpoint = tmp_path / "loop.ckpt"
        loop = self._build_loop(cluster_profile, train, cluster_naturalness, rule)
        loop.run(
            trained_cluster_model,
            operational_cluster_data,
            checkpoint_path=str(checkpoint),
        )
        different = self._build_loop(
            cluster_profile,
            train,
            cluster_naturalness,
            StoppingRule(target_pmi=1e-6, max_iterations=5),
        )
        with pytest.raises(ConfigurationError, match="different campaign"):
            different.run(
                trained_cluster_model,
                operational_cluster_data,
                resume_from=str(checkpoint),
            )


# --------------------------------------------------------------------------- #
# run registry
# --------------------------------------------------------------------------- #
def _sample_report():
    report = CampaignReport()
    report.append(
        IterationReport(
            iteration=0,
            seeds_selected=4,
            test_cases_used=30,
            aes_detected=2,
            pmi_before=0.08,
            pmi_after=0.05,
            operational_accuracy_before=0.92,
            operational_accuracy_after=0.95,
            reliability_target=0.02,
            target_met=False,
            notes={"fuzzer_model_calls": 7.0},
        )
    )
    return report


def _sample_detections():
    return [
        AdversarialExample(
            seed=np.arange(2.0),
            perturbed=np.arange(2.0) + 0.1,
            true_label=1,
            predicted_label=0,
            distance=0.1,
            naturalness=0.7,
            op_density=1.2,
            method="operational-fuzzer",
            queries=9,
        ),
        AdversarialExample(
            seed=np.ones(2),
            perturbed=np.ones(2) * 1.1,
            true_label=0,
            predicted_label=2,
            distance=0.1,
            naturalness=None,
            op_density=None,
            method="pgd",
            queries=4,
        ),
    ]


class TestRunRegistry:
    def test_create_assigns_sequential_ids(self, tmp_path):
        registry = RunRegistry(tmp_path)
        assert registry.create("a").run_id == "run-0001"
        assert registry.create("b").run_id == "run-0002"
        assert [run.run_id for run in registry.runs()] == ["run-0001", "run-0002"]

    def test_manifest_and_status_lifecycle(self, tmp_path):
        registry = RunRegistry(tmp_path)
        run = registry.create("demo", {"seed": 7})
        assert run.status == "running"
        assert run.config == {"seed": 7}
        run.finish("completed")
        assert registry.get(run.run_id).status == "completed"
        with pytest.raises(StoreError):
            run.set_status("bogus")

    def test_report_roundtrip(self, tmp_path):
        run = RunRegistry(tmp_path).create("demo")
        report = _sample_report()
        run.save_report(report)
        loaded = run.load_report()
        assert loaded.total_aes == report.total_aes
        assert loaded.iterations[0] == report.iterations[0]
        assert loaded.final_pmi == report.final_pmi

    def test_detections_roundtrip(self, tmp_path):
        run = RunRegistry(tmp_path).create("demo")
        detections = _sample_detections()
        run.save_detections(detections)
        loaded = run.load_detections()
        assert len(loaded) == 2
        for original, restored in zip(detections, loaded):
            np.testing.assert_array_equal(original.seed, restored.seed)
            np.testing.assert_array_equal(original.perturbed, restored.perturbed)
            assert original.true_label == restored.true_label
            assert original.predicted_label == restored.predicted_label
            assert original.naturalness == restored.naturalness
            assert original.op_density == restored.op_density
            assert original.method == restored.method
            assert original.queries == restored.queries

    def test_empty_detections_roundtrip(self, tmp_path):
        run = RunRegistry(tmp_path).create("demo")
        run.save_detections([])
        assert run.load_detections() == []

    def test_stats_and_estimates_roundtrip(self, tmp_path):
        run = RunRegistry(tmp_path).create("demo")
        assert run.load_stats() is None
        assert run.load_estimates() == {}
        stats = QueryStats(rows_queried=11, model_calls=2)
        run.save_stats(stats)
        assert run.load_stats() == stats
        estimate = ReliabilityEstimate(
            pmi=0.04,
            pmi_upper=0.07,
            pmi_lower=0.01,
            operational_accuracy=0.96,
            confidence=0.9,
            cells_evaluated=5,
            total_op_mass_evaluated=0.8,
            queries=100,
        )
        run.save_estimates({"final": estimate})
        assert run.load_estimates() == {"final": estimate}

    def test_get_unknown_run_raises(self, tmp_path):
        with pytest.raises(StoreError):
            RunRegistry(tmp_path).get("run-9999")

    def test_gc_by_status_and_keep(self, tmp_path):
        registry = RunRegistry(tmp_path)
        first = registry.create("a")
        second = registry.create("b")
        third = registry.create("c")
        first.finish("completed")
        second.finish("failed")
        third.finish("failed")
        with pytest.raises(StoreError):
            registry.gc()  # refuses to delete everything
        # keep larger than the candidate count must delete nothing at all
        assert registry.gc(keep=5) == []
        assert len(registry.runs()) == 3
        assert registry.gc(status="failed", keep=1) == [second.run_id]
        assert registry.gc(status="failed") == [third.run_id]
        assert [run.run_id for run in registry.runs()] == [first.run_id]


# --------------------------------------------------------------------------- #
# CLI (python -m repro) end-to-end
# --------------------------------------------------------------------------- #
class TestCli:
    RUN_ARGS = [
        "run",
        "--scenario",
        "gaussian-clusters",
        "--samples",
        "250",
        "--epochs",
        "4",
        "--iterations",
        "1",
        "--budget",
        "60",
        "--seeds-per-iteration",
        "4",
        "--queries-per-seed",
        "6",
        "--checkpoint-every",
        "1",
        "--seed",
        "2021",
    ]

    def test_run_show_ls_gc_roundtrip(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "runs")
        cache_dir = str(tmp_path / "cache")
        base = ["--runs-dir", runs_dir]
        assert cli_main(base + self.RUN_ARGS + ["--cache-dir", cache_dir]) == 0
        # second run over the same persistent cache: strictly fewer physical
        # model calls, identical logical outcome
        assert cli_main(base + self.RUN_ARGS + ["--cache-dir", cache_dir]) == 0
        registry = RunRegistry(runs_dir)
        first, second = registry.runs()
        assert first.status == second.status == "completed"
        assert second.load_stats().model_calls < first.load_stats().model_calls
        assert _detection_digest(first) == _detection_digest(second)
        assert (
            first.load_estimates()["final"].to_dict()
            == second.load_estimates()["final"].to_dict()
        )

        capsys.readouterr()
        assert cli_main(base + ["ls"]) == 0
        listing = capsys.readouterr().out
        assert "run-0001" in listing and "run-0002" in listing

        assert cli_main(base + ["show", "run-0001"]) == 0
        shown = capsys.readouterr().out
        assert "engine stats" in shown
        assert "reliability estimates" in shown

        assert cli_main(base + ["gc", "--keep", "1"]) == 0
        assert [run.run_id for run in registry.runs()] == ["run-0002"]

    def test_resume_completed_run_is_a_noop(self, tmp_path, capsys):
        base = ["--runs-dir", str(tmp_path / "runs")]
        assert cli_main(base + self.RUN_ARGS) == 0
        capsys.readouterr()
        assert cli_main(base + ["resume", "run-0001"]) == 0
        assert "already completed" in capsys.readouterr().out

    def test_resume_interrupted_run_completes(self, tmp_path):
        runs_dir = str(tmp_path / "runs")
        base = ["--runs-dir", runs_dir]
        assert cli_main(base + self.RUN_ARGS) == 0
        registry = RunRegistry(runs_dir)
        run = registry.get("run-0001")
        reference = run.load_report()
        # pretend the process died after its last checkpoint: the status is
        # still "running" and the checkpoint file is in place
        run.set_status("running")
        assert run.checkpoint_path.exists()
        assert cli_main(base + ["resume", "run-0001"]) == 0
        resumed = registry.get("run-0001")
        assert resumed.status == "completed"
        restored = resumed.load_report()
        assert restored.final_pmi == reference.final_pmi
        assert restored.total_aes == reference.total_aes

    def test_resume_without_checkpoint_errors(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "runs")
        registry = RunRegistry(runs_dir)
        registry.create("demo", {"scenario": "gaussian-clusters", "seed": 1})
        assert cli_main(["--runs-dir", runs_dir, "resume", "run-0001"]) == 1
        assert "no checkpoint" in capsys.readouterr().err

    def test_unbuildable_campaign_marks_run_failed(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "runs")
        args = ["--runs-dir", runs_dir] + self.RUN_ARGS[:]
        args[args.index("gaussian-clusters")] = "no-such-scenario"
        assert cli_main(args) == 1
        assert "unknown scenario" in capsys.readouterr().err
        # the run must not be wedged in "running": gc --status failed can
        # collect it
        registry = RunRegistry(runs_dir)
        assert registry.get("run-0001").status == "failed"
        assert registry.gc(status="failed") == ["run-0001"]


def _detection_digest(run):
    return [
        (ae.true_label, ae.predicted_label, ae.perturbed.tobytes())
        for ae in run.load_detections()
    ]
