"""Tests for the shared wire types in repro.types."""

import numpy as np
import pytest

from repro.exceptions import DataError, ShapeError
from repro.types import (
    AdversarialExample,
    CampaignReport,
    DetectionResult,
    IterationReport,
    LabeledBatch,
)


def _ae(op_density=0.5, naturalness=0.8, queries=3):
    seed = np.array([0.5, 0.5])
    return AdversarialExample(
        seed=seed,
        perturbed=seed + 0.05,
        true_label=0,
        predicted_label=1,
        distance=0.05,
        naturalness=naturalness,
        op_density=op_density,
        method="test",
        queries=queries,
    )


class TestLabeledBatch:
    def test_basic_properties(self):
        batch = LabeledBatch(np.zeros((4, 3)), np.array([0, 1, 0, 1]))
        assert len(batch) == 4
        assert batch.num_features == 3

    def test_rejects_1d_x(self):
        with pytest.raises(ShapeError):
            LabeledBatch(np.zeros(4), np.array([0, 1, 0, 1]))

    def test_rejects_2d_y(self):
        with pytest.raises(ShapeError):
            LabeledBatch(np.zeros((4, 3)), np.zeros((4, 1)))

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(DataError):
            LabeledBatch(np.zeros((4, 3)), np.array([0, 1]))

    def test_subset(self):
        batch = LabeledBatch(np.arange(12).reshape(4, 3), np.array([0, 1, 2, 3]))
        sub = batch.subset([1, 3])
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.y, [1, 3])

    def test_concat(self):
        a = LabeledBatch(np.zeros((2, 3)), np.array([0, 1]))
        b = LabeledBatch(np.ones((3, 3)), np.array([1, 0, 1]))
        merged = a.concat(b)
        assert len(merged) == 5

    def test_concat_feature_mismatch(self):
        a = LabeledBatch(np.zeros((2, 3)), np.array([0, 1]))
        b = LabeledBatch(np.ones((2, 4)), np.array([0, 1]))
        with pytest.raises(DataError):
            a.concat(b)


class TestAdversarialExample:
    def test_perturbation(self):
        ae = _ae()
        np.testing.assert_allclose(ae.perturbation(), [0.05, 0.05])

    def test_defaults(self):
        ae = AdversarialExample(
            seed=np.zeros(2), perturbed=np.ones(2), true_label=0, predicted_label=1, distance=1.0
        )
        assert ae.naturalness is None
        assert ae.op_density is None
        assert ae.method == "unknown"


class TestDetectionResult:
    def test_counts_and_rates(self):
        result = DetectionResult(
            method="m", adversarial_examples=[_ae(), _ae()], test_cases_used=50, budget=100
        )
        assert result.num_detected == 2
        assert result.detection_rate() == pytest.approx(2 / 50)

    def test_detection_rate_zero_queries(self):
        assert DetectionResult(method="m").detection_rate() == 0.0

    def test_mean_annotations(self):
        result = DetectionResult(
            method="m",
            adversarial_examples=[_ae(op_density=0.2, naturalness=0.4), _ae(op_density=0.8, naturalness=1.0)],
        )
        assert result.mean_op_density() == pytest.approx(0.5)
        assert result.mean_naturalness() == pytest.approx(0.7)

    def test_mean_annotations_empty(self):
        result = DetectionResult(method="m")
        assert result.mean_op_density() == 0.0
        assert result.mean_naturalness() == 0.0

    def test_operational_weight(self):
        result = DetectionResult(
            method="m", adversarial_examples=[_ae(op_density=0.25), _ae(op_density=1.5)]
        )
        assert result.operational_weight() == pytest.approx(1.75)


class TestReports:
    def test_iteration_report_improvement(self):
        report = IterationReport(
            iteration=0,
            seeds_selected=10,
            test_cases_used=100,
            aes_detected=4,
            pmi_before=0.10,
            pmi_after=0.06,
            operational_accuracy_before=0.90,
            operational_accuracy_after=0.94,
            reliability_target=0.05,
            target_met=False,
        )
        assert report.pmi_improvement == pytest.approx(0.04)

    def test_campaign_accumulates(self):
        campaign = CampaignReport()
        for i in range(3):
            campaign.append(
                IterationReport(
                    iteration=i,
                    seeds_selected=5,
                    test_cases_used=100,
                    aes_detected=2,
                    pmi_before=0.1,
                    pmi_after=0.05 - i * 0.01,
                    operational_accuracy_before=0.9,
                    operational_accuracy_after=0.95,
                    reliability_target=0.02,
                    target_met=i == 2,
                )
            )
        assert campaign.num_iterations == 3
        assert campaign.total_test_cases == 300
        assert campaign.total_aes == 6
        assert campaign.target_met is True
        assert campaign.final_pmi == pytest.approx(0.03)
