"""Tests for the detection methods and the comparison harness."""

import numpy as np
import pytest

from repro.core import (
    AttackOnUniformSeeds,
    MethodComparison,
    OperationalAECriterion,
    OperationalAEDetection,
    OperationalTestingBaseline,
    RandomFuzzBaseline,
)
from repro.exceptions import ConfigurationError
from repro.fuzzing import FuzzerConfig
from repro.types import AdversarialExample, DetectionResult


@pytest.fixture()
def all_methods(cluster_profile, cluster_naturalness, clusters_split):
    train, _ = clusters_split
    return [
        OperationalAEDetection(
            profile=cluster_profile,
            naturalness=cluster_naturalness,
            fuzzer_config=FuzzerConfig(queries_per_seed=15),
        ),
        AttackOnUniformSeeds(
            profile=cluster_profile, naturalness=cluster_naturalness, seed_pool=train
        ),
        RandomFuzzBaseline(
            profile=cluster_profile, naturalness=cluster_naturalness, seed_pool=train
        ),
        OperationalTestingBaseline(profile=cluster_profile, naturalness=cluster_naturalness),
    ]


class TestDetectionMethods:
    def test_all_methods_respect_budget_and_annotate(
        self, all_methods, trained_cluster_model, operational_cluster_data
    ):
        budget = 200
        for method in all_methods:
            result = method.detect(trained_cluster_model, operational_cluster_data, budget, rng=0)
            assert isinstance(result, DetectionResult)
            assert result.method == method.name
            assert result.budget == budget
            # allow one seed's worth of overshoot
            assert result.test_cases_used <= budget + 30
            assert result.seeds_attacked > 0
            for ae in result.adversarial_examples:
                assert ae.true_label != ae.predicted_label
                assert ae.op_density is not None

    def test_detected_aes_are_really_misclassified(
        self, all_methods, trained_cluster_model, operational_cluster_data
    ):
        for method in all_methods:
            result = method.detect(trained_cluster_model, operational_cluster_data, 150, rng=1)
            for ae in result.adversarial_examples:
                prediction = trained_cluster_model.predict(np.atleast_2d(ae.perturbed))[0]
                assert prediction == ae.predicted_label

    def test_proposed_method_finds_aes(
        self, cluster_profile, cluster_naturalness, trained_cluster_model, operational_cluster_data
    ):
        method = OperationalAEDetection(profile=cluster_profile, naturalness=cluster_naturalness)
        result = method.detect(trained_cluster_model, operational_cluster_data, 400, rng=0)
        assert result.num_detected > 0

    def test_proposed_aes_have_higher_naturalness_than_pgd(
        self,
        cluster_profile,
        cluster_naturalness,
        trained_cluster_model,
        operational_cluster_data,
        clusters_split,
    ):
        train, _ = clusters_split
        proposed = OperationalAEDetection(
            profile=cluster_profile, naturalness=cluster_naturalness
        ).detect(trained_cluster_model, operational_cluster_data, 400, rng=0)
        pgd = AttackOnUniformSeeds(
            profile=cluster_profile, naturalness=cluster_naturalness, seed_pool=train
        ).detect(trained_cluster_model, operational_cluster_data, 400, rng=0)
        if proposed.num_detected and pgd.num_detected:
            assert proposed.mean_naturalness() >= pgd.mean_naturalness() - 0.05

    def test_invalid_budget(self, all_methods, trained_cluster_model, operational_cluster_data):
        for method in all_methods:
            with pytest.raises(ConfigurationError):
                method.detect(trained_cluster_model, operational_cluster_data, 0)

    def test_operational_testing_counts_only_natural_failures(
        self, cluster_profile, cluster_naturalness, trained_cluster_model, operational_cluster_data
    ):
        method = OperationalTestingBaseline(
            profile=cluster_profile, naturalness=cluster_naturalness
        )
        result = method.detect(trained_cluster_model, operational_cluster_data, 200, rng=0)
        for ae in result.adversarial_examples:
            assert ae.distance == 0.0


class TestOperationalAECriterion:
    def _ae(self, naturalness, density):
        return AdversarialExample(
            seed=np.zeros(2),
            perturbed=np.zeros(2),
            true_label=0,
            predicted_label=1,
            distance=0.1,
            naturalness=naturalness,
            op_density=density,
        )

    def test_requires_both_thresholds(self):
        criterion = OperationalAECriterion(min_naturalness=0.5, min_op_density=0.5)
        assert criterion.is_operational(self._ae(0.9, 0.9))
        assert not criterion.is_operational(self._ae(0.9, 0.1))
        assert not criterion.is_operational(self._ae(0.1, 0.9))

    def test_missing_annotations(self):
        strict = OperationalAECriterion(require_annotations=True)
        lenient = OperationalAECriterion(require_annotations=False)
        unannotated = AdversarialExample(
            seed=np.zeros(2), perturbed=np.zeros(2), true_label=0, predicted_label=1, distance=0.1
        )
        assert not strict.is_operational(unannotated)
        assert lenient.is_operational(unannotated)

    def test_count(self):
        criterion = OperationalAECriterion(0.5, 0.5)
        result = DetectionResult(
            method="m",
            adversarial_examples=[self._ae(0.9, 0.9), self._ae(0.1, 0.9), self._ae(0.9, 0.8)],
        )
        assert criterion.count(result) == 2


class TestMethodComparison:
    def test_report_structure(self, all_methods, trained_cluster_model, operational_cluster_data):
        comparison = MethodComparison(all_methods[:2])
        report = comparison.run(
            trained_cluster_model, operational_cluster_data, budgets=[100, 200], repeats=1, rng=0
        )
        assert len(report.scores) == 4  # 2 methods x 2 budgets
        rows = report.as_rows()
        assert len(rows) == 4
        assert {row["method"] for row in rows} == {all_methods[0].name, all_methods[1].name}
        assert report.for_budget(100)
        assert report.for_method(all_methods[0].name)

    def test_best_method_lookup(self, all_methods, trained_cluster_model, operational_cluster_data):
        comparison = MethodComparison(all_methods[:2])
        report = comparison.run(
            trained_cluster_model, operational_cluster_data, budgets=[150], repeats=1, rng=0
        )
        best = report.best_method_by_operational_aes(150)
        assert best in {m.name for m in all_methods[:2]}
        assert report.best_method_by_operational_aes(999) is None

    def test_repeats_average(self, all_methods, trained_cluster_model, operational_cluster_data):
        comparison = MethodComparison([all_methods[3]])
        report = comparison.run(
            trained_cluster_model, operational_cluster_data, budgets=[100], repeats=2, rng=0
        )
        assert report.scores[0].repeats == 2

    def test_invalid_configuration(self, all_methods):
        with pytest.raises(ConfigurationError):
            MethodComparison([])
        with pytest.raises(ConfigurationError):
            MethodComparison([all_methods[0], all_methods[0]])

    def test_invalid_run_args(self, all_methods, trained_cluster_model, operational_cluster_data):
        comparison = MethodComparison(all_methods[:1])
        with pytest.raises(ConfigurationError):
            comparison.run(trained_cluster_model, operational_cluster_data, budgets=[])
        with pytest.raises(ConfigurationError):
            comparison.run(trained_cluster_model, operational_cluster_data, budgets=[0])
        with pytest.raises(ConfigurationError):
            comparison.run(
                trained_cluster_model, operational_cluster_data, budgets=[10], repeats=0
            )
