"""Tests for repro.nn.models, serialization and the autoencoder."""

import os

import numpy as np
import pytest

from repro.data import make_gaussian_clusters
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.nn import (
    Adam,
    AutoencoderConfig,
    DenseAutoencoder,
    Trainer,
    TrainerConfig,
    accuracy,
    build_cnn_classifier,
    build_logistic_regression,
    build_mlp_classifier,
    load_weights,
    save_weights,
)
from repro.nn.serialization import flat_dict_to_weights, weights_to_flat_dict


class TestModelFactories:
    def test_mlp_output_shape(self):
        model = build_mlp_classifier(10, 3, hidden_sizes=(8, 4), rng=0)
        assert model.predict_logits(np.zeros((2, 10))).shape == (2, 3)

    def test_mlp_with_dropout_and_batchnorm(self):
        model = build_mlp_classifier(6, 2, hidden_sizes=(8,), dropout=0.3, batch_norm=True, rng=0)
        assert model.predict(np.random.default_rng(0).random((4, 6))).shape == (4,)

    def test_mlp_invalid_args(self):
        with pytest.raises(ConfigurationError):
            build_mlp_classifier(0, 3)
        with pytest.raises(ConfigurationError):
            build_mlp_classifier(4, 1)
        with pytest.raises(ConfigurationError):
            build_mlp_classifier(4, 3, hidden_sizes=(0,))

    def test_mlp_deterministic_given_seed(self):
        a = build_mlp_classifier(4, 2, rng=7).predict_logits(np.ones((1, 4)))
        b = build_mlp_classifier(4, 2, rng=7).predict_logits(np.ones((1, 4)))
        np.testing.assert_allclose(a, b)

    def test_logistic_regression(self):
        model = build_logistic_regression(5, 3, rng=0)
        assert model.num_parameters() == 5 * 3 + 3
        with pytest.raises(ConfigurationError):
            build_logistic_regression(5, 1)

    def test_cnn_forward_and_gradient(self):
        model = build_cnn_classifier(8, 3, conv_channels=(4,), dense_width=16, rng=0)
        x = np.random.default_rng(0).random((2, 64))
        assert model.predict_logits(x).shape == (2, 3)
        grad = model.loss_input_gradient(x, np.array([0, 1]))
        assert grad.shape == x.shape
        assert np.any(grad != 0)

    def test_cnn_trains_a_little(self):
        rng = np.random.default_rng(0)
        x = rng.random((60, 64))
        y = (x[:, :32].mean(axis=1) > x[:, 32:].mean(axis=1)).astype(int)
        model = build_cnn_classifier(8, 2, conv_channels=(4,), dense_width=8, rng=1)
        Trainer(Adam(0.01), TrainerConfig(epochs=5, batch_size=16), rng=0).fit(model, x, y)
        assert accuracy(y, model.predict(x)) > 0.55

    def test_cnn_invalid_args(self):
        with pytest.raises(ConfigurationError):
            build_cnn_classifier(3, 2)
        with pytest.raises(ConfigurationError):
            build_cnn_classifier(8, 1)
        with pytest.raises(ConfigurationError):
            build_cnn_classifier(8, 3, conv_channels=(4, 8, 16, 32))


class TestSerialization:
    def test_flat_dict_roundtrip(self):
        model = build_mlp_classifier(4, 3, hidden_sizes=(5,), rng=0)
        weights = model.get_weights()
        flat = weights_to_flat_dict(weights)
        restored = flat_dict_to_weights(flat)
        assert len(restored) >= 1
        np.testing.assert_allclose(restored[0]["weight"], weights[0]["weight"])

    def test_flat_dict_empty(self):
        assert flat_dict_to_weights({}) == []

    def test_flat_dict_malformed_key(self):
        with pytest.raises(ShapeError):
            flat_dict_to_weights({"weight": np.zeros(2)})
        with pytest.raises(ShapeError):
            flat_dict_to_weights({"x::y::z": np.zeros(2), "abc": np.zeros(1)})

    def test_save_load_roundtrip(self, tmp_path):
        model = build_mlp_classifier(6, 3, hidden_sizes=(8,), rng=0)
        x = np.random.default_rng(0).random((4, 6))
        expected = model.predict_logits(x)
        path = os.path.join(tmp_path, "weights", "model.npz")
        save_weights(model, path)
        other = build_mlp_classifier(6, 3, hidden_sizes=(8,), rng=99)
        assert not np.allclose(expected, other.predict_logits(x))
        load_weights(other, path)
        np.testing.assert_allclose(expected, other.predict_logits(x))

    def test_load_into_wrong_architecture(self, tmp_path):
        model = build_mlp_classifier(6, 3, hidden_sizes=(8,), rng=0)
        path = os.path.join(tmp_path, "model.npz")
        save_weights(model, path)
        other = build_mlp_classifier(6, 3, hidden_sizes=(12,), rng=0)
        with pytest.raises(ShapeError):
            load_weights(other, path)

    def test_save_load_accepts_pathlib_path(self, tmp_path):
        model = build_mlp_classifier(6, 3, hidden_sizes=(8,), rng=0)
        x = np.random.default_rng(0).random((4, 6))
        expected = model.predict_logits(x)
        path = tmp_path / "model.npz"  # pathlib.Path, not str
        save_weights(model, path)
        other = build_mlp_classifier(6, 3, hidden_sizes=(8,), rng=99)
        load_weights(other, path)
        np.testing.assert_allclose(expected, other.predict_logits(x))

    def test_save_creates_missing_parent_directories_for_path(self, tmp_path):
        model = build_mlp_classifier(4, 2, hidden_sizes=(5,), rng=0)
        path = tmp_path / "a" / "b" / "c" / "model.npz"  # none of a/b/c exist
        save_weights(model, path)
        assert path.exists()
        other = build_mlp_classifier(4, 2, hidden_sizes=(5,), rng=1)
        load_weights(other, path)
        x = np.random.default_rng(2).random((3, 4))
        np.testing.assert_allclose(model.predict_logits(x), other.predict_logits(x))

    def test_save_relative_path_without_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        model = build_mlp_classifier(4, 2, hidden_sizes=(5,), rng=0)
        save_weights(model, "bare.npz")  # no parent component at all
        other = build_mlp_classifier(4, 2, hidden_sizes=(5,), rng=1)
        load_weights(other, "bare.npz")
        x = np.random.default_rng(2).random((3, 4))
        np.testing.assert_allclose(model.predict_logits(x), other.predict_logits(x))


class TestAutoencoder:
    def test_fit_reduces_reconstruction_error(self):
        data = make_gaussian_clusters(300, num_classes=3, cluster_std=0.05, rng=0)
        config = AutoencoderConfig(hidden_sizes=(16,), latent_dim=2, epochs=30)
        autoencoder = DenseAutoencoder(2, config, rng=0)
        autoencoder.fit(data.x)
        errors = autoencoder.reconstruction_error(data.x)
        assert errors.mean() < 0.05

    def test_natural_data_reconstructs_better_than_noise(self):
        data = make_gaussian_clusters(300, num_classes=3, cluster_std=0.05, rng=1)
        autoencoder = DenseAutoencoder(
            2, AutoencoderConfig(hidden_sizes=(16,), latent_dim=2, epochs=30), rng=0
        )
        autoencoder.fit(data.x)
        natural_error = autoencoder.reconstruction_error(data.x).mean()
        noise = np.random.default_rng(2).random((300, 2))
        noise_error = autoencoder.reconstruction_error(noise).mean()
        assert noise_error > natural_error

    def test_requires_fit_before_scoring(self):
        autoencoder = DenseAutoencoder(4, rng=0)
        with pytest.raises(NotFittedError):
            autoencoder.reconstruct(np.zeros((1, 4)))
        assert not autoencoder.is_fitted

    def test_rejects_wrong_width(self):
        autoencoder = DenseAutoencoder(4, rng=0)
        with pytest.raises(ConfigurationError):
            autoencoder.fit(np.zeros((10, 3)))

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            AutoencoderConfig(latent_dim=0)
        with pytest.raises(ConfigurationError):
            AutoencoderConfig(hidden_sizes=(0,))
        with pytest.raises(ConfigurationError):
            DenseAutoencoder(0)
