"""Sharded multi-worker engine: bit-identity, accounting and lifecycle.

Fast tier: shard planning, engine-level bit-identity against the in-process
batched engine, campaign equivalence on the shared cluster fixtures, the
race-hammer regression for concurrent stats merging, and lifecycle checks.

Slow tier (``pytest -m slow``): the scenario-matrix differential suite —
sequential vs population vs sharded campaigns (and batched vs sharded
reliability estimates) pinned bit-identical on the two-moons,
gaussian-clusters and glyph-digits scenarios from
:mod:`repro.evaluation.scenarios`.
"""

import threading
from functools import lru_cache

import numpy as np
import pytest

from repro.engine import (
    SHM_MIN_BLOCK_BYTES,
    BatchedQueryEngine,
    QueryStats,
    ShardedQueryEngine,
    build_query_engine,
    plan_shards,
    query_engine_session,
)
from repro.engine.transport import ShmRing, resolve_auto_transport
from repro.evaluation import make_scenario
from repro.exceptions import ConfigurationError, FuzzingError
from repro.faults import FaultPlan, RetryPolicy
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.reliability import ReliabilityAssessor
from repro.runtime import ExecutionPolicy

SCENARIO_MATRIX = ["two-moons", "gaussian-clusters", "glyph-digits"]

#: Every explicit shard transport (``auto`` resolves to one of the first two).
TRANSPORT_MATRIX = ["pickle", "shm", "threads"]

#: Reduced scenario sizes so the slow tier stays minutes, not hours.
SCENARIO_OVERRIDES = {
    "two-moons": dict(num_samples=600, epochs=12),
    "gaussian-clusters": dict(num_samples=600, epochs=12),
    "glyph-digits": dict(num_samples=500, image_size=10, epochs=8),
}


@lru_cache(maxsize=None)
def _scenario(name):
    """Build (and memoise) one scenario of the differential matrix."""
    return make_scenario(name, rng=2021, **SCENARIO_OVERRIDES[name])


def _assert_campaigns_equivalent(reference, candidate, exact=True):
    """Per-seed queries, detections and AEs must match across engines.

    ``exact=True`` (population vs sharded — same control flow, same physical
    chunks) demands *bit-identical* floats.  ``exact=False`` is used against
    the sequential reference, whose one-row model calls may differ from the
    batched ones in the last ulp (BLAS kernel selection); discrete outcomes
    (queries, detections, rejections) must still match exactly.
    """
    assert len(reference.per_seed) == len(candidate.per_seed)
    for ref, cand in zip(reference.per_seed, candidate.per_seed):
        assert ref.seed_index == cand.seed_index
        assert ref.queries == cand.queries
        assert (
            ref.candidates_rejected_by_naturalness
            == cand.candidates_rejected_by_naturalness
        )
        if exact:
            assert ref.best_fitness == cand.best_fitness
        else:
            assert ref.best_fitness == pytest.approx(cand.best_fitness, rel=1e-9)
        assert (ref.adversarial_example is None) == (cand.adversarial_example is None)
        if ref.adversarial_example is not None:
            if exact:
                np.testing.assert_array_equal(
                    ref.adversarial_example.perturbed,
                    cand.adversarial_example.perturbed,
                )
            else:
                np.testing.assert_allclose(
                    ref.adversarial_example.perturbed,
                    cand.adversarial_example.perturbed,
                    rtol=1e-9,
                    atol=1e-12,
                )
            assert (
                ref.adversarial_example.predicted_label
                == cand.adversarial_example.predicted_label
            )
            assert ref.adversarial_example.queries == cand.adversarial_example.queries
    assert reference.total_queries == candidate.total_queries
    assert reference.detection_rate == candidate.detection_rate


def _fuzzer(naturalness, pool, mode, transport="auto", **overrides):
    """Fuzzer for one point of the equivalence matrix.

    ``mode`` is the historical triple: ``"sequential"``/``"population"``
    select the control flow on the in-process backend, ``"sharded"`` selects
    population control flow on the replicated two-worker backend
    (``transport`` picks its wire: pickle, shm, threads or auto).
    """
    defaults = dict(
        epsilon=0.12,
        queries_per_seed=20,
        naturalness_threshold=0.3,
    )
    if mode == "sharded":
        defaults.update(
            execution="population",
            policy=ExecutionPolicy(
                backend="sharded", num_workers=2, cache=True, transport=transport
            ),
        )
    else:
        defaults.update(execution=mode)
    defaults.update(overrides)
    return OperationalFuzzer(
        naturalness=naturalness, config=FuzzerConfig(**defaults), natural_pool=pool
    )


# --------------------------------------------------------------------------- #
# shard planning
# --------------------------------------------------------------------------- #
class TestShardPlanning:
    def test_shards_cover_rows_in_order(self):
        shards = plan_shards(23, 5, 3)
        assert [(s.start, s.stop) for s in shards] == [
            (0, 5), (5, 10), (10, 15), (15, 20), (20, 23),
        ]
        assert [s.index for s in shards] == list(range(5))

    def test_worker_assignment_is_round_robin(self):
        shards = plan_shards(100, 10, 4)
        assert [s.worker for s in shards] == [i % 4 for i in range(10)]

    def test_plans_are_deterministic(self):
        assert plan_shards(57, 8, 3) == plan_shards(57, 8, 3)

    def test_invalid_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(10, 0, 2)
        with pytest.raises(ConfigurationError):
            plan_shards(10, 4, 0)
        with pytest.raises(ConfigurationError):
            plan_shards(-1, 4, 2)


# --------------------------------------------------------------------------- #
# engine-level bit-identity
# --------------------------------------------------------------------------- #
class TestShardedEngineBitIdentity:
    @pytest.fixture()
    def engines(self, trained_cluster_model, cluster_naturalness):
        batched = BatchedQueryEngine(
            trained_cluster_model, naturalness=cluster_naturalness, batch_size=6
        )
        sharded = ShardedQueryEngine(
            trained_cluster_model,
            naturalness=cluster_naturalness,
            batch_size=6,
            num_workers=2,
        )
        yield batched, sharded
        sharded.close()

    def test_predict_proba_bitwise_equal(self, engines, operational_cluster_data):
        batched, sharded = engines
        x = operational_cluster_data.x[:32]
        np.testing.assert_array_equal(sharded.predict_proba(x), batched.predict_proba(x))
        assert sharded.stats.as_dict() == batched.stats.as_dict()

    def test_gradient_bitwise_equal(self, engines, operational_cluster_data):
        batched, sharded = engines
        x = operational_cluster_data.x[:20]
        y = operational_cluster_data.y[:20]
        np.testing.assert_array_equal(
            sharded.loss_input_gradient(x, y), batched.loss_input_gradient(x, y)
        )
        assert sharded.stats.gradient_calls == batched.stats.gradient_calls

    def test_naturalness_bitwise_equal(self, engines, operational_cluster_data):
        batched, sharded = engines
        x = operational_cluster_data.x[:25]
        np.testing.assert_array_equal(
            sharded.score_naturalness(x), batched.score_naturalness(x)
        )
        assert sharded.stats.naturalness_calls == batched.stats.naturalness_calls

    def test_single_worker_runs_in_process(
        self, trained_cluster_model, operational_cluster_data
    ):
        engine = ShardedQueryEngine(trained_cluster_model, batch_size=8, num_workers=1)
        x = operational_cluster_data.x[:19]
        np.testing.assert_array_equal(
            engine.predict(x), trained_cluster_model.predict(x)
        )
        assert engine._pools is None  # no pool was ever spawned
        engine.close()

    def test_shared_cache_answers_across_workers(
        self, trained_cluster_model, operational_cluster_data
    ):
        with ShardedQueryEngine(
            trained_cluster_model, batch_size=4, num_workers=2, cache=True
        ) as engine:
            x = operational_cluster_data.x[:16]
            first = engine.predict_proba(x)
            physical = engine.stats.model_calls
            # rows already computed by *any* worker are answered by the
            # coordinator cache: no new physical calls on any worker
            second = engine.predict_proba(x)
            np.testing.assert_array_equal(first, second)
            assert engine.stats.model_calls == physical
            assert engine.stats.cache_hits == len(x)


# --------------------------------------------------------------------------- #
# campaign equivalence on the shared fixtures (fast tier)
# --------------------------------------------------------------------------- #
class TestShardedCampaignEquivalence:
    def test_sharded_matches_population_and_sequential(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        campaigns = {}
        for mode in ("sequential", "population", "sharded"):
            fuzzer = _fuzzer(cluster_naturalness, data.x, mode)
            campaigns[mode] = fuzzer.fuzz(
                trained_cluster_model, data.x[:14], data.y[:14], rng=0
            )
        _assert_campaigns_equivalent(
            campaigns["sequential"], campaigns["population"], exact=False
        )
        _assert_campaigns_equivalent(campaigns["population"], campaigns["sharded"])

    def test_sharded_matches_population_under_budget(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        campaigns = {}
        for mode in ("population", "sharded"):
            fuzzer = _fuzzer(cluster_naturalness, data.x, mode)
            campaigns[mode] = fuzzer.fuzz(
                trained_cluster_model, data.x[:20], data.y[:20], budget=150, rng=1
            )
            campaigns[mode].validate_budget(150)
        _assert_campaigns_equivalent(campaigns["population"], campaigns["sharded"])

    def test_sharded_respects_budget_invariants(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        for budget in (1, 37, 10_000):
            fuzzer = _fuzzer(cluster_naturalness, data.x, "sharded")
            campaign = fuzzer.fuzz(
                trained_cluster_model, data.x[:12], data.y[:12], budget=budget, rng=5
            )
            assert campaign.total_queries <= budget
            campaign.validate_budget(budget)

    def test_invalid_num_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            FuzzerConfig(policy=ExecutionPolicy(num_workers=0))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(FuzzingError):
                FuzzerConfig(num_workers=0)  # the deprecated shim path
        with pytest.raises(ConfigurationError):
            plan_shards(4, 2, -1)


# --------------------------------------------------------------------------- #
# black-box attacks through the sharded backend
# --------------------------------------------------------------------------- #
class TestShardedAttacks:
    @pytest.mark.parametrize("attack_cls", ["RandomFuzz", "BoundaryNudge"])
    def test_attack_results_identical_across_backends(
        self, attack_cls, trained_cluster_model, operational_cluster_data
    ):
        from repro.attacks import BoundaryNudge, RandomFuzz

        cls = {"RandomFuzz": RandomFuzz, "BoundaryNudge": BoundaryNudge}[attack_cls]
        x = operational_cluster_data.x[:24]
        y = operational_cluster_data.y[:24]
        results = {}
        for backend, workers in (("batched", 1), ("sharded", 2)):
            attack = cls(
                epsilon=0.1,
                policy=ExecutionPolicy(
                    backend=backend, num_workers=workers, batch_size=16
                ),
            )
            results[backend] = attack.run(trained_cluster_model, x, y, rng=4)
        batched, sharded = results["batched"], results["sharded"]
        np.testing.assert_array_equal(batched.adversarial_x, sharded.adversarial_x)
        np.testing.assert_array_equal(batched.success, sharded.success)
        np.testing.assert_array_equal(
            batched.queries_per_seed, sharded.queries_per_seed
        )
        assert batched.queries == sharded.queries

    def test_attack_rejects_bad_engine_knobs(self):
        from repro.attacks import RandomFuzz
        from repro.exceptions import AttackError

        with pytest.raises(ConfigurationError):
            RandomFuzz(policy=ExecutionPolicy(backend="warp"))
        # the deprecated shims keep validating, in the attack's own taxonomy
        with pytest.warns(DeprecationWarning):
            with pytest.raises(AttackError):
                RandomFuzz(engine="warp")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(AttackError):
                RandomFuzz(engine="sharded", num_workers=0)


# --------------------------------------------------------------------------- #
# race-free stats merging and cache accounting (regression)
# --------------------------------------------------------------------------- #
class TestConcurrentMergeSafety:
    def test_hammer_concurrent_shard_merges(self, trained_cluster_model):
        """Concurrent per-shard merges must never lose an update.

        Today's dispatch merges serially on the coordinator thread; the lock
        in ``_absorb`` is the engine's guarantee for any future concurrent
        completion path (async dispatch, callback-based gathering).  This
        hammers that merge point from many threads at once and checks the
        totals are exact — without the lock the read-modify-write merges
        would drop increments.
        """
        engine = ShardedQueryEngine(trained_cluster_model, num_workers=1)
        threads, per_thread = 8, 2500
        delta = QueryStats(model_calls=1, rows_queried=3, cache_hits=2)
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                engine._absorb(delta)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert engine.stats.model_calls == threads * per_thread
        assert engine.stats.rows_queried == 3 * threads * per_thread
        assert engine.stats.cache_hits == 2 * threads * per_thread
        engine.close()

    def test_hammer_concurrent_cache_accounting(self, trained_cluster_model):
        """Cache puts/gets racing with stats merges stay consistent."""
        engine = ShardedQueryEngine(
            trained_cluster_model, num_workers=1, cache=True, cache_max_entries=64
        )
        rows = np.random.default_rng(0).random((128, 2))
        values = np.random.default_rng(1).random((128, 4))
        barrier = threading.Barrier(4)

        def cache_worker(offset):
            barrier.wait()
            for i in range(500):
                row = rows[(offset + i) % len(rows)]
                engine.cache.put(row, values[(offset + i) % len(values)])
                engine.cache.get(rows[i % len(rows)])
                engine._absorb(QueryStats(cache_hits=1))

        workers = [threading.Thread(target=cache_worker, args=(k,)) for k in range(4)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert engine.stats.cache_hits == 4 * 500
        assert len(engine.cache) <= 64
        engine.close()

    def test_query_stats_merge_is_componentwise_addition(self):
        total = QueryStats()
        parts = [
            QueryStats(rows_queried=3, model_calls=1),
            QueryStats(rows_queried=5, cache_hits=2, gradient_calls=4),
            QueryStats(naturalness_rows=7, naturalness_calls=1, gradient_rows=2),
        ]
        for part in parts:
            total.merge(part)
        assert total.as_dict() == {
            "rows_queried": 8,
            "model_calls": 1,
            "cache_hits": 2,
            "gradient_rows": 2,
            "gradient_calls": 4,
            "naturalness_rows": 7,
            "naturalness_calls": 1,
            "shard_retries": 0,
            "worker_respawns": 0,
            "degraded_shards": 0,
            "cache_corrupt_records": 0,
        }


# --------------------------------------------------------------------------- #
# construction and lifecycle
# --------------------------------------------------------------------------- #
class TestEngineConstruction:
    def test_build_query_engine_backends(self, trained_cluster_model):
        batched = build_query_engine(trained_cluster_model, engine="batched")
        assert type(batched) is BatchedQueryEngine
        sharded = build_query_engine(
            trained_cluster_model, engine="sharded", num_workers=2
        )
        assert isinstance(sharded, ShardedQueryEngine)
        sharded.close()

    def test_build_query_engine_passthrough(self, trained_cluster_model):
        engine = BatchedQueryEngine(trained_cluster_model, batch_size=3)
        assert build_query_engine(engine, engine="sharded", num_workers=4) is engine

    def test_build_query_engine_rejects_bad_knobs(self, trained_cluster_model):
        with pytest.raises(ConfigurationError):
            build_query_engine(trained_cluster_model, engine="quantum")
        with pytest.raises(ConfigurationError):
            build_query_engine(trained_cluster_model, engine="sharded", num_workers=0)

    def test_session_closes_created_engines_only(self, trained_cluster_model):
        with query_engine_session(
            trained_cluster_model, engine="sharded", num_workers=2
        ) as engine:
            engine.predict(np.zeros((3, 2)))
            assert engine._pools is not None
        assert engine._pools is None  # closed on exit
        owned = ShardedQueryEngine(trained_cluster_model, num_workers=2)
        try:
            owned.predict(np.zeros((3, 2)))
            with query_engine_session(owned) as passed_through:
                assert passed_through is owned
            assert owned._pools is not None  # caller-owned engines survive
        finally:
            owned.close()

    def test_late_scorer_attach_reaches_workers(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        """Attaching a scorer after the pool snapshot must refresh replicas.

        ``as_query_engine``/``build_query_engine`` inject a naturalness
        scorer into pre-built engines on pass-through; if the worker pool
        already snapshotted a scorer-less replica it must be rebuilt, not
        left to raise mid-campaign.
        """
        engine = ShardedQueryEngine(trained_cluster_model, batch_size=4, num_workers=2)
        try:
            x = operational_cluster_data.x[:12]
            engine.predict(x)  # pool snapshots (model, None)
            assert build_query_engine(engine, naturalness=cluster_naturalness) is engine
            np.testing.assert_array_equal(
                engine.score_naturalness(x), cluster_naturalness.score(x)
            )
        finally:
            engine.close()

    def test_close_is_idempotent_and_reentrant(self, trained_cluster_model):
        engine = ShardedQueryEngine(trained_cluster_model, num_workers=2)
        x = np.zeros((2, 2))
        engine.predict(x)
        engine.close()
        engine.close()
        # a closed engine lazily rebuilds its pool from a fresh snapshot
        engine.predict(x)
        engine.close()


# --------------------------------------------------------------------------- #
# shard transports: bit-identity, auto resolution, ring lifecycle
# --------------------------------------------------------------------------- #
class TestTransportBitIdentity:
    @pytest.mark.parametrize("transport", TRANSPORT_MATRIX)
    def test_engine_calls_bit_identical(
        self,
        transport,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
    ):
        batched = BatchedQueryEngine(
            trained_cluster_model, naturalness=cluster_naturalness, batch_size=6
        )
        x = operational_cluster_data.x[:32]
        y = operational_cluster_data.y[:32]
        with ShardedQueryEngine(
            trained_cluster_model,
            naturalness=cluster_naturalness,
            batch_size=6,
            num_workers=2,
            transport=transport,
        ) as sharded:
            np.testing.assert_array_equal(
                sharded.predict_proba(x), batched.predict_proba(x)
            )
            np.testing.assert_array_equal(
                sharded.loss_input_gradient(x, y), batched.loss_input_gradient(x, y)
            )
            np.testing.assert_array_equal(
                sharded.score_naturalness(x), batched.score_naturalness(x)
            )
            assert sharded.stats.as_dict() == batched.stats.as_dict()

    @pytest.mark.parametrize("transport", TRANSPORT_MATRIX)
    def test_campaigns_bit_identical_across_transports(
        self,
        transport,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
    ):
        data = operational_cluster_data
        population = _fuzzer(cluster_naturalness, data.x, "population").fuzz(
            trained_cluster_model, data.x[:14], data.y[:14], rng=0
        )
        sharded = _fuzzer(
            cluster_naturalness, data.x, "sharded", transport=transport
        ).fuzz(trained_cluster_model, data.x[:14], data.y[:14], rng=0)
        _assert_campaigns_equivalent(population, sharded)

    def test_auto_resolves_by_block_size(self):
        assert resolve_auto_transport(SHM_MIN_BLOCK_BYTES) == "shm"
        assert resolve_auto_transport(SHM_MIN_BLOCK_BYTES - 1) == "pickle"

    def test_engine_auto_picks_per_call(self, trained_cluster_model):
        # small blocks stay on the pickle wire, big blocks go zero-copy —
        # the same engine resolves per logical call
        with ShardedQueryEngine(
            trained_cluster_model, batch_size=8192, num_workers=2
        ) as engine:
            assert engine._call_transport((np.zeros((10, 2)),)) == "pickle"
            assert engine._call_transport((np.zeros((8192, 2)),)) == "shm"

    def test_invalid_transport_rejected(self, trained_cluster_model):
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine(trained_cluster_model, transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            build_query_engine(trained_cluster_model, transport="carrier-pigeon")

    def test_transport_round_trips_through_policy(self):
        policy = ExecutionPolicy(backend="sharded", num_workers=2, transport="shm")
        assert policy.to_dict()["transport"] == "shm"
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy

    def test_threads_with_kill_plan_rejected(self, trained_cluster_model):
        # a thread cannot be SIGKILLed in isolation: kill-injection chaos
        # requires process workers
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine(
                trained_cluster_model,
                num_workers=2,
                transport="threads",
                faults=FaultPlan(kills=((0, 1),)),
            )

    def test_shm_rows_hit_coordinator_cache(
        self, trained_cluster_model, operational_cluster_data
    ):
        # cache lookups happen before dispatch, so rows arriving via shared
        # memory populate — and are answered by — the same coordinator cache
        with ShardedQueryEngine(
            trained_cluster_model,
            batch_size=4,
            num_workers=2,
            cache=True,
            transport="shm",
        ) as engine:
            x = operational_cluster_data.x[:16]
            first = engine.predict_proba(x)
            physical = engine.stats.model_calls
            second = engine.predict_proba(x)
            np.testing.assert_array_equal(first, second)
            assert engine.stats.model_calls == physical
            assert engine.stats.cache_hits == len(x)

    def test_oversized_response_inlines_then_grows_rings(
        self, trained_cluster_model, operational_cluster_data
    ):
        # the cluster model answers more probability columns than it has
        # feature columns, so the first shm dispatch overflows its response
        # slots (sized from the request block) and falls back to inline
        # results — bit-identical — while recording the needed size; the
        # next dispatch grows the rings and stays zero-copy
        x = operational_cluster_data.x[:24]
        reference = BatchedQueryEngine(
            trained_cluster_model, batch_size=6
        ).predict_proba(x)
        with ShardedQueryEngine(
            trained_cluster_model, batch_size=6, num_workers=2, transport="shm"
        ) as engine:
            np.testing.assert_array_equal(engine.predict_proba(x), reference)
            hint = engine._response_bytes_hint
            assert hint > 0
            np.testing.assert_array_equal(engine.predict_proba(x), reference)
            assert all(
                pair.response.slot_bytes >= hint
                for pair in engine._rings[: engine.num_workers]
            )


class TestShmLifecycle:
    def test_close_unlinks_segments(
        self, trained_cluster_model, operational_cluster_data
    ):
        engine = ShardedQueryEngine(
            trained_cluster_model, batch_size=4, num_workers=2, transport="shm"
        )
        engine.predict_proba(operational_cluster_data.x[:16])
        names = [
            ring.name
            for pair in engine._rings
            for ring in (pair.request, pair.response)
        ]
        assert len(names) == 4
        engine.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name).close()

    def test_respawned_worker_reattaches_to_segments(
        self, trained_cluster_model, operational_cluster_data
    ):
        # kill worker 1 at its second shard: the supervisor respawns it and
        # the fresh process must reattach to the same rings by name
        x = operational_cluster_data.x[:64]
        reference = BatchedQueryEngine(
            trained_cluster_model, batch_size=4
        ).predict_proba(x)
        with ShardedQueryEngine(
            trained_cluster_model,
            batch_size=4,
            num_workers=2,
            transport="shm",
            retry=RetryPolicy(shard_timeout_s=1.0),
            faults=FaultPlan(kills=((1, 2),)),
        ) as engine:
            np.testing.assert_array_equal(engine.predict_proba(x), reference)
            assert engine.stats.worker_respawns >= 1

    def test_exhaustion_degrade_unlinks_segments(
        self, trained_cluster_model, operational_cluster_data
    ):
        # both workers die beyond the respawn budget: the engine degrades to
        # in-process execution and must not keep holding shared memory
        x = operational_cluster_data.x[:64]
        reference = BatchedQueryEngine(
            trained_cluster_model, batch_size=4
        ).predict_proba(x)
        kills = tuple((worker, hit) for worker in (0, 1) for hit in range(1, 7))
        with ShardedQueryEngine(
            trained_cluster_model,
            batch_size=4,
            num_workers=2,
            transport="shm",
            retry=RetryPolicy(
                shard_timeout_s=0.5, max_respawns=1, on_exhaustion="degrade"
            ),
            faults=FaultPlan(kills=kills),
        ) as engine:
            np.testing.assert_array_equal(engine.predict_proba(x), reference)
            assert engine._supervisor.degraded
            assert all(
                pair.request.shm is None and pair.response.shm is None
                for pair in engine._rings
            )
            # the degraded engine keeps answering (in-process) bit-identically
            np.testing.assert_array_equal(engine.predict_proba(x), reference)

    def test_ring_slot_reuse_survives_concurrent_hammering(self):
        """Distinct slots written/read concurrently never tear.

        The transport's safety argument is per-slot exclusivity (a slot has
        one writer, then one reader, ordered by submit/harvest); this hammers
        many slots from many threads at once and checks every read returns
        exactly what that slot's writer wrote.
        """
        ring = ShmRing()
        try:
            threads, iterations, rows = 6, 200, 16
            ring.ensure(slots=threads, slot_bytes=rows * 8 * 8)
            failures = []
            barrier = threading.Barrier(threads)

            def hammer(slot):
                rng = np.random.default_rng(slot)
                barrier.wait()
                for _ in range(iterations):
                    block = rng.random((rows, 8))
                    entries = ring.write(slot, [block])
                    offset, shape, dtype = entries[0]
                    back = ring.read_copy(offset, shape, dtype)
                    if not np.array_equal(back, block):
                        failures.append(slot)
                        return

            workers = [
                threading.Thread(target=hammer, args=(slot,))
                for slot in range(threads)
            ]
            for t in workers:
                t.start()
            for t in workers:
                t.join()
            assert not failures
        finally:
            ring.release()


# --------------------------------------------------------------------------- #
# scenario-matrix differential suite (slow tier)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.parametrize("scenario_name", SCENARIO_MATRIX)
class TestScenarioMatrixEquivalence:
    """The sharded path must reproduce whole campaigns bit-identically.

    For each scenario: same seeds, same detections, same per-seed query
    counts and ``validate_budget`` invariants across the sequential,
    population and sharded engines — and identical reliability estimates
    from the batched and sharded assessor backends.
    """

    @pytest.fixture()
    def scenario(self, scenario_name):
        return _scenario(scenario_name)

    def test_campaigns_bit_identical_across_engines(self, scenario):
        seeds = scenario.operational_data.x[:16]
        labels = scenario.operational_data.y[:16]
        campaigns = {}
        for mode in ("sequential", "population", "sharded"):
            fuzzer = _fuzzer(
                scenario.naturalness, scenario.operational_data.x, mode
            )
            campaigns[mode] = fuzzer.fuzz(scenario.model, seeds, labels, rng=2021)
        _assert_campaigns_equivalent(
            campaigns["sequential"], campaigns["population"], exact=False
        )
        _assert_campaigns_equivalent(campaigns["population"], campaigns["sharded"])

    def test_budgeted_campaigns_bit_identical_and_within_budget(self, scenario):
        seeds = scenario.operational_data.x[:20]
        labels = scenario.operational_data.y[:20]
        budget = 240
        campaigns = {}
        for mode in ("population", "sharded"):
            fuzzer = _fuzzer(
                scenario.naturalness, scenario.operational_data.x, mode
            )
            campaigns[mode] = fuzzer.fuzz(
                scenario.model, seeds, labels, budget=budget, rng=7
            )
            campaigns[mode].validate_budget(budget)
            assert campaigns[mode].total_queries <= budget
        _assert_campaigns_equivalent(campaigns["population"], campaigns["sharded"])

    def test_reliability_estimates_identical_across_backends(self, scenario):
        estimates = {}
        for backend in ("batched", "sharded"):
            assessor = ReliabilityAssessor(
                partition=scenario.partition,
                profile=scenario.profile,
                policy=ExecutionPolicy(backend=backend, num_workers=2),
                rng=99,
            )
            estimates[backend] = assessor.assess(
                scenario.model, scenario.operational_data, rng=99
            )
        batched, sharded = estimates["batched"], estimates["sharded"]
        assert batched.pmi == sharded.pmi
        assert batched.pmi_upper == sharded.pmi_upper
        assert batched.pmi_lower == sharded.pmi_lower
        assert batched.cells_evaluated == sharded.cells_evaluated
        assert batched.queries == sharded.queries

    def test_sharded_engine_bitwise_on_scenario_inputs(self, scenario):
        x = scenario.operational_data.x[:48]
        sharded_policy = ExecutionPolicy(backend="sharded", num_workers=2, batch_size=16)
        with scenario.query_engine(policy=sharded_policy) as sharded:
            with scenario.query_engine(policy=ExecutionPolicy(batch_size=16)) as batched:
                np.testing.assert_array_equal(
                    sharded.predict_proba(x), batched.predict_proba(x)
                )
                np.testing.assert_array_equal(
                    sharded.score_naturalness(x), batched.score_naturalness(x)
                )
                assert sharded.stats.as_dict() == batched.stats.as_dict()


@pytest.mark.slow
@pytest.mark.parametrize("transport", TRANSPORT_MATRIX)
@pytest.mark.parametrize("scenario_name", SCENARIO_MATRIX)
class TestScenarioTransportMatrix:
    """The scenario matrix must pass unchanged under every shard transport.

    The transport knob only changes how row blocks reach the workers — the
    pickle wire, shared-memory rings or an in-process thread pool — so for
    every scenario and every transport, campaigns, reliability estimates and
    raw engine calls must stay bit-identical to the population baseline.
    """

    @pytest.fixture()
    def scenario(self, scenario_name):
        return _scenario(scenario_name)

    def test_campaigns_bit_identical(self, scenario, transport):
        seeds = scenario.operational_data.x[:16]
        labels = scenario.operational_data.y[:16]
        population = _fuzzer(
            scenario.naturalness, scenario.operational_data.x, "population"
        ).fuzz(scenario.model, seeds, labels, rng=2021)
        sharded = _fuzzer(
            scenario.naturalness,
            scenario.operational_data.x,
            "sharded",
            transport=transport,
        ).fuzz(scenario.model, seeds, labels, rng=2021)
        _assert_campaigns_equivalent(population, sharded)

    def test_reliability_estimates_identical(self, scenario, transport):
        estimates = {}
        for policy in (
            ExecutionPolicy(backend="batched"),
            ExecutionPolicy(backend="sharded", num_workers=2, transport=transport),
        ):
            assessor = ReliabilityAssessor(
                partition=scenario.partition,
                profile=scenario.profile,
                policy=policy,
                rng=99,
            )
            estimates[policy.backend] = assessor.assess(
                scenario.model, scenario.operational_data, rng=99
            )
        batched, sharded = estimates["batched"], estimates["sharded"]
        assert batched.pmi == sharded.pmi
        assert batched.pmi_upper == sharded.pmi_upper
        assert batched.pmi_lower == sharded.pmi_lower
        assert batched.cells_evaluated == sharded.cells_evaluated
        assert batched.queries == sharded.queries

    def test_engine_bitwise_on_scenario_inputs(self, scenario, transport):
        x = scenario.operational_data.x[:48]
        policy = ExecutionPolicy(
            backend="sharded", num_workers=2, batch_size=16, transport=transport
        )
        with scenario.query_engine(policy=policy) as sharded:
            with scenario.query_engine(policy=ExecutionPolicy(batch_size=16)) as batched:
                np.testing.assert_array_equal(
                    sharded.predict_proba(x), batched.predict_proba(x)
                )
                np.testing.assert_array_equal(
                    sharded.score_naturalness(x), batched.score_naturalness(x)
                )
                assert sharded.stats.as_dict() == batched.stats.as_dict()
