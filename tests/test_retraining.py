"""Tests for OP-aware retraining (RQ4)."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.exceptions import ConfigurationError, DataError
from repro.nn import accuracy
from repro.retraining import (
    OperationalRetrainer,
    RetrainingConfig,
    StandardAdversarialTrainer,
)
from repro.types import AdversarialExample


@pytest.fixture()
def detected_aes(trained_cluster_model, operational_cluster_data, cluster_naturalness):
    """A handful of real operational AEs found by PGD on low-margin seeds."""
    from repro.attacks import PGD
    from repro.nn.metrics import prediction_margin

    data = operational_cluster_data
    probs = trained_cluster_model.predict_proba(data.x)
    margins = prediction_margin(probs, data.y)
    correct = trained_cluster_model.predict(data.x) == data.y
    order = [i for i in np.argsort(margins) if correct[i]][:30]
    seeds, labels = data.x[order], data.y[order]
    result = PGD(epsilon=0.1, num_steps=10).run(trained_cluster_model, seeds, labels, rng=0)
    aes = []
    for i in np.flatnonzero(result.success):
        aes.append(
            AdversarialExample(
                seed=seeds[i],
                perturbed=result.adversarial_x[i],
                true_label=int(labels[i]),
                predicted_label=int(result.predicted_labels[i]),
                distance=float(np.max(np.abs(result.adversarial_x[i] - seeds[i]))),
                naturalness=float(cluster_naturalness.score(result.adversarial_x[i][None, :])[0]),
                op_density=1.0,
                method="pgd",
            )
        )
    return aes


class TestRetrainingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"ae_replication": 0},
            {"ae_weight_boost": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetrainingConfig(**kwargs)


class TestOperationalRetrainer:
    def test_fixes_most_detected_aes(
        self, trained_cluster_model, clusters_split, cluster_profile, detected_aes
    ):
        if len(detected_aes) < 3:
            pytest.skip("not enough AEs found to make the test meaningful")
        train, test = clusters_split
        retrainer = OperationalRetrainer(
            config=RetrainingConfig(epochs=8), profile=cluster_profile, rng=0
        )
        retrained = retrainer.retrain(trained_cluster_model, train, detected_aes)
        ae_inputs = np.stack([ae.perturbed for ae in detected_aes])
        ae_labels = np.array([ae.true_label for ae in detected_aes])
        before = accuracy(ae_labels, trained_cluster_model.predict(ae_inputs))
        after = accuracy(ae_labels, retrained.predict(ae_inputs))
        assert after > before

    def test_does_not_destroy_clean_accuracy(
        self, trained_cluster_model, clusters_split, cluster_profile, detected_aes
    ):
        train, test = clusters_split
        retrainer = OperationalRetrainer(
            config=RetrainingConfig(epochs=5), profile=cluster_profile, rng=0
        )
        retrained = retrainer.retrain(trained_cluster_model, train, detected_aes)
        before = accuracy(test.y, trained_cluster_model.predict(test.x))
        after = accuracy(test.y, retrained.predict(test.x))
        assert after >= before - 0.08

    def test_original_model_untouched_by_default(
        self, trained_cluster_model, clusters_split, detected_aes
    ):
        train, _ = clusters_split
        weights_before = trained_cluster_model.get_weights()
        OperationalRetrainer(config=RetrainingConfig(epochs=2), rng=0).retrain(
            trained_cluster_model, train, detected_aes
        )
        weights_after = trained_cluster_model.get_weights()
        for before, after in zip(weights_before, weights_after):
            for key in before:
                np.testing.assert_allclose(before[key], after[key])

    def test_in_place_modifies_model(self, trained_cluster_model, clusters_split, detected_aes):
        import copy

        train, _ = clusters_split
        model = copy.deepcopy(trained_cluster_model)
        OperationalRetrainer(config=RetrainingConfig(epochs=2), rng=0).retrain(
            model, train, detected_aes, in_place=True
        )
        assert not np.allclose(
            model.get_weights()[0]["weight"], trained_cluster_model.get_weights()[0]["weight"]
        )

    def test_works_without_aes(self, trained_cluster_model, clusters_split):
        train, _ = clusters_split
        retrained = OperationalRetrainer(config=RetrainingConfig(epochs=1), rng=0).retrain(
            trained_cluster_model, train, []
        )
        assert retrained is not trained_cluster_model

    def test_from_scratch_reinitialises(self, trained_cluster_model, clusters_split, detected_aes):
        train, _ = clusters_split
        config = RetrainingConfig(epochs=1, from_scratch=True)
        retrained = OperationalRetrainer(config=config, rng=0).retrain(
            trained_cluster_model, train, detected_aes
        )
        assert not np.allclose(
            retrained.get_weights()[0]["weight"],
            trained_cluster_model.get_weights()[0]["weight"],
        )

    def test_empty_training_set_rejected(self, trained_cluster_model, clusters_split):
        train, _ = clusters_split
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), train.num_classes)
        with pytest.raises(DataError):
            OperationalRetrainer(rng=0).retrain(trained_cluster_model, empty, [])


class TestStandardAdversarialTrainer:
    def test_improves_pgd_robustness(self, trained_cluster_model, clusters_split):
        from repro.attacks import PGD

        train, test = clusters_split
        trainer = StandardAdversarialTrainer(
            epsilon=0.08, pgd_steps=3, epochs=3, learning_rate=3e-4, rng=0
        )
        hardened = trainer.retrain(trained_cluster_model, train)
        attack = PGD(epsilon=0.08, num_steps=10)
        correct = trained_cluster_model.predict(test.x) == test.y
        seeds, labels = test.x[correct][:80], test.y[correct][:80]
        before = attack.run(trained_cluster_model, seeds, labels, rng=1).success_rate
        after = attack.run(hardened, seeds, labels, rng=1).success_rate
        assert after <= before + 0.05

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            StandardAdversarialTrainer(epochs=0)
        with pytest.raises(ConfigurationError):
            StandardAdversarialTrainer(learning_rate=0.0)

    def test_empty_training_set_rejected(self, trained_cluster_model):
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 4)
        with pytest.raises(DataError):
            StandardAdversarialTrainer(rng=0).retrain(trained_cluster_model, empty)
