"""Tests for the attack library."""

import numpy as np
import pytest

from repro.attacks import (
    FGSM,
    PGD,
    BoundaryNudge,
    GaussianNoise,
    RandomFuzz,
    attack_from_name,
    available_attacks,
)
from repro.exceptions import AttackError, ShapeError
from repro.nn import accuracy


@pytest.fixture(scope="module")
def correctly_classified(trained_cluster_model, clusters_split):
    """A batch of test points the model classifies correctly."""
    _, test = clusters_split
    predictions = trained_cluster_model.predict(test.x)
    mask = predictions == test.y
    return test.x[mask][:60], test.y[mask][:60]


ATTACKS = [
    ("fgsm", lambda: FGSM(epsilon=0.15)),
    ("pgd", lambda: PGD(epsilon=0.15, num_steps=8)),
    ("random-fuzz", lambda: RandomFuzz(epsilon=0.15, num_trials=15)),
    ("gaussian-noise", lambda: GaussianNoise(epsilon=0.15, num_trials=15)),
    ("boundary-nudge", lambda: BoundaryNudge(epsilon=0.15, num_directions=4)),
]


@pytest.mark.parametrize("name,factory", ATTACKS, ids=[a[0] for a in ATTACKS])
class TestAllAttacks:
    def test_perturbations_respect_epsilon_and_domain(
        self, name, factory, trained_cluster_model, correctly_classified
    ):
        x, y = correctly_classified
        result = factory().run(trained_cluster_model, x, y, rng=0)
        assert result.adversarial_x.shape == x.shape
        assert np.all(result.adversarial_x >= 0) and np.all(result.adversarial_x <= 1)
        assert np.max(np.abs(result.adversarial_x - x)) <= 0.15 + 1e-9

    def test_success_flags_are_accurate(
        self, name, factory, trained_cluster_model, correctly_classified
    ):
        x, y = correctly_classified
        result = factory().run(trained_cluster_model, x, y, rng=0)
        predictions = trained_cluster_model.predict(result.adversarial_x)
        np.testing.assert_array_equal(predictions != y, result.success)
        np.testing.assert_array_equal(predictions, result.predicted_labels)

    def test_query_accounting(self, name, factory, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        result = factory().run(trained_cluster_model, x, y, rng=0)
        assert result.queries == result.queries_per_seed.sum()
        assert np.all(result.queries_per_seed >= 1)

    def test_empty_batch_rejected(self, name, factory, trained_cluster_model):
        with pytest.raises(AttackError):
            factory().run(trained_cluster_model, np.zeros((0, 2)), np.zeros(0, dtype=int))


class TestGradientAttacks:
    def test_pgd_roughly_as_strong_as_fgsm(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        fgsm = FGSM(epsilon=0.12).run(trained_cluster_model, x, y, rng=0)
        pgd = PGD(epsilon=0.12, num_steps=10).run(trained_cluster_model, x, y, rng=0)
        # PGD's random start makes single-run comparisons noisy; allow slack
        assert pgd.success_rate >= fgsm.success_rate - 0.1

    def test_pgd_reduces_accuracy(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        result = PGD(epsilon=0.15, num_steps=10).run(trained_cluster_model, x, y, rng=0)
        adversarial_accuracy = accuracy(y, trained_cluster_model.predict(result.adversarial_x))
        assert adversarial_accuracy < 1.0

    def test_larger_epsilon_finds_more(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        small = PGD(epsilon=0.03, num_steps=10).run(trained_cluster_model, x, y, rng=0)
        large = PGD(epsilon=0.25, num_steps=10).run(trained_cluster_model, x, y, rng=0)
        assert large.success_rate >= small.success_rate

    def test_early_stop_uses_fewer_queries(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        eager = PGD(epsilon=0.2, num_steps=10, early_stop=True).run(
            trained_cluster_model, x, y, rng=0
        )
        exhaustive = PGD(epsilon=0.2, num_steps=10, early_stop=False).run(
            trained_cluster_model, x, y, rng=0
        )
        assert eager.queries <= exhaustive.queries

    def test_pgd_invalid_config(self):
        with pytest.raises(AttackError):
            PGD(num_steps=0)
        with pytest.raises(AttackError):
            PGD(step_size=0.0)
        with pytest.raises(AttackError):
            FGSM(epsilon=0.0)

    def test_fgsm_queries_two_per_seed(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        result = FGSM(epsilon=0.1).run(trained_cluster_model, x, y, rng=0)
        assert result.queries == 2 * len(x)


class TestBlackBoxAttacks:
    def test_random_fuzz_invalid_trials(self):
        with pytest.raises(AttackError):
            RandomFuzz(num_trials=0)

    def test_gaussian_noise_invalid_std(self):
        with pytest.raises(AttackError):
            GaussianNoise(std_fraction=0.0)

    def test_boundary_nudge_shrinks_distance(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        result = BoundaryNudge(epsilon=0.2, num_directions=6, num_bisections=5).run(
            trained_cluster_model, x, y, rng=0
        )
        if np.any(result.success):
            distances = result.distances(x)[result.success]
            assert np.all(distances <= 0.2 + 1e-9)

    def test_boundary_nudge_invalid(self):
        with pytest.raises(AttackError):
            BoundaryNudge(num_directions=0)


class TestAttackResult:
    def test_distances_shape_check(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        result = FGSM(epsilon=0.1).run(trained_cluster_model, x, y, rng=0)
        with pytest.raises(ShapeError):
            result.distances(x[:3])

    def test_distances_l2(self, trained_cluster_model, correctly_classified):
        x, y = correctly_classified
        result = FGSM(epsilon=0.1).run(trained_cluster_model, x, y, rng=0)
        l2 = result.distances(x, order=2)
        linf = result.distances(x, order=np.inf)
        assert np.all(l2 >= linf - 1e-12)

    def test_success_rate_empty(self):
        from repro.attacks import AttackResult

        result = AttackResult(
            adversarial_x=np.zeros((0, 2)),
            success=np.zeros(0, dtype=bool),
            predicted_labels=np.zeros(0, dtype=int),
            queries=0,
            queries_per_seed=np.zeros(0, dtype=int),
        )
        assert result.success_rate == 0.0


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_attacks():
            attack = attack_from_name(name)
            assert attack.epsilon > 0

    def test_kwargs_forwarded(self):
        attack = attack_from_name("pgd", epsilon=0.3, num_steps=3)
        assert attack.epsilon == 0.3
        assert attack.num_steps == 3

    def test_unknown_name(self):
        with pytest.raises(AttackError):
            attack_from_name("carlini-wagner")
