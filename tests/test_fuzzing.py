"""Tests for the naturalness-guided operational fuzzer (RQ3)."""

import numpy as np
import pytest

from repro.exceptions import FuzzingError
from repro.fuzzing import (
    FuzzerConfig,
    GaussianMutation,
    GradientMutation,
    InterpolationMutation,
    MutationContext,
    OperationalFuzzer,
    SparseMutation,
    default_operators,
)


@pytest.fixture()
def vulnerable_seeds(trained_cluster_model, operational_cluster_data):
    """Operational points closest to the decision boundary (low margin)."""
    from repro.nn.metrics import prediction_margin

    data = operational_cluster_data
    probs = trained_cluster_model.predict_proba(data.x)
    margins = prediction_margin(probs, data.y)
    correct = trained_cluster_model.predict(data.x) == data.y
    order = np.argsort(margins)
    picked = [i for i in order if correct[i]][:10]
    return data.x[picked], data.y[picked]


@pytest.fixture()
def robust_seeds(cluster_profile):
    """Cluster centres: maximally robust points."""
    means = cluster_profile.means
    labels = cluster_profile.component_labels
    return means, labels


def _context(model, seed, label, rng_seed=0, neighbours=None):
    return MutationContext(
        seed=seed,
        current=seed.copy(),
        label=int(label),
        epsilon=0.1,
        model=model,
        natural_neighbours=neighbours,
        rng=np.random.default_rng(rng_seed),
    )


class TestMutations:
    @pytest.mark.parametrize(
        "operator",
        [GaussianMutation(), SparseMutation(), InterpolationMutation(), GradientMutation()],
        ids=["gaussian", "sparse", "interpolation", "gradient"],
    )
    def test_proposals_stay_in_cell_and_domain(
        self, operator, trained_cluster_model, operational_cluster_data
    ):
        seed = operational_cluster_data.x[0]
        label = operational_cluster_data.y[0]
        neighbours = operational_cluster_data.x[1:6]
        context = _context(trained_cluster_model, seed, label, neighbours=neighbours)
        for trial in range(10):
            context.rng = np.random.default_rng(trial)
            candidate = operator.propose(context)
            assert candidate.shape == seed.shape
            assert np.max(np.abs(candidate - seed)) <= 0.1 + 1e-12
            assert np.all(candidate >= 0) and np.all(candidate <= 1)

    def test_gradient_mutation_increases_loss(self, trained_cluster_model, operational_cluster_data):
        seed = operational_cluster_data.x[0]
        label = int(operational_cluster_data.y[0])
        context = _context(trained_cluster_model, seed, label)
        candidate = GradientMutation(step_fraction=0.5).propose(context)
        before = trained_cluster_model.per_sample_loss(seed[None, :], [label])[0]
        after = trained_cluster_model.per_sample_loss(candidate[None, :], [label])[0]
        assert after >= before - 1e-9

    def test_interpolation_falls_back_without_neighbours(
        self, trained_cluster_model, operational_cluster_data
    ):
        seed = operational_cluster_data.x[0]
        context = _context(trained_cluster_model, seed, 0, neighbours=None)
        candidate = InterpolationMutation().propose(context)
        assert candidate.shape == seed.shape

    def test_invalid_operator_configs(self):
        with pytest.raises(FuzzingError):
            GaussianMutation(scale_fraction=0.0)
        with pytest.raises(FuzzingError):
            SparseMutation(fraction=1.5)
        with pytest.raises(FuzzingError):
            InterpolationMutation(max_step=0.0)
        with pytest.raises(FuzzingError):
            GradientMutation(step_fraction=2.0)

    def test_default_operator_mix(self):
        with_gradient = default_operators(use_gradient=True)
        without_gradient = default_operators(use_gradient=False)
        assert any(op.queries_model for op in with_gradient)
        assert not any(op.queries_model for op in without_gradient)


class TestFuzzerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"queries_per_seed": 0},
            {"naturalness_threshold": -0.1},
            {"loss_weight": 0.0, "naturalness_weight": 0.0},
            {"gradient_probability": 1.5},
            {"min_energy": 0.0},
            {"min_energy": 2.0, "max_energy": 1.0},
            {"stall_limit": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(FuzzingError):
            FuzzerConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = FuzzerConfig()
        assert config.epsilon > 0


class TestOperationalFuzzer:
    def test_finds_aes_around_vulnerable_seeds(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data, vulnerable_seeds
    ):
        seeds, labels = vulnerable_seeds
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(epsilon=0.12, queries_per_seed=30, naturalness_threshold=0.2),
            natural_pool=operational_cluster_data.x,
        )
        result = fuzzer.fuzz(trained_cluster_model, seeds, labels, rng=0)
        assert result.detection_rate > 0.2
        for ae in result.adversarial_examples:
            # the report must be internally consistent
            assert ae.predicted_label != ae.true_label
            assert ae.distance <= 0.12 + 1e-9
            prediction = trained_cluster_model.predict(ae.perturbed[None, :])[0]
            assert prediction == ae.predicted_label

    def test_robust_seeds_rarely_yield_aes(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data, robust_seeds
    ):
        seeds, labels = robust_seeds
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(epsilon=0.05, queries_per_seed=20),
            natural_pool=operational_cluster_data.x,
        )
        result = fuzzer.fuzz(trained_cluster_model, seeds, labels, rng=0)
        assert result.detection_rate <= 0.5

    def test_respects_total_budget(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(queries_per_seed=20),
            natural_pool=data.x,
        )
        budget = 100
        result = fuzzer.fuzz(trained_cluster_model, data.x[:50], data.y[:50], budget=budget, rng=0)
        assert result.total_queries <= budget + 20  # at most one seed's overshoot

    def test_naturalness_constraint_raises_ae_naturalness(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data, vulnerable_seeds
    ):
        seeds, labels = vulnerable_seeds
        constrained = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(epsilon=0.15, queries_per_seed=40, naturalness_threshold=0.8),
            natural_pool=operational_cluster_data.x,
        ).fuzz(trained_cluster_model, seeds, labels, rng=0)
        unconstrained = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(epsilon=0.15, queries_per_seed=40, naturalness_threshold=0.0),
            natural_pool=operational_cluster_data.x,
        ).fuzz(trained_cluster_model, seeds, labels, rng=0)
        if constrained.adversarial_examples and unconstrained.adversarial_examples:
            constrained_nat = np.mean([ae.naturalness for ae in constrained.adversarial_examples])
            unconstrained_nat = np.mean([ae.naturalness for ae in unconstrained.adversarial_examples])
            assert constrained_nat >= unconstrained_nat - 0.1

    def test_energy_scales_with_op_density(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data, robust_seeds
    ):
        seeds, labels = robust_seeds
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(queries_per_seed=20, stall_limit=0),
            natural_pool=operational_cluster_data.x,
        )
        densities = np.array([4.0, 1.0, 1.0, 0.25])
        result = fuzzer.fuzz(
            trained_cluster_model, seeds, labels, op_densities=densities, rng=0
        )
        queries = [r.queries for r in result.per_seed]
        # the densest seed gets the most search effort, the rarest the least
        assert queries[0] >= queries[3]

    def test_already_misclassified_seed_counts_immediately(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        predictions = trained_cluster_model.predict(data.x)
        wrong = np.flatnonzero(predictions != data.y)
        if len(wrong) == 0:
            pytest.skip("model has no natural failures on the operational data")
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(queries_per_seed=10),
            natural_pool=data.x,
        )
        result = fuzzer.fuzz(trained_cluster_model, data.x[wrong[:1]], data.y[wrong[:1]], rng=0)
        assert result.detection_rate == 1.0
        assert result.per_seed[0].adversarial_example.distance == 0.0
        assert result.per_seed[0].queries == 1

    def test_op_density_annotation_propagates(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data, vulnerable_seeds
    ):
        seeds, labels = vulnerable_seeds
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(epsilon=0.12, queries_per_seed=30, naturalness_threshold=0.2),
            natural_pool=operational_cluster_data.x,
        )
        densities = np.linspace(0.5, 2.0, len(seeds))
        result = fuzzer.fuzz(trained_cluster_model, seeds, labels, op_densities=densities, rng=0)
        for seed_result in result.per_seed:
            ae = seed_result.adversarial_example
            if ae is not None:
                assert ae.op_density == pytest.approx(densities[seed_result.seed_index])

    def test_input_validation(self, trained_cluster_model, cluster_naturalness):
        fuzzer = OperationalFuzzer(naturalness=cluster_naturalness)
        with pytest.raises(FuzzingError):
            fuzzer.fuzz(trained_cluster_model, np.zeros((0, 2)), np.zeros(0, dtype=int))
        with pytest.raises(FuzzingError):
            fuzzer.fuzz(trained_cluster_model, np.zeros((2, 2)), np.zeros(3, dtype=int))
        with pytest.raises(FuzzingError):
            fuzzer.fuzz(
                trained_cluster_model,
                np.zeros((2, 2)),
                np.zeros(2, dtype=int),
                op_densities=np.ones(3),
            )

    def test_requires_at_least_one_operator(self, cluster_naturalness):
        with pytest.raises(FuzzingError):
            OperationalFuzzer(naturalness=cluster_naturalness, operators=[])

    @pytest.mark.parametrize("execution", ["population", "sequential"])
    @pytest.mark.parametrize("neighbour_count", [0, 1, 5])
    def test_neighbour_count_edge_cases(
        self,
        execution,
        neighbour_count,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
    ):
        # k=1 squeezes the cKDTree result axis; both paths must survive it
        data = operational_cluster_data
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(
                queries_per_seed=8, neighbour_count=neighbour_count, execution=execution
            ),
            natural_pool=data.x,
        )
        result = fuzzer.fuzz(trained_cluster_model, data.x[:4], data.y[:4], rng=0)
        assert len(result.per_seed) == 4

    def test_single_row_natural_pool(
        self, trained_cluster_model, cluster_naturalness, operational_cluster_data
    ):
        data = operational_cluster_data
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(queries_per_seed=8),
            natural_pool=data.x[:1],
        )
        result = fuzzer.fuzz(trained_cluster_model, data.x[:3], data.y[:3], rng=0)
        assert len(result.per_seed) == 3
