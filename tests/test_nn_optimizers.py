"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSProp, optimizer_from_name


def _train_toy_problem(optimizer, steps=200, seed=0):
    """Fit a linearly separable 2-class problem; return final loss."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(128, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    network = Sequential([Dense(2, 2, rng=1)], loss=SoftmaxCrossEntropy())
    for _ in range(steps):
        network.train_step_gradients(x, y)
        optimizer.step(network.layers)
    return network.compute_loss(x, y)


class TestSGD:
    def test_reduces_loss(self):
        assert _train_toy_problem(SGD(learning_rate=0.5)) < 0.2

    def test_momentum_reduces_loss(self):
        assert _train_toy_problem(SGD(learning_rate=0.2, momentum=0.9)) < 0.2

    def test_nesterov_reduces_loss(self):
        assert _train_toy_problem(SGD(learning_rate=0.2, momentum=0.9, nesterov=True)) < 0.2

    def test_nesterov_without_momentum_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD(momentum=0.0, nesterov=True)

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)

    def test_weight_decay_shrinks_weights(self):
        layer = Dense(3, 3, rng=0)
        layer.grad_weight = np.zeros_like(layer.weight)
        layer.grad_bias = np.zeros_like(layer.bias)
        before = np.linalg.norm(layer.weight)
        optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
        optimizer.step([layer])
        assert np.linalg.norm(layer.weight) < before

    def test_weight_decay_not_applied_to_bias(self):
        layer = Dense(3, 3, rng=0)
        layer.bias[...] = 1.0
        layer.grad_weight = np.zeros_like(layer.weight)
        layer.grad_bias = np.zeros_like(layer.bias)
        SGD(learning_rate=0.1, weight_decay=0.5).step([layer])
        np.testing.assert_allclose(layer.bias, np.ones(3))


class TestAdam:
    def test_reduces_loss(self):
        assert _train_toy_problem(Adam(learning_rate=0.05)) < 0.2

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(beta2=-0.1)

    def test_invalid_eps(self):
        with pytest.raises(ConfigurationError):
            Adam(eps=0.0)

    def test_reset_clears_state(self):
        optimizer = Adam()
        layer = Dense(2, 2, rng=0)
        layer.grad_weight = np.ones_like(layer.weight)
        layer.grad_bias = np.ones_like(layer.bias)
        optimizer.step([layer])
        assert optimizer._state
        optimizer.reset()
        assert not optimizer._state
        assert optimizer._step_count == 0


class TestRMSProp:
    def test_reduces_loss(self):
        assert _train_toy_problem(RMSProp(learning_rate=0.02)) < 0.3

    def test_invalid_rho(self):
        with pytest.raises(ConfigurationError):
            RMSProp(rho=1.0)


class TestCommon:
    def test_learning_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)

    def test_weight_decay_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            Adam(weight_decay=-0.1)

    def test_optimizer_base_is_abstract(self):
        layer = Dense(2, 2, rng=0)
        layer.grad_weight = np.zeros_like(layer.weight)
        layer.grad_bias = np.zeros_like(layer.bias)
        with pytest.raises(NotImplementedError):
            Optimizer(learning_rate=0.1).step([layer])

    def test_registry(self):
        assert isinstance(optimizer_from_name("sgd"), SGD)
        assert isinstance(optimizer_from_name("adam", learning_rate=0.1), Adam)
        assert isinstance(optimizer_from_name("rmsprop"), RMSProp)
        with pytest.raises(ConfigurationError):
            optimizer_from_name("adagrad")

    def test_non_trainable_layers_skipped(self):
        from repro.nn.layers import ReLU

        optimizer = SGD(learning_rate=0.1)
        optimizer.step([ReLU()])  # must not raise
