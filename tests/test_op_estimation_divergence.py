"""Tests for OP estimation (RQ1) and divergence measures."""

import numpy as np
import pytest

from repro.data import GridPartition, make_gaussian_clusters
from repro.exceptions import DataError, ProfileError, ShapeError
from repro.op import (
    FrequencyProfileEstimator,
    GMMProfileEstimator,
    KDEProfileEstimator,
    empirical_distribution,
    ground_truth_profile_for_clusters,
    hellinger_distance,
    js_divergence,
    kl_divergence,
    profile_divergence,
    total_variation,
)


@pytest.fixture(scope="module")
def reference_data():
    return make_gaussian_clusters(600, num_classes=4, cluster_std=0.06, rng=3)


@pytest.fixture(scope="module")
def operational_stream(reference_data):
    """Operational inputs drawn with a skewed class prior."""
    rng = np.random.default_rng(4)
    priors = np.array([0.6, 0.2, 0.1, 0.1])
    labels = rng.choice(4, size=500, p=priors)
    rows = []
    for label in labels:
        members = reference_data.indices_of_class(int(label))
        rows.append(rng.choice(members))
    return reference_data.x[rows], reference_data.y[rows]


class TestFrequencyEstimator:
    def test_recovers_skewed_priors(self, reference_data, operational_stream):
        x, labels = operational_stream
        estimator = FrequencyProfileEstimator(reference=reference_data, smoothing=0.0)
        profile = estimator.fit(x, labels)
        prior = profile.class_prior(4)
        assert prior[0] == pytest.approx(0.6, abs=0.06)
        assert prior[0] > prior[1] > prior[3] - 0.05

    def test_pseudo_labels_via_model(self, reference_data, operational_stream, trained_cluster_model):
        x, _ = operational_stream
        estimator = FrequencyProfileEstimator(reference=reference_data, model=trained_cluster_model)
        profile = estimator.fit(x)
        assert profile.class_prior(4)[0] > 0.4

    def test_requires_labels_or_model(self, reference_data):
        estimator = FrequencyProfileEstimator(reference=reference_data)
        with pytest.raises(ProfileError):
            estimator.fit(np.zeros((5, 2)))

    def test_smoothing_keeps_unseen_classes_positive(self, reference_data):
        estimator = FrequencyProfileEstimator(reference=reference_data, smoothing=1.0)
        profile = estimator.fit(reference_data.x[:10], np.zeros(10, dtype=int))
        assert np.all(profile.class_prior(4) > 0)

    def test_empty_input_rejected(self, reference_data):
        estimator = FrequencyProfileEstimator(reference=reference_data)
        with pytest.raises(DataError):
            estimator.fit(np.zeros((0, 2)), np.zeros(0, dtype=int))


class TestKDEEstimator:
    def test_density_concentrates_on_data(self, operational_stream):
        x, labels = operational_stream
        profile = KDEProfileEstimator(rng=0).fit(x, labels)
        on_data = profile.density(x[:100]).mean()
        off_data = profile.density(np.random.default_rng(0).random((100, 2))).mean()
        assert on_data > off_data

    def test_subsampling_respects_max_samples(self, operational_stream):
        x, _ = operational_stream
        profile = KDEProfileEstimator(max_samples=50, rng=0).fit(x)
        assert len(profile.samples) == 50

    def test_empty_input_rejected(self):
        with pytest.raises(DataError):
            KDEProfileEstimator().fit(np.zeros((0, 2)))

    def test_misaligned_labels_rejected(self):
        with pytest.raises(DataError):
            KDEProfileEstimator().fit(np.zeros((5, 2)), np.zeros(3, dtype=int))


class TestGMMEstimator:
    def test_recovers_cluster_means(self):
        truth = ground_truth_profile_for_clusters(3, 2, 0.04)
        data = truth.sample(900, rng=0)
        estimated = GMMProfileEstimator(num_components=3, rng=0).fit(data)
        # every true mean should be close to some estimated mean
        for true_mean in truth.means:
            distances = np.linalg.norm(estimated.means - true_mean, axis=1)
            assert distances.min() < 0.08

    def test_attaches_majority_labels(self, operational_stream):
        x, labels = operational_stream
        profile = GMMProfileEstimator(num_components=4, rng=0).fit(x, labels)
        assert profile.component_labels is not None
        assert set(np.unique(profile.component_labels)).issubset({0, 1, 2, 3})

    def test_log_likelihood_better_than_random_profile(self, operational_stream):
        x, _ = operational_stream
        fitted = GMMProfileEstimator(num_components=4, rng=0).fit(x)
        random_profile = ground_truth_profile_for_clusters(4, 2, 0.5)
        assert fitted.log_density(x).mean() > random_profile.log_density(x).mean()

    def test_needs_enough_samples(self):
        with pytest.raises(DataError):
            GMMProfileEstimator(num_components=10).fit(np.zeros((3, 2)))

    def test_invalid_config(self):
        with pytest.raises(ProfileError):
            GMMProfileEstimator(num_components=0).fit(np.random.default_rng(0).random((10, 2)))


class TestDivergences:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert total_variation(p, p) == pytest.approx(0.0)
        assert hellinger_distance(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.1, 0.9])
        assert kl_divergence(p, q) > 0
        assert js_divergence(p, q) > 0
        assert total_variation(p, q) == pytest.approx(0.8)
        assert hellinger_distance(p, q) > 0

    def test_js_symmetric_kl_not(self):
        p = np.array([0.7, 0.2, 0.1])
        q = np.array([0.3, 0.3, 0.4])
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_js_bounded_by_log2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert js_divergence(p, q) <= np.log(2) + 1e-9

    def test_unnormalised_inputs_are_normalised(self):
        assert total_variation(np.array([2.0, 2.0]), np.array([1.0, 1.0])) == pytest.approx(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ShapeError):
            kl_divergence(np.array([0.5, 0.5]), np.array([1.0]))
        with pytest.raises(ShapeError):
            js_divergence(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        with pytest.raises(ShapeError):
            total_variation(np.array([-0.5, 1.5]), np.array([0.5, 0.5]))


class TestProfileDivergence:
    def test_estimate_close_to_truth_scores_lower(self, operational_stream):
        x, labels = operational_stream
        partition = GridPartition(2, bins_per_dim=6)
        truth = ground_truth_profile_for_clusters(
            4, 2, 0.06, class_priors=[0.6, 0.2, 0.1, 0.1]
        )
        good = KDEProfileEstimator(rng=0).fit(x, labels)
        bad = ground_truth_profile_for_clusters(4, 2, 0.06)  # uniform priors
        good_div = profile_divergence(good, truth, partition, metric="js", rng=0)
        bad_div = profile_divergence(bad, truth, partition, metric="js", rng=0)
        assert good_div < bad_div

    def test_unknown_metric(self, operational_stream):
        x, _ = operational_stream
        profile = KDEProfileEstimator(rng=0).fit(x)
        with pytest.raises(ShapeError):
            profile_divergence(profile, profile, GridPartition(2, 4), metric="wasserstein")

    def test_empirical_distribution_sums_to_one(self):
        partition = GridPartition(2, bins_per_dim=4)
        dist = empirical_distribution(np.random.default_rng(0).random((200, 2)), partition)
        assert dist.sum() == pytest.approx(1.0)
        assert dist.shape == (16,)

    def test_empirical_distribution_smoothing(self):
        partition = GridPartition(2, bins_per_dim=4)
        dist = empirical_distribution(np.full((5, 2), 0.1), partition, smoothing=1.0)
        assert np.all(dist > 0)
