"""Tests for repro.data.transforms and repro.data.partition."""

import numpy as np
import pytest

from repro.data import (
    AnchorPartition,
    Augmenter,
    Dataset,
    GridPartition,
    brightness_shift,
    build_partition_for_dataset,
    contrast_scale,
    default_augmenter,
    feature_dropout,
    gaussian_noise,
    image_translate,
    make_glyph_digits,
    uniform_noise,
)
from repro.exceptions import ConfigurationError, ShapeError


RNG = np.random.default_rng(0)


@pytest.mark.parametrize(
    "transform",
    [
        gaussian_noise(0.1),
        uniform_noise(0.1),
        feature_dropout(0.2),
        brightness_shift(0.2),
        contrast_scale(0.5, 1.5),
    ],
    ids=["gaussian", "uniform", "dropout", "brightness", "contrast"],
)
class TestTransformsCommon:
    def test_output_in_unit_interval(self, transform):
        x = RNG.random((20, 9))
        out = transform(x, np.random.default_rng(1))
        assert out.shape == x.shape
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_does_not_mutate_input(self, transform):
        x = RNG.random((5, 9))
        original = x.copy()
        transform(x, np.random.default_rng(1))
        np.testing.assert_allclose(x, original)


class TestTransformValidation:
    def test_gaussian_negative_std(self):
        with pytest.raises(ConfigurationError):
            gaussian_noise(-0.1)

    def test_dropout_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            feature_dropout(1.0)

    def test_contrast_bounds(self):
        with pytest.raises(ConfigurationError):
            contrast_scale(1.5, 0.5)

    def test_image_translate_negative(self):
        with pytest.raises(ConfigurationError):
            image_translate((1, 4, 4), max_pixels=-1)


class TestImageTranslate:
    def test_preserves_shape_and_mass_roughly(self):
        transform = image_translate((1, 6, 6), max_pixels=1)
        x = np.zeros((3, 36))
        x[:, 14] = 1.0  # a single bright pixel away from the border
        out = transform(x, np.random.default_rng(0))
        assert out.shape == x.shape
        assert np.all(out.sum(axis=1) == pytest.approx(1.0))

    def test_rejects_wrong_width(self):
        transform = image_translate((1, 6, 6))
        with pytest.raises(ShapeError):
            transform(np.zeros((2, 10)), np.random.default_rng(0))


class TestAugmenter:
    def _dataset(self):
        x = RNG.random((30, 9))
        y = RNG.integers(0, 3, 30)
        return Dataset(x, y, 3)

    def test_augment_size_with_original(self):
        augmenter = Augmenter([gaussian_noise(0.05)], copies=2, rng=0)
        out = augmenter.augment(self._dataset())
        assert len(out) == 90

    def test_augment_size_without_original(self):
        augmenter = Augmenter([gaussian_noise(0.05)], copies=1, include_original=False, rng=0)
        out = augmenter.augment(self._dataset())
        assert len(out) == 30

    def test_labels_preserved(self):
        dataset = self._dataset()
        augmenter = Augmenter([gaussian_noise(0.05)], copies=1, rng=0)
        out = augmenter.augment(dataset)
        np.testing.assert_array_equal(out.y[:30], dataset.y)
        np.testing.assert_array_equal(out.y[30:], dataset.y)

    def test_requires_transforms(self):
        with pytest.raises(ConfigurationError):
            Augmenter([], copies=1)

    def test_invalid_copies(self):
        with pytest.raises(ConfigurationError):
            Augmenter([gaussian_noise(0.1)], copies=0)

    def test_default_augmenter_for_images(self):
        dataset = make_glyph_digits(20, image_size=10, rng=0)
        augmenter = default_augmenter(dataset.image_shape, copies=1, rng=0)
        out = augmenter.augment(dataset)
        assert len(out) == 40
        assert np.all(out.x >= 0) and np.all(out.x <= 1)

    def test_default_augmenter_tabular(self):
        augmenter = default_augmenter(None, copies=1, rng=0)
        out = augmenter.augment(self._dataset())
        assert len(out) == 60


class TestGridPartition:
    def test_num_cells(self):
        assert GridPartition(2, bins_per_dim=10).num_cells == 100

    def test_assign_in_range(self):
        partition = GridPartition(2, bins_per_dim=8)
        x = RNG.random((100, 2))
        cells = partition.assign(x)
        assert cells.min() >= 0 and cells.max() < 64

    def test_center_assigns_to_own_cell(self):
        partition = GridPartition(2, bins_per_dim=7)
        for cell_id in [0, 10, 33, 48]:
            center = partition.cell_center(cell_id)
            assert partition.assign(center[None, :])[0] == cell_id

    def test_sample_in_cell_stays_in_cell(self):
        partition = GridPartition(2, bins_per_dim=5)
        for cell_id in [0, 7, 24]:
            samples = partition.sample_in_cell(cell_id, 20, rng=0)
            assert np.all(partition.assign(samples) == cell_id)

    def test_cell_radius(self):
        assert GridPartition(2, bins_per_dim=10).cell_radius(0) == pytest.approx(0.05)

    def test_extra_dims_ignored(self):
        partition = GridPartition(5, bins_per_dim=4, grid_dims=2)
        assert partition.num_cells == 16
        x = RNG.random((10, 5))
        assert partition.assign(x).max() < 16

    def test_wrong_feature_count_rejected(self):
        with pytest.raises(ShapeError):
            GridPartition(2, bins_per_dim=4).assign(np.zeros((3, 3)))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            GridPartition(0)
        with pytest.raises(ConfigurationError):
            GridPartition(2, bins_per_dim=0)
        with pytest.raises(ConfigurationError):
            GridPartition(10, bins_per_dim=10, grid_dims=10)  # too many cells

    def test_invalid_cell_id(self):
        partition = GridPartition(2, bins_per_dim=4)
        with pytest.raises(ConfigurationError):
            partition.cell_center(16)
        with pytest.raises(ConfigurationError):
            partition.sample_in_cell(0, 0)


class TestAnchorPartition:
    def test_assign_to_nearest_anchor(self):
        anchors = np.array([[0.1, 0.1], [0.9, 0.9]])
        partition = AnchorPartition(anchors, radius=0.2)
        cells = partition.assign(np.array([[0.0, 0.0], [1.0, 1.0]]))
        np.testing.assert_array_equal(cells, [0, 1])

    def test_cell_center_is_anchor(self):
        anchors = RNG.random((5, 3))
        partition = AnchorPartition(anchors, radius=0.1)
        np.testing.assert_allclose(partition.cell_center(3), anchors[3])

    def test_samples_stay_within_radius(self):
        anchors = RNG.random((4, 6)) * 0.5 + 0.25
        partition = AnchorPartition(anchors, radius=0.1)
        samples = partition.sample_in_cell(2, 50, rng=0)
        assert np.max(np.abs(samples - anchors[2])) <= 0.1 + 1e-12

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            AnchorPartition(np.zeros((0, 2)))
        with pytest.raises(ConfigurationError):
            AnchorPartition(np.zeros((2, 2)), radius=0.0)
        partition = AnchorPartition(RNG.random((3, 2)), radius=0.1)
        with pytest.raises(ConfigurationError):
            partition.cell_center(3)
        with pytest.raises(ConfigurationError):
            partition.cell_radius(-1)


class TestBuildPartition:
    def test_auto_low_dim_is_grid(self):
        partition = build_partition_for_dataset(RNG.random((50, 2)))
        assert isinstance(partition, GridPartition)

    def test_auto_high_dim_is_anchor(self):
        partition = build_partition_for_dataset(RNG.random((50, 20)), rng=0)
        assert isinstance(partition, AnchorPartition)

    def test_anchor_subsampling(self):
        partition = build_partition_for_dataset(
            RNG.random((300, 10)), scheme="anchor", max_anchors=100, rng=0
        )
        assert partition.num_cells == 100

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            build_partition_for_dataset(RNG.random((10, 2)), scheme="voronoi")
