"""Tests for repro.nn.metrics."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    cross_entropy,
    per_class_accuracy,
    precision_recall_f1,
    prediction_margin,
    weighted_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 2, 3]), np.array([0, 1, 0, 0])) == 0.5

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([0, 1]), np.array([0]))


class TestWeightedAccuracy:
    def test_uniform_weights_match_plain(self):
        y_true = np.array([0, 1, 1, 0])
        y_pred = np.array([0, 1, 0, 0])
        assert weighted_accuracy(y_true, y_pred, np.ones(4)) == accuracy(y_true, y_pred)

    def test_weights_emphasise_errors(self):
        y_true = np.array([0, 1])
        y_pred = np.array([0, 0])
        assert weighted_accuracy(y_true, y_pred, np.array([1.0, 9.0])) == pytest.approx(0.1)

    def test_zero_weights(self):
        assert weighted_accuracy(np.array([0]), np.array([0]), np.array([0.0])) == 0.0

    def test_negative_weights_rejected(self):
        with pytest.raises(ShapeError):
            weighted_accuracy(np.array([0]), np.array([0]), np.array([-1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            weighted_accuracy(np.array([0, 1]), np.array([0, 1]), np.array([1.0]))


class TestConfusionMatrix:
    def test_basic(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]))
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_explicit_num_classes(self):
        matrix = confusion_matrix(np.array([0]), np.array([0]), num_classes=3)
        assert matrix.shape == (3, 3)
        assert matrix.sum() == 1

    def test_rows_sum_to_class_counts(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 100)
        y_pred = rng.integers(0, 4, 100)
        matrix = confusion_matrix(y_true, y_pred, num_classes=4)
        np.testing.assert_array_equal(matrix.sum(axis=1), np.bincount(y_true, minlength=4))


class TestPerClassAccuracy:
    def test_values(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        np.testing.assert_allclose(per_class_accuracy(y_true, y_pred), [0.5, 1.0])

    def test_unseen_class_is_zero(self):
        values = per_class_accuracy(np.array([0]), np.array([0]), num_classes=3)
        np.testing.assert_allclose(values, [1.0, 0.0, 0.0])


class TestPrecisionRecallF1:
    def test_perfect_scores(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        scores = precision_recall_f1(y, y)
        np.testing.assert_allclose(scores["precision"], np.ones(3))
        np.testing.assert_allclose(scores["recall"], np.ones(3))
        np.testing.assert_allclose(scores["f1"], np.ones(3))

    def test_known_values(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        scores = precision_recall_f1(y_true, y_pred)
        assert scores["precision"][1] == pytest.approx(2 / 3)
        assert scores["recall"][0] == pytest.approx(0.5)


class TestCrossEntropy:
    def test_confident_correct_is_small(self):
        probs = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert cross_entropy(probs, np.array([0, 1])) < 0.02

    def test_matches_manual(self):
        probs = np.array([[0.5, 0.5]])
        assert cross_entropy(probs, np.array([0])) == pytest.approx(np.log(2))

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros(3), np.array([0]))


class TestPredictionMargin:
    def test_positive_for_correct_confident(self):
        probs = np.array([[0.9, 0.1]])
        assert prediction_margin(probs, np.array([0]))[0] == pytest.approx(0.8)

    def test_negative_for_misclassified(self):
        probs = np.array([[0.2, 0.8]])
        assert prediction_margin(probs, np.array([0]))[0] == pytest.approx(-0.6)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(5), size=50)
        margins = prediction_margin(probs, rng.integers(0, 5, 50))
        assert np.all(margins <= 1.0) and np.all(margins >= -1.0)

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            prediction_margin(np.zeros((2, 3)), np.array([0]))
