"""Property-based tests (hypothesis) on core data structures and invariants."""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import clip01, ensure_rng
from repro.data import Dataset, GridPartition
from repro.engine import BatchedQueryEngine, QueryStats, plan_shards
from repro.engine.transport import ShmRing, request_block_bytes
from repro.exceptions import ConfigurationError
from repro.faults import reassign_worker, replan
from repro.fuzzing import FuzzerConfig, OperationalFuzzer
from repro.store import PersistentQueryCache
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, prediction_margin
from repro.op import hellinger_distance, js_divergence, kl_divergence, total_variation
from repro.reliability import BayesianCellModel, BetaPrior


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

distributions = st.integers(min_value=2, max_value=8).flatmap(
    lambda k: st.lists(
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False), min_size=k, max_size=k
    )
).map(lambda values: np.asarray(values) / np.sum(values))


@st.composite
def logits_and_labels(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    k = draw(st.integers(min_value=2, max_value=6))
    logits = draw(
        arrays(np.float64, (n, k), elements=st.floats(-20, 20, allow_nan=False))
    )
    labels = draw(arrays(np.int64, (n,), elements=st.integers(0, k - 1)))
    return logits, labels


# --------------------------------------------------------------------------- #
# config / numerics
# --------------------------------------------------------------------------- #
class TestClipProperties:
    @given(arrays(np.float64, (10,), elements=finite_floats))
    def test_clip01_bounds(self, values):
        clipped = clip01(values)
        assert np.all(clipped >= 0.0) and np.all(clipped <= 1.0)

    @given(arrays(np.float64, (10,), elements=st.floats(0, 1, allow_nan=False)))
    def test_clip01_identity_inside_domain(self, values):
        np.testing.assert_allclose(clip01(values), values)

    @given(st.integers(min_value=0, max_value=2**31 - 2))
    def test_ensure_rng_deterministic(self, seed):
        assert ensure_rng(seed).random() == ensure_rng(seed).random()


# --------------------------------------------------------------------------- #
# losses and metrics
# --------------------------------------------------------------------------- #
class TestLossProperties:
    @given(logits_and_labels())
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_non_negative(self, data):
        logits, labels = data
        loss = SoftmaxCrossEntropy()
        assert loss.forward(logits, labels) >= 0.0

    @given(logits_and_labels())
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, data):
        logits, _ = data
        probs = SoftmaxCrossEntropy.softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(logits)), atol=1e-9)

    @given(logits_and_labels())
    @settings(max_examples=30, deadline=None)
    def test_gradient_rows_sum_to_zero(self, data):
        logits, labels = data
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, labels)
        grad = loss.backward()
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(len(logits)), atol=1e-9)


class TestMetricProperties:
    @given(
        arrays(np.int64, (20,), elements=st.integers(0, 4)),
        arrays(np.int64, (20,), elements=st.integers(0, 4)),
    )
    def test_accuracy_in_unit_interval(self, y_true, y_pred):
        assert 0.0 <= accuracy(y_true, y_pred) <= 1.0

    @given(arrays(np.int64, (20,), elements=st.integers(0, 4)))
    def test_accuracy_reflexive(self, y):
        assert accuracy(y, y) == 1.0

    @given(
        arrays(np.int64, (30,), elements=st.integers(0, 3)),
        arrays(np.int64, (30,), elements=st.integers(0, 3)),
    )
    def test_confusion_matrix_total(self, y_true, y_pred):
        matrix = confusion_matrix(y_true, y_pred, num_classes=4)
        assert matrix.sum() == 30
        assert np.all(matrix >= 0)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=2, max_value=6))
    def test_prediction_margin_bounds(self, n, k):
        rng = np.random.default_rng(n * 100 + k)
        probs = rng.dirichlet(np.ones(k), size=n)
        margins = prediction_margin(probs, rng.integers(0, k, n))
        assert np.all(margins >= -1.0 - 1e-9) and np.all(margins <= 1.0 + 1e-9)


# --------------------------------------------------------------------------- #
# divergences
# --------------------------------------------------------------------------- #
class TestDivergenceProperties:
    @given(distributions, distributions)
    @settings(max_examples=60, deadline=None)
    def test_non_negative(self, p, q):
        if p.shape != q.shape:
            return
        assert kl_divergence(p, q) >= -1e-12
        assert js_divergence(p, q) >= -1e-12
        assert total_variation(p, q) >= 0.0
        assert hellinger_distance(p, q) >= 0.0

    @given(distributions)
    def test_zero_on_self(self, p):
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert total_variation(p, p) == pytest.approx(0.0, abs=1e-12)

    @given(distributions, distributions)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_bounds(self, p, q):
        if p.shape != q.shape:
            return
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p), abs=1e-9)
        assert total_variation(p, q) <= 1.0 + 1e-12
        assert hellinger_distance(p, q) <= 1.0 + 1e-9
        assert js_divergence(p, q) <= np.log(2) + 1e-9


# --------------------------------------------------------------------------- #
# datasets and partitions
# --------------------------------------------------------------------------- #
class TestDatasetProperties:
    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_preserves_rows(self, n, num_classes, d):
        rng = np.random.default_rng(n)
        dataset = Dataset(rng.random((n, d)), rng.integers(0, num_classes, n), num_classes)
        train, test = dataset.split(0.3, rng=0)
        assert len(train) + len(test) == n
        assert len(train) > 0 and len(test) > 0

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_class_frequencies_sum_to_one(self, n):
        rng = np.random.default_rng(n)
        dataset = Dataset(rng.random((n, 2)), rng.integers(0, 3, n), 3)
        assert dataset.class_frequencies().sum() == pytest.approx(1.0)


class TestPartitionProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        arrays(np.float64, (15, 2), elements=st.floats(0, 1, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignments_in_range(self, bins, x):
        partition = GridPartition(2, bins_per_dim=bins)
        cells = partition.assign(x)
        assert np.all(cells >= 0) and np.all(cells < partition.num_cells)

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=35))
    @settings(max_examples=40, deadline=None)
    def test_center_round_trip(self, bins, cell_index):
        partition = GridPartition(2, bins_per_dim=bins)
        cell_id = cell_index % partition.num_cells
        assert partition.assign(partition.cell_center(cell_id)[None, :])[0] == cell_id


# --------------------------------------------------------------------------- #
# query engine: sharding, stats merging, caching, budgets
# --------------------------------------------------------------------------- #
class _AffineToyModel:
    """Deterministic, picklable classifier for engine properties."""

    def __init__(self, d: int = 3, k: int = 4) -> None:
        rng = np.random.default_rng(2021)
        self.w = rng.normal(size=(d, k))
        self.b = rng.normal(size=k)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits = np.atleast_2d(x) @ self.w + self.b
        z = np.exp(logits - logits.max(axis=1, keepdims=True))
        return z / z.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)

    def loss_input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(x)
        grad_logits = probs.copy()
        grad_logits[np.arange(len(probs)), np.asarray(y, dtype=int)] -= 1.0
        return (grad_logits / len(probs)) @ self.w.T


class TestEngineShardingProperties:
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_shards_partition_rows_exactly(self, n, batch_size, num_workers):
        shards = plan_shards(n, batch_size, num_workers)
        assert [s.index for s in shards] == list(range(len(shards)))
        covered = 0
        for shard in shards:
            assert shard.start == covered
            assert shard.stop - shard.start <= batch_size
            assert shard.worker == shard.index % num_workers
            covered = shard.stop
        assert covered == n

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8),
        st.sets(st.integers(min_value=0, max_value=7)),
    )
    @settings(max_examples=60, deadline=None)
    def test_replan_preserves_partition_and_targets_survivors(
        self, n, batch_size, num_workers, dead
    ):
        """Supervised re-planning never changes what a shard computes.

        The partition (boundaries, indices, order) of a re-planned shard
        list is byte-for-byte the original's; only orphaned shards move,
        and only onto surviving workers — the invariants the bit-identity
        contract of :mod:`repro.faults.supervision` rests on.
        """
        shards = plan_shards(n, batch_size, num_workers)
        alive = [w for w in range(num_workers) if w not in dead]
        if not alive:
            if shards:
                with pytest.raises(ConfigurationError):
                    replan(shards, alive)
            return
        replanned = replan(shards, alive)
        assert [(s.index, s.start, s.stop) for s in replanned] == [
            (s.index, s.start, s.stop) for s in shards
        ]
        for original, moved in zip(shards, replanned):
            assert moved.worker in alive
            if original.worker in alive:
                assert moved is original  # survivors keep their assignment
            else:
                assert moved.worker == reassign_worker(original.index, alive)
        # pure in its inputs: the same failure yields the same plan
        assert replan(shards, alive) == replanned

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sets(st.integers(min_value=0, max_value=63), min_size=1),
    )
    @settings(max_examples=60, deadline=None)
    def test_reassign_worker_deterministic_and_alive(self, shard_index, alive):
        worker = reassign_worker(shard_index, sorted(alive))
        assert worker in alive
        # order- and duplicate-insensitive in the survivor set
        shuffled = list(alive) + list(alive)
        assert reassign_worker(shard_index, shuffled) == worker
        with pytest.raises(ConfigurationError):
            reassign_worker(shard_index, [])

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_merged_shard_stats_equal_single_process_stats(
        self, n, batch_size, num_workers
    ):
        """Chunk-by-chunk deltas merged shard-wise == one in-process engine."""
        model = _AffineToyModel()
        rng = np.random.default_rng(n * 131 + batch_size)
        x = rng.random((n, 3))
        y = rng.integers(0, 4, size=n)

        single = BatchedQueryEngine(model, batch_size=batch_size)
        single.predict_proba(x)
        single.loss_input_gradient(x, y)

        shards = plan_shards(n, batch_size, num_workers)
        merged = QueryStats(rows_queried=n, gradient_rows=n)
        for _ in shards:
            merged.merge(QueryStats(model_calls=1))
        for _ in shards:
            merged.merge(QueryStats(gradient_calls=1))
        assert merged.as_dict() == single.stats.as_dict()


# --------------------------------------------------------------------------- #
# shared-memory ring transport
# --------------------------------------------------------------------------- #
class TestShmRingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=12),
                st.integers(min_value=1, max_value=6),
                st.sampled_from(["<f8", "<f4", "<i8"]),
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(min_value=0, max_value=2_000_000_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip_is_bit_exact(self, specs, seed):
        """Any block packed into a slot is read back bit-identically.

        Mixed shapes and dtypes in one slot — the gradient path stages
        ``(x, y)`` with different dtypes — and the envelope entry table must
        describe exactly what was written.
        """
        rng = np.random.default_rng(seed)
        blocks = [
            (rng.random((rows, cols)) * 100).astype(np.dtype(dtype))
            for rows, cols, dtype in specs
        ]
        ring = ShmRing()
        try:
            ring.ensure(slots=1, slot_bytes=request_block_bytes(blocks, max(
                block.shape[0] for block in blocks
            )) or 1)
            entries = ring.write(0, blocks)
            assert len(entries) == len(blocks)
            for block, (offset, shape, dtype) in zip(blocks, entries):
                assert shape == block.shape
                assert np.dtype(dtype) == block.dtype
                np.testing.assert_array_equal(
                    ring.read_copy(offset, shape, dtype), block
                )
        finally:
            ring.release()

    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=24),
        st.integers(min_value=0, max_value=2_000_000_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_slot_reuse_never_leaks_between_slots(self, slots, writes, seed):
        """Rewriting slots in any order never corrupts other slots' blocks.

        The transport reuses slots ring-style across dispatches; whatever
        interleaving of writes occurs, each slot's latest block must read
        back exactly, untouched by every other slot's traffic.
        """
        rng = np.random.default_rng(seed)
        ring = ShmRing()
        try:
            ring.ensure(slots=slots, slot_bytes=8 * 4 * 8)
            latest = {}
            for target in writes:
                slot = target % slots
                block = rng.random((rng.integers(1, 9), 4))
                (offset, shape, dtype), = ring.write(slot, [block])
                latest[slot] = (block, offset, shape, dtype)
                for block_, offset_, shape_, dtype_ in latest.values():
                    np.testing.assert_array_equal(
                        ring.read_copy(offset_, shape_, dtype_), block_
                    )
        finally:
            ring.release()

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_grow_only_capacity(self, slots, slot_bytes):
        ring = ShmRing()
        try:
            ring.ensure(slots, slot_bytes)
            first = (ring.slots, ring.slot_bytes)
            ring.ensure(1, 1)  # shrinking requests never shrink the ring
            assert (ring.slots, ring.slot_bytes) == first
            ring.ensure(slots + 3, slot_bytes)
            assert ring.slots >= slots + 3
        finally:
            ring.release()

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1000), st.integers(0, 50), st.integers(0, 1000)
            ),
            min_size=0,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_stats_merge_is_componentwise_sum(self, rows):
        total = QueryStats()
        for queried, calls, hits in rows:
            total.merge(
                QueryStats(rows_queried=queried, model_calls=calls, cache_hits=hits)
            )
        assert total.rows_queried == sum(r[0] for r in rows)
        assert total.model_calls == sum(r[1] for r in rows)
        assert total.cache_hits == sum(r[2] for r in rows)

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_cache_hits_never_change_predict_proba(self, n, batch_size, seed):
        """A cache hit returns exactly what the model produced the first time.

        Repeated rows (in any order, any multiplicity) must come back
        bit-identical to their first computation, and a cached engine must
        agree bit-for-bit with an uncached one on the initial pass.
        """
        model = _AffineToyModel()
        rng = np.random.default_rng(seed)
        base = rng.random((n, 3))
        cached = BatchedQueryEngine(model, batch_size=batch_size, cache=True)
        uncached = BatchedQueryEngine(model, batch_size=batch_size)
        first = cached.predict_proba(base)
        np.testing.assert_array_equal(first, uncached.predict_proba(base))
        # re-query the same rows shuffled and duplicated: all served by the
        # cache, all bit-identical to the first computation
        picks = rng.integers(0, n, size=2 * n)
        repeat = cached.predict_proba(base[picks])
        np.testing.assert_array_equal(repeat, first[picks])
        assert cached.stats.cache_hits == len(picks)
        assert cached.stats.model_calls == uncached.stats.model_calls

    @given(
        budget=st.integers(min_value=1, max_value=200),
        execution=st.sampled_from(["population", "sequential", "sharded"]),
        num_workers=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=8, deadline=None)
    def test_total_queries_never_exceed_budget(
        self,
        trained_cluster_model,
        cluster_naturalness,
        operational_cluster_data,
        budget,
        execution,
        num_workers,
    ):
        from repro.runtime import ExecutionPolicy

        data = operational_cluster_data
        fuzzer = OperationalFuzzer(
            naturalness=cluster_naturalness,
            config=FuzzerConfig(
                epsilon=0.12,
                queries_per_seed=8,
                naturalness_threshold=0.3,
                execution="sequential" if execution == "sequential" else "population",
                policy=ExecutionPolicy(
                    backend="sharded" if execution == "sharded" else "batched",
                    num_workers=num_workers if execution == "sharded" else 1,
                    cache=True,
                ),
                stall_limit=4,
            ),
            natural_pool=data.x,
        )
        campaign = fuzzer.fuzz(
            trained_cluster_model, data.x[:6], data.y[:6], budget=budget, rng=3
        )
        assert campaign.total_queries <= budget
        assert campaign.total_queries == sum(r.queries for r in campaign.per_seed)
        campaign.validate_budget(budget)  # must not raise


# --------------------------------------------------------------------------- #
# persistent cache backend: disk-backed results bit-identical, fewer calls
# --------------------------------------------------------------------------- #
class TestPersistentCacheBackendProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=2**31 - 2),
    )
    @settings(max_examples=10, deadline=None)
    def test_disk_backend_bit_identical_and_fewer_physical_calls(
        self, n, batch_size, seed
    ):
        """Any row matrix: disk-backed == in-memory == uncached, bit for bit,
        and a second engine over the same directory pays strictly fewer
        physical model calls (zero) for the same logical answers."""
        model = _AffineToyModel()
        rng = np.random.default_rng(seed)
        x = rng.random((n, 3))
        with tempfile.TemporaryDirectory() as directory:
            uncached = BatchedQueryEngine(model, batch_size=batch_size)
            in_memory = BatchedQueryEngine(model, batch_size=batch_size, cache=True)
            cold = BatchedQueryEngine(
                model, batch_size=batch_size, cache=PersistentQueryCache(directory)
            )
            expected = uncached.predict_proba(x)
            np.testing.assert_array_equal(in_memory.predict_proba(x), expected)
            np.testing.assert_array_equal(cold.predict_proba(x), expected)
            assert cold.stats.model_calls == uncached.stats.model_calls

            warm = BatchedQueryEngine(
                model, batch_size=batch_size, cache=PersistentQueryCache(directory)
            )
            np.testing.assert_array_equal(warm.predict_proba(x), expected)
            assert warm.stats.model_calls < max(cold.stats.model_calls, 1)
            assert warm.stats.model_calls == 0
            assert warm.stats.cache_hits == len(x)

    @given(
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=2**31 - 2),
    )
    @settings(max_examples=10, deadline=None)
    def test_reopened_store_serves_duplicates_and_permutations(self, n, seed):
        """Entries survive reopen and answer any multiplicity/order of the
        original rows with the exact first-computed values."""
        model = _AffineToyModel()
        rng = np.random.default_rng(seed)
        base = rng.random((n, 3))
        with tempfile.TemporaryDirectory() as directory:
            first_engine = BatchedQueryEngine(
                model, cache=PersistentQueryCache(directory)
            )
            first = first_engine.predict_proba(base)
            picks = rng.integers(0, n, size=2 * n)
            reopened = BatchedQueryEngine(
                model, cache=PersistentQueryCache(directory)
            )
            np.testing.assert_array_equal(
                reopened.predict_proba(base[picks]), first[picks]
            )
            assert reopened.stats.model_calls == 0


# --------------------------------------------------------------------------- #
# Bayesian reliability model
# --------------------------------------------------------------------------- #
class TestBayesianProperties:
    @given(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.5, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_are_ordered_and_in_unit_interval(self, trials, failure_rate, confidence):
        failures = int(round(trials * failure_rate))
        posterior = BayesianCellModel(BetaPrior(1.0, 9.0)).posterior_for(trials, failures)
        lower = posterior.lower_bound(confidence)
        upper = posterior.upper_bound(confidence)
        assert 0.0 <= lower <= upper <= 1.0
        assert 0.0 <= posterior.mean <= 1.0
        # at high confidence the one-sided bounds must bracket the mean
        if confidence >= 0.9:
            assert lower <= posterior.mean + 1e-12 <= upper + 0.1

    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_more_clean_evidence_tightens_upper_bound(self, trials):
        model = BayesianCellModel(BetaPrior(1.0, 9.0))
        small = model.posterior_for(trials, 0).upper_bound(0.95)
        large = model.posterior_for(trials * 2, 0).upper_bound(0.95)
        assert large <= small + 1e-12
