"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import clip01, ensure_rng
from repro.data import Dataset, GridPartition
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, prediction_margin
from repro.op import hellinger_distance, js_divergence, kl_divergence, total_variation
from repro.reliability import BayesianCellModel, BetaPrior


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

distributions = st.integers(min_value=2, max_value=8).flatmap(
    lambda k: st.lists(
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False), min_size=k, max_size=k
    )
).map(lambda values: np.asarray(values) / np.sum(values))


@st.composite
def logits_and_labels(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    k = draw(st.integers(min_value=2, max_value=6))
    logits = draw(
        arrays(np.float64, (n, k), elements=st.floats(-20, 20, allow_nan=False))
    )
    labels = draw(arrays(np.int64, (n,), elements=st.integers(0, k - 1)))
    return logits, labels


# --------------------------------------------------------------------------- #
# config / numerics
# --------------------------------------------------------------------------- #
class TestClipProperties:
    @given(arrays(np.float64, (10,), elements=finite_floats))
    def test_clip01_bounds(self, values):
        clipped = clip01(values)
        assert np.all(clipped >= 0.0) and np.all(clipped <= 1.0)

    @given(arrays(np.float64, (10,), elements=st.floats(0, 1, allow_nan=False)))
    def test_clip01_identity_inside_domain(self, values):
        np.testing.assert_allclose(clip01(values), values)

    @given(st.integers(min_value=0, max_value=2**31 - 2))
    def test_ensure_rng_deterministic(self, seed):
        assert ensure_rng(seed).random() == ensure_rng(seed).random()


# --------------------------------------------------------------------------- #
# losses and metrics
# --------------------------------------------------------------------------- #
class TestLossProperties:
    @given(logits_and_labels())
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_non_negative(self, data):
        logits, labels = data
        loss = SoftmaxCrossEntropy()
        assert loss.forward(logits, labels) >= 0.0

    @given(logits_and_labels())
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, data):
        logits, _ = data
        probs = SoftmaxCrossEntropy.softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(logits)), atol=1e-9)

    @given(logits_and_labels())
    @settings(max_examples=30, deadline=None)
    def test_gradient_rows_sum_to_zero(self, data):
        logits, labels = data
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, labels)
        grad = loss.backward()
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(len(logits)), atol=1e-9)


class TestMetricProperties:
    @given(
        arrays(np.int64, (20,), elements=st.integers(0, 4)),
        arrays(np.int64, (20,), elements=st.integers(0, 4)),
    )
    def test_accuracy_in_unit_interval(self, y_true, y_pred):
        assert 0.0 <= accuracy(y_true, y_pred) <= 1.0

    @given(arrays(np.int64, (20,), elements=st.integers(0, 4)))
    def test_accuracy_reflexive(self, y):
        assert accuracy(y, y) == 1.0

    @given(
        arrays(np.int64, (30,), elements=st.integers(0, 3)),
        arrays(np.int64, (30,), elements=st.integers(0, 3)),
    )
    def test_confusion_matrix_total(self, y_true, y_pred):
        matrix = confusion_matrix(y_true, y_pred, num_classes=4)
        assert matrix.sum() == 30
        assert np.all(matrix >= 0)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=2, max_value=6))
    def test_prediction_margin_bounds(self, n, k):
        rng = np.random.default_rng(n * 100 + k)
        probs = rng.dirichlet(np.ones(k), size=n)
        margins = prediction_margin(probs, rng.integers(0, k, n))
        assert np.all(margins >= -1.0 - 1e-9) and np.all(margins <= 1.0 + 1e-9)


# --------------------------------------------------------------------------- #
# divergences
# --------------------------------------------------------------------------- #
class TestDivergenceProperties:
    @given(distributions, distributions)
    @settings(max_examples=60, deadline=None)
    def test_non_negative(self, p, q):
        if p.shape != q.shape:
            return
        assert kl_divergence(p, q) >= -1e-12
        assert js_divergence(p, q) >= -1e-12
        assert total_variation(p, q) >= 0.0
        assert hellinger_distance(p, q) >= 0.0

    @given(distributions)
    def test_zero_on_self(self, p):
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert total_variation(p, p) == pytest.approx(0.0, abs=1e-12)

    @given(distributions, distributions)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_bounds(self, p, q):
        if p.shape != q.shape:
            return
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p), abs=1e-9)
        assert total_variation(p, q) <= 1.0 + 1e-12
        assert hellinger_distance(p, q) <= 1.0 + 1e-9
        assert js_divergence(p, q) <= np.log(2) + 1e-9


# --------------------------------------------------------------------------- #
# datasets and partitions
# --------------------------------------------------------------------------- #
class TestDatasetProperties:
    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_preserves_rows(self, n, num_classes, d):
        rng = np.random.default_rng(n)
        dataset = Dataset(rng.random((n, d)), rng.integers(0, num_classes, n), num_classes)
        train, test = dataset.split(0.3, rng=0)
        assert len(train) + len(test) == n
        assert len(train) > 0 and len(test) > 0

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_class_frequencies_sum_to_one(self, n):
        rng = np.random.default_rng(n)
        dataset = Dataset(rng.random((n, 2)), rng.integers(0, 3, n), 3)
        assert dataset.class_frequencies().sum() == pytest.approx(1.0)


class TestPartitionProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        arrays(np.float64, (15, 2), elements=st.floats(0, 1, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignments_in_range(self, bins, x):
        partition = GridPartition(2, bins_per_dim=bins)
        cells = partition.assign(x)
        assert np.all(cells >= 0) and np.all(cells < partition.num_cells)

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=35))
    @settings(max_examples=40, deadline=None)
    def test_center_round_trip(self, bins, cell_index):
        partition = GridPartition(2, bins_per_dim=bins)
        cell_id = cell_index % partition.num_cells
        assert partition.assign(partition.cell_center(cell_id)[None, :])[0] == cell_id


# --------------------------------------------------------------------------- #
# Bayesian reliability model
# --------------------------------------------------------------------------- #
class TestBayesianProperties:
    @given(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.5, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_are_ordered_and_in_unit_interval(self, trials, failure_rate, confidence):
        failures = int(round(trials * failure_rate))
        posterior = BayesianCellModel(BetaPrior(1.0, 9.0)).posterior_for(trials, failures)
        lower = posterior.lower_bound(confidence)
        upper = posterior.upper_bound(confidence)
        assert 0.0 <= lower <= upper <= 1.0
        assert 0.0 <= posterior.mean <= 1.0
        # at high confidence the one-sided bounds must bracket the mean
        if confidence >= 0.9:
            assert lower <= posterior.mean + 1e-12 <= upper + 0.1

    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_more_clean_evidence_tightens_upper_bound(self, trials):
        model = BayesianCellModel(BetaPrior(1.0, 9.0))
        small = model.posterior_for(trials, 0).upper_bound(0.95)
        large = model.posterior_for(trials * 2, 0).upper_bound(0.95)
        assert large <= small + 1e-12
