"""Tests for repro.nn.network.Sequential."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Sequential


@pytest.fixture()
def small_network():
    return Sequential(
        [Dense(3, 8, rng=0), ReLU(), Dense(8, 4, rng=1)], loss=SoftmaxCrossEntropy()
    )


class TestConstruction:
    def test_requires_layers(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_default_loss(self):
        network = Sequential([Dense(2, 2, rng=0)])
        assert isinstance(network.loss, SoftmaxCrossEntropy)

    def test_num_parameters(self, small_network):
        # (3*8 + 8) + (8*4 + 4)
        assert small_network.num_parameters() == (3 * 8 + 8) + (8 * 4 + 4)


class TestForwardPredict(object):
    def test_logits_shape(self, small_network):
        logits = small_network.predict_logits(np.zeros((5, 3)))
        assert logits.shape == (5, 4)

    def test_single_input_promoted_to_batch(self, small_network):
        logits = small_network.predict_logits(np.zeros(3))
        assert logits.shape == (1, 4)

    def test_proba_rows_sum_to_one(self, small_network):
        probs = small_network.predict_proba(np.random.default_rng(0).random((6, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-12)
        assert np.all(probs >= 0)

    def test_predict_consistent_with_proba(self, small_network):
        x = np.random.default_rng(1).random((10, 3))
        np.testing.assert_array_equal(
            small_network.predict(x), small_network.predict_proba(x).argmax(axis=1)
        )

    def test_per_sample_loss_matches_mean_loss(self, small_network):
        x = np.random.default_rng(2).random((7, 3))
        y = np.random.default_rng(3).integers(0, 4, size=7)
        per_sample = small_network.per_sample_loss(x, y)
        assert per_sample.shape == (7,)
        assert np.mean(per_sample) == pytest.approx(small_network.compute_loss(x, y), rel=1e-6)

    def test_per_sample_loss_shape_error(self, small_network):
        with pytest.raises(ShapeError):
            small_network.per_sample_loss(np.zeros((3, 3)), np.zeros(2, dtype=int))


class TestInputGradient:
    def test_matches_numerical(self, small_network):
        rng = np.random.default_rng(4)
        x = rng.random((3, 3))
        y = np.array([0, 1, 2])
        analytic = small_network.loss_input_gradient(x, y)
        eps = 1e-6
        numerical = np.zeros_like(x)
        for index in np.ndindex(*x.shape):
            plus, minus = x.copy(), x.copy()
            plus[index] += eps
            minus[index] -= eps
            numerical[index] = (
                small_network.compute_loss(plus, y) - small_network.compute_loss(minus, y)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numerical, atol=1e-6)

    def test_single_input_shape(self, small_network):
        grad = small_network.loss_input_gradient(np.zeros(3), 1)
        assert grad.shape == (3,)

    def test_gradient_direction_increases_loss(self, small_network):
        rng = np.random.default_rng(5)
        x = rng.random((1, 3))
        y = np.array([2])
        grad = small_network.loss_input_gradient(x, y)
        stepped = x + 0.05 * np.sign(grad)
        assert small_network.compute_loss(stepped, y) >= small_network.compute_loss(x, y) - 1e-9


class TestWeights:
    def test_get_set_roundtrip(self, small_network):
        weights = small_network.get_weights()
        x = np.random.default_rng(6).random((4, 3))
        before = small_network.predict_logits(x)
        # perturb, then restore
        small_network.layers[0].weight += 1.0
        assert not np.allclose(before, small_network.predict_logits(x))
        small_network.set_weights(weights)
        np.testing.assert_allclose(before, small_network.predict_logits(x))

    def test_get_weights_is_a_copy(self, small_network):
        weights = small_network.get_weights()
        weights[0]["weight"][...] = 0.0
        assert not np.allclose(small_network.layers[0].weight, 0.0)

    def test_set_weights_wrong_layer_count(self, small_network):
        with pytest.raises(ShapeError):
            small_network.set_weights([{}])

    def test_set_weights_wrong_shape(self, small_network):
        weights = small_network.get_weights()
        weights[0]["weight"] = np.zeros((2, 2))
        with pytest.raises(ShapeError):
            small_network.set_weights(weights)

    def test_set_weights_wrong_names(self, small_network):
        weights = small_network.get_weights()
        weights[0] = {"kernel": weights[0]["weight"], "bias": weights[0]["bias"]}
        with pytest.raises(ShapeError):
            small_network.set_weights(weights)


class TestTrainingState:
    def test_require_trained(self, small_network):
        with pytest.raises(NotFittedError):
            small_network.require_trained()
        small_network.mark_trained()
        small_network.require_trained()
        assert small_network.is_trained

    def test_train_step_returns_loss_and_sets_gradients(self, small_network):
        x = np.random.default_rng(7).random((8, 3))
        y = np.random.default_rng(8).integers(0, 4, size=8)
        value = small_network.train_step_gradients(x, y)
        assert np.isfinite(value)
        assert np.any(small_network.layers[0].grad_weight != 0)
