"""Tests for ``repro.analysis.program`` — the whole-program layer.

Covers the parts the per-rule fixtures in ``test_analysis.py`` take for
granted: cross-module symbol resolution (aliased imports, re-export chains,
wildcard rejection), call-graph resolution (self methods, constructor-typed
attributes and locals, callback aliases, base-class walks), the facts
serialization round-trip, and the on-disk cache contract — a warm run
reparses nothing, a one-file edit re-analyzes exactly that file plus its
reverse import closure, and a stale fingerprint or corrupt cache file means
a cold start rather than stale findings.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

from repro.analysis import analyze_program, build_graph, extract_facts
from repro.analysis.program.cache import (
    CACHE_VERSION,
    ProgramCache,
    analysis_fingerprint,
)
from repro.analysis.program.facts import ModuleFacts, module_name_for


def dedent(snippet: str) -> str:
    return textwrap.dedent(snippet).lstrip("\n")


def facts_for(module: str, source: str, package: bool = False) -> ModuleFacts:
    source = dedent(source)
    stem = module.replace(".", "/")
    path = f"src/{stem}/__init__.py" if package else f"src/{stem}.py"
    return extract_facts(ast.parse(source), source, path, module=module)


def graph_for(**modules: str):
    """Graph of ``modules``; a name that prefixes another is a package."""
    names = set(modules)
    return build_graph(
        facts_for(name, src, package=any(n.startswith(name + ".") for n in names))
        for name, src in modules.items()
    )


# --------------------------------------------------------------------------- #
# module naming
# --------------------------------------------------------------------------- #
class TestModuleNaming:
    def test_package_layout_resolved_via_init_files(self, tmp_path):
        pkg = tmp_path / "pkg"
        sub = pkg / "sub"
        sub.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (sub / "__init__.py").write_text("")
        (sub / "mod.py").write_text("x = 1\n")
        assert module_name_for(sub / "mod.py") == "pkg.sub.mod"
        assert module_name_for(sub / "__init__.py") == "pkg.sub"

    def test_loose_file_named_by_stem(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == "script"


# --------------------------------------------------------------------------- #
# symbol resolution
# --------------------------------------------------------------------------- #
class TestSymbolResolution:
    def test_local_function_and_class(self):
        graph = graph_for(**{"pkg.a": "def helper():\n    pass\nclass C:\n    pass\n"})
        ref = graph.resolve("pkg.a", "helper")
        assert (ref.module, ref.qualname, ref.kind) == ("pkg.a", "helper", "function")
        assert graph.resolve("pkg.a", "C").kind == "class"

    def test_from_import_follows_to_defining_module(self):
        graph = graph_for(**{
            "pkg.a": "def helper():\n    pass\n",
            "pkg.b": "from pkg.a import helper\n",
        })
        ref = graph.resolve("pkg.b", "helper")
        assert (ref.module, ref.qualname) == ("pkg.a", "helper")

    def test_aliased_import_resolves_under_the_alias(self):
        graph = graph_for(**{
            "pkg.a": "def helper():\n    pass\n",
            "pkg.b": "from pkg.a import helper as h\n",
        })
        ref = graph.resolve("pkg.b", "h")
        assert (ref.module, ref.qualname) == ("pkg.a", "helper")
        assert graph.resolve("pkg.b", "helper") is None

    def test_module_import_with_dotted_access(self):
        graph = graph_for(**{
            "pkg.a": "class Engine:\n    pass\n",
            "pkg.b": "import pkg.a as backend\n",
        })
        ref = graph.resolve("pkg.b", "backend.Engine")
        assert (ref.module, ref.qualname, ref.kind) == ("pkg.a", "Engine", "class")

    def test_reexport_chain_followed_to_origin(self):
        graph = graph_for(**{
            "pkg.a": "def helper():\n    pass\n",
            "pkg": "from .a import helper\n",
            "pkg.b": "from pkg import helper\n",
        })
        ref = graph.resolve("pkg.b", "helper")
        assert (ref.module, ref.qualname) == ("pkg.a", "helper")

    def test_relative_import_resolved_against_package(self):
        graph = graph_for(**{
            "pkg.a": "def helper():\n    pass\n",
            "pkg.b": "from .a import helper\n",
        })
        ref = graph.resolve("pkg.b", "helper")
        assert (ref.module, ref.qualname) == ("pkg.a", "helper")

    def test_wildcard_import_poisons_unresolved_names(self):
        graph = graph_for(**{
            "pkg.a": "def helper():\n    pass\n",
            "pkg.b": "from pkg.a import *\n\n\ndef local():\n    pass\n",
        })
        # locally defined names still resolve; anything else could come from
        # the wildcard, so resolution refuses to guess
        assert graph.resolve("pkg.b", "local") is not None
        assert graph.resolve("pkg.b", "helper") is None
        assert "pkg.b" in graph.wildcard_importers

    def test_external_names_unresolved(self):
        graph = graph_for(**{"pkg.a": "import numpy as np\n"})
        assert graph.resolve("pkg.a", "np.array") is None
        assert graph.resolve("pkg.a", "undefined") is None

    def test_import_cycle_terminates(self):
        graph = graph_for(**{
            "pkg.a": "from pkg.b import thing\n",
            "pkg.b": "from pkg.a import thing\n",
        })
        assert graph.resolve("pkg.a", "thing") is None


# --------------------------------------------------------------------------- #
# call resolution
# --------------------------------------------------------------------------- #
class TestCallResolution:
    def _one_function(self, graph, module, qualname):
        facts = graph.modules[module]
        return facts, facts.functions[qualname]

    def test_self_method_resolves_within_class(self):
        graph = graph_for(**{
            "pkg.a": """
                class C:
                    def outer(self):
                        self.inner()

                    def inner(self):
                        pass
                """,
        })
        facts, fn = self._one_function(graph, "pkg.a", "C.outer")
        ref = graph.resolve_call(facts, fn, "self.inner")
        assert (ref.module, ref.qualname) == ("pkg.a", "C.inner")

    def test_constructor_typed_attribute_followed(self):
        graph = graph_for(**{
            "pkg.sup": """
                class Supervisor:
                    def replan(self):
                        pass
                """,
            "pkg.coord": """
                from pkg.sup import Supervisor


                class Coordinator:
                    def __init__(self):
                        self._sup = Supervisor()

                    def merge(self):
                        self._sup.replan()
                """,
        })
        facts, fn = self._one_function(graph, "pkg.coord", "Coordinator.merge")
        ref = graph.resolve_call(facts, fn, "self._sup.replan")
        assert (ref.module, ref.qualname) == ("pkg.sup", "Supervisor.replan")

    def test_constructor_typed_local_followed(self):
        graph = graph_for(**{
            "pkg.coord": """
                class Coordinator:
                    def merge(self):
                        pass


                def run():
                    coord = Coordinator()
                    coord.merge()
                """,
        })
        facts, fn = self._one_function(graph, "pkg.coord", "run")
        ref = graph.resolve_call(facts, fn, "coord.merge")
        assert (ref.module, ref.qualname) == ("pkg.coord", "Coordinator.merge")

    def test_callback_alias_followed(self):
        graph = graph_for(**{
            "pkg.a": """
                def helper():
                    pass


                def run():
                    fn = helper
                    fn()
                """,
        })
        facts, fn = self._one_function(graph, "pkg.a", "run")
        ref = graph.resolve_call(facts, fn, "fn")
        assert (ref.module, ref.qualname) == ("pkg.a", "helper")

    def test_class_call_resolves_to_init(self):
        graph = graph_for(**{
            "pkg.a": """
                class Engine:
                    def __init__(self):
                        pass


                def run():
                    Engine()
                """,
        })
        facts, fn = self._one_function(graph, "pkg.a", "run")
        ref = graph.resolve_call(facts, fn, "Engine")
        assert (ref.qualname, ref.kind) == ("Engine.__init__", "function")

    def test_inherited_method_found_via_base_class_walk(self):
        graph = graph_for(**{
            "pkg.base": """
                class Base:
                    def shutdown(self):
                        pass
                """,
            "pkg.derived": """
                from pkg.base import Base


                class Worker(Base):
                    def run(self):
                        self.shutdown()
                """,
        })
        facts, fn = self._one_function(graph, "pkg.derived", "Worker.run")
        ref = graph.resolve_call(facts, fn, "self.shutdown")
        assert (ref.module, ref.qualname) == ("pkg.base", "Base.shutdown")

    def test_unresolvable_call_returns_none(self):
        graph = graph_for(**{"pkg.a": "def run(cb):\n    cb()\n"})
        facts, fn = self._one_function(graph, "pkg.a", "run")
        assert graph.resolve_call(facts, fn, "cb") is None


# --------------------------------------------------------------------------- #
# facts round-trip
# --------------------------------------------------------------------------- #
class TestFactsRoundTrip:
    RICH_SOURCE = """
        import threading
        from typing import Set

        from pkg.other import helper as h

        KNOWN = {"a", "b"}
        _LOCK = threading.Lock()


        class Planner:
            def __init__(self):
                self._lock = threading.RLock()
                self.pending = set()

            def drain(self, shards: Set[int]) -> Set[int]:
                with self._lock:
                    out = {s for s in shards}
                for item in sorted(self.pending):
                    h(item, timeout=1)
                model = h()
                return out
        """

    def test_to_dict_from_dict_is_exact(self):
        original = facts_for("pkg.planner", self.RICH_SOURCE)
        # through real JSON, exactly as the cache stores it
        restored = ModuleFacts.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored.to_dict() == original.to_dict()
        assert restored.module == "pkg.planner"
        assert restored.content_hash == original.content_hash
        fn = restored.functions["Planner.drain"]
        assert fn.params == ["self", "shards"]
        assert fn.lock_acquires[0].lock == "self._lock"
        assert restored.classes["Planner"].set_attrs == ["pending"]
        assert restored.module_sets == ["KNOWN"]

    def test_restored_facts_build_an_equivalent_graph(self):
        original = facts_for("pkg.planner", self.RICH_SOURCE)
        restored = ModuleFacts.from_dict(json.loads(json.dumps(original.to_dict())))
        before, after = build_graph([original]), build_graph([restored])
        assert before.returns_model() == after.returns_model()
        assert before.transitive_locks() == after.transitive_locks()


# --------------------------------------------------------------------------- #
# cache & invalidation
# --------------------------------------------------------------------------- #
def write_pkg(tmp_path) -> Path:
    """A three-deep import chain: a.py -> b.py -> c.py."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "c.py").write_text("def leaf():\n    return 1\n")
    (pkg / "b.py").write_text(
        "from pkg.c import leaf\n\n\ndef mid():\n    return leaf()\n"
    )
    (pkg / "a.py").write_text(
        "from pkg.b import mid\n\n\ndef top():\n    return mid()\n"
    )
    return pkg


def names(paths) -> set:
    return {Path(p).name for p in paths}


class TestCacheInvalidation:
    def test_cold_then_warm(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold = analyze_program([str(pkg)], cache_dir=cache_dir)
        assert cold.cache_misses == 4 and cold.cache_hits == 0
        assert names(cold.reparsed) == {"__init__.py", "a.py", "b.py", "c.py"}
        warm = analyze_program([str(pkg)], cache_dir=cache_dir)
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        assert warm.reparsed == [] and warm.invalidated == []
        assert warm.findings == cold.findings
        assert warm.files_scanned == cold.files_scanned

    def test_one_file_edit_invalidates_reverse_import_closure(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = str(tmp_path / "cache")
        analyze_program([str(pkg)], cache_dir=cache_dir)
        (pkg / "c.py").write_text("def leaf():\n    return 2\n")
        run = analyze_program([str(pkg)], cache_dir=cache_dir)
        assert names(run.reparsed) == {"c.py"}
        assert run.cache_hits == 3 and run.cache_misses == 1
        # b imports c and a imports b: both can see c's symbols
        assert names(run.invalidated) == {"a.py", "b.py", "c.py"}

    def test_leaf_of_the_import_chain_invalidates_only_itself(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = str(tmp_path / "cache")
        analyze_program([str(pkg)], cache_dir=cache_dir)
        (pkg / "a.py").write_text(
            "from pkg.b import mid\n\n\ndef top():\n    return mid() + 1\n"
        )
        run = analyze_program([str(pkg)], cache_dir=cache_dir)
        assert names(run.reparsed) == {"a.py"}
        assert names(run.invalidated) == {"a.py"}

    def test_stale_fingerprint_means_cold_start(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_program([str(pkg)], cache_dir=str(cache_dir))
        store = cache_dir / "program-cache.json"
        payload = json.loads(store.read_text())
        payload["fingerprint"] = "0" * 64
        store.write_text(json.dumps(payload))
        run = analyze_program([str(pkg)], cache_dir=str(cache_dir))
        assert run.cache_hits == 0 and run.cache_misses == 4

    def test_corrupt_cache_file_means_cold_start(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_program([str(pkg)], cache_dir=str(cache_dir))
        (cache_dir / "program-cache.json").write_text("{not json")
        run = analyze_program([str(pkg)], cache_dir=str(cache_dir))
        assert run.cache_hits == 0 and run.cache_misses == 4
        # and the cold run repaired the store
        rerun = analyze_program([str(pkg)], cache_dir=str(cache_dir))
        assert rerun.cache_hits == 4

    def test_deleted_file_pruned_from_cache(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_program([str(pkg)], cache_dir=str(cache_dir))
        (pkg / "a.py").unlink()
        analyze_program([str(pkg)], cache_dir=str(cache_dir))
        stored = json.loads((cache_dir / "program-cache.json").read_text())
        assert names(stored["entries"]) == {"__init__.py", "b.py", "c.py"}

    def test_uncached_run_reparses_everything(self, tmp_path):
        pkg = write_pkg(tmp_path)
        run = analyze_program([str(pkg)])
        assert run.cache_hits == 0 and run.cache_misses == 4

    def test_fingerprint_is_stable_within_a_process(self):
        assert analysis_fingerprint() == analysis_fingerprint()
        assert len(analysis_fingerprint()) == 64

    def test_cache_version_bump_invalidates(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_program([str(pkg)], cache_dir=str(cache_dir))
        store = cache_dir / "program-cache.json"
        payload = json.loads(store.read_text())
        assert payload["version"] == CACHE_VERSION
        payload["version"] = "0"
        store.write_text(json.dumps(payload))
        assert ProgramCache(cache_dir).entries == {}


# --------------------------------------------------------------------------- #
# parallel cold runs
# --------------------------------------------------------------------------- #
class TestParallelAnalysis:
    def test_pool_run_matches_serial_run(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        for i in range(9):  # above MIN_FILES_FOR_POOL
            (pkg / f"mod{i}.py").write_text(
                f"def f{i}(model, x):\n    return model.predict(x)\n"
            )
        serial = analyze_program([str(pkg)], jobs=1)
        pooled = analyze_program([str(pkg)], jobs=2)
        assert pooled.findings == serial.findings
        assert len(pooled.findings) == 9
        assert pooled.files_scanned == serial.files_scanned == 10

    def test_pool_results_are_cacheable(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        for i in range(9):
            (pkg / f"mod{i}.py").write_text(f"def f{i}():\n    return {i}\n")
        cache_dir = str(tmp_path / "cache")
        cold = analyze_program([str(pkg)], cache_dir=cache_dir, jobs=2)
        assert cold.cache_misses == 10
        warm = analyze_program([str(pkg)], cache_dir=cache_dir, jobs=2)
        assert warm.cache_hits == 10 and warm.reparsed == []
        assert warm.findings == cold.findings
