"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.exceptions import DataError


@pytest.fixture()
def toy_dataset():
    rng = np.random.default_rng(0)
    x = rng.random((40, 3))
    y = np.array([0] * 20 + [1] * 12 + [2] * 8)
    return Dataset(x, y, num_classes=3, class_names=["a", "b", "c"], name="toy")


class TestConstruction:
    def test_basic_properties(self, toy_dataset):
        assert len(toy_dataset) == 40
        assert toy_dataset.num_features == 3
        assert toy_dataset.name == "toy"

    def test_rejects_1d_x(self):
        with pytest.raises(DataError):
            Dataset(np.zeros(4), np.zeros(4, dtype=int), 2)

    def test_rejects_misaligned_labels(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((4, 2)), np.zeros(3, dtype=int), 2)

    def test_rejects_too_few_classes(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((4, 2)), np.zeros(4, dtype=int), 1)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((4, 2)), np.array([0, 1, 2, 3]), 3)

    def test_rejects_wrong_class_names_length(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((4, 2)), np.zeros(4, dtype=int), 2, class_names=["only-one"])

    def test_rejects_mismatched_image_shape(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((4, 10)), np.zeros(4, dtype=int), 2, image_shape=(1, 3, 3))


class TestStatistics:
    def test_class_counts(self, toy_dataset):
        np.testing.assert_array_equal(toy_dataset.class_counts(), [20, 12, 8])

    def test_class_frequencies_sum_to_one(self, toy_dataset):
        assert toy_dataset.class_frequencies().sum() == pytest.approx(1.0)

    def test_indices_of_class(self, toy_dataset):
        assert len(toy_dataset.indices_of_class(2)) == 8
        with pytest.raises(DataError):
            toy_dataset.indices_of_class(5)

    def test_summary_keys(self, toy_dataset):
        summary = toy_dataset.summary()
        assert summary["size"] == 40
        assert summary["num_classes"] == 3


class TestTransformations:
    def test_subset(self, toy_dataset):
        subset = toy_dataset.subset([0, 1, 2], name="sub")
        assert len(subset) == 3
        assert subset.name == "sub"

    def test_shuffled_preserves_pairs(self, toy_dataset):
        shuffled = toy_dataset.shuffled(rng=0)
        # every (x, y) pair must still exist
        for row, label in zip(shuffled.x[:5], shuffled.y[:5]):
            matches = np.all(np.isclose(toy_dataset.x, row), axis=1)
            assert np.any(matches)
            assert label in toy_dataset.y[matches]

    def test_split_sizes(self, toy_dataset):
        train, test = toy_dataset.split(0.25, rng=0)
        assert len(train) + len(test) == len(toy_dataset)
        assert len(test) == pytest.approx(10, abs=2)

    def test_split_stratified_keeps_all_classes(self, toy_dataset):
        train, test = toy_dataset.split(0.25, rng=0, stratify=True)
        assert set(np.unique(test.y)) == {0, 1, 2}
        assert set(np.unique(train.y)) == {0, 1, 2}

    def test_split_non_stratified(self, toy_dataset):
        train, test = toy_dataset.split(0.3, rng=0, stratify=False)
        assert len(train) + len(test) == 40

    def test_split_invalid_fraction(self, toy_dataset):
        with pytest.raises(DataError):
            toy_dataset.split(0.0)
        with pytest.raises(DataError):
            toy_dataset.split(1.0)

    def test_split_needs_two_samples(self):
        tiny = Dataset(np.zeros((1, 2)), np.zeros(1, dtype=int), 2)
        with pytest.raises(DataError):
            tiny.split(0.5)

    def test_sample_without_replacement(self, toy_dataset):
        sample = toy_dataset.sample(10, rng=0)
        assert len(sample) == 10
        with pytest.raises(DataError):
            toy_dataset.sample(100, replace=False)

    def test_sample_with_replacement(self, toy_dataset):
        sample = toy_dataset.sample(100, rng=0, replace=True)
        assert len(sample) == 100

    def test_sample_invalid_size(self, toy_dataset):
        with pytest.raises(DataError):
            toy_dataset.sample(0)

    def test_concat(self, toy_dataset):
        merged = toy_dataset.concat(toy_dataset)
        assert len(merged) == 80

    def test_concat_mismatch(self, toy_dataset):
        other = Dataset(np.zeros((3, 2)), np.zeros(3, dtype=int), 3)
        with pytest.raises(DataError):
            toy_dataset.concat(other)
        other_classes = Dataset(np.zeros((3, 3)), np.zeros(3, dtype=int), 2)
        with pytest.raises(DataError):
            toy_dataset.concat(other_classes)

    def test_batches_cover_everything_once(self, toy_dataset):
        seen = 0
        for batch in toy_dataset.batches(16, rng=0):
            seen += len(batch)
            assert batch.num_features == 3
        assert seen == len(toy_dataset)

    def test_batches_invalid_size(self, toy_dataset):
        with pytest.raises(DataError):
            list(toy_dataset.batches(0))

    def test_as_batch(self, toy_dataset):
        batch = toy_dataset.as_batch()
        assert len(batch) == len(toy_dataset)
