"""Tests for auxiliary weights and seed samplers (RQ2)."""

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.sampling import (
    CellStratifiedSeedSampler,
    OperationalSeedSampler,
    SurpriseWeight,
    UniformSeedSampler,
    available_weight_functions,
    entropy_weight,
    gradient_norm_weight,
    loss_weight,
    margin_weight,
    weight_function_from_name,
)


class TestWeightFunctions:
    def test_all_in_unit_interval(self, trained_cluster_model, operational_cluster_data):
        data = operational_cluster_data
        for weight_function in (margin_weight, entropy_weight, loss_weight, gradient_norm_weight):
            scores = weight_function(trained_cluster_model, data.x, data.y)
            assert scores.shape == (len(data),)
            assert np.all(scores >= 0) and np.all(scores <= 1)

    def test_margin_ranks_misclassified_highest(self, trained_cluster_model, operational_cluster_data):
        data = operational_cluster_data
        predictions = trained_cluster_model.predict(data.x)
        scores = margin_weight(trained_cluster_model, data.x, data.y)
        wrong = predictions != data.y
        if np.any(wrong) and np.any(~wrong):
            assert scores[wrong].mean() > scores[~wrong].mean()

    def test_margin_without_labels(self, trained_cluster_model, operational_cluster_data):
        scores = margin_weight(trained_cluster_model, operational_cluster_data.x, None)
        assert np.all(scores >= 0) and np.all(scores <= 1)

    def test_loss_weight_requires_labels(self, trained_cluster_model, operational_cluster_data):
        with pytest.raises(SamplingError):
            loss_weight(trained_cluster_model, operational_cluster_data.x, None)

    def test_loss_correlates_with_margin(self, trained_cluster_model, operational_cluster_data):
        data = operational_cluster_data
        loss_scores = loss_weight(trained_cluster_model, data.x, data.y)
        margin_scores = margin_weight(trained_cluster_model, data.x, data.y)
        correlation = np.corrcoef(loss_scores, margin_scores)[0, 1]
        assert correlation > 0.5

    def test_entropy_high_for_uncertain_points(self, trained_cluster_model, clusters_split):
        train, _ = clusters_split
        # midpoints between two cluster centres are maximally uncertain
        centre_a = train.x[train.y == 0].mean(axis=0)
        centre_b = train.x[train.y == 1].mean(axis=0)
        midpoint = ((centre_a + centre_b) / 2)[None, :]
        uncertain = entropy_weight(trained_cluster_model, midpoint)
        confident = entropy_weight(trained_cluster_model, centre_a[None, :])
        assert uncertain[0] >= confident[0]

    def test_constant_scores_normalise_to_ones(self, trained_cluster_model):
        # a single input: min == max, so the normalised score is 1
        x = np.full((1, 2), 0.5)
        assert margin_weight(trained_cluster_model, x, None)[0] == 1.0

    def test_surprise_weight(self, trained_cluster_model, clusters_split):
        train, test = clusters_split
        surprise = SurpriseWeight(train.x, train.y)
        scores = surprise(trained_cluster_model, test.x[:50], test.y[:50])
        assert scores.shape == (50,)
        assert np.all(scores >= 0) and np.all(scores <= 1)
        # an input far from every training point of its class is more surprising
        outlier = np.array([[0.01, 0.99]])
        inlier = train.x[:1]
        assert surprise(trained_cluster_model, outlier)[0] >= surprise(trained_cluster_model, inlier)[0]

    def test_surprise_requires_two_classes(self, clusters_split):
        train, _ = clusters_split
        with pytest.raises(Exception):
            SurpriseWeight(train.x[train.y == 0], train.y[train.y == 0])

    def test_registry(self):
        names = available_weight_functions()
        assert "margin" in names and "gradient-norm" in names
        assert weight_function_from_name("margin") is margin_weight
        with pytest.raises(SamplingError):
            weight_function_from_name("surprise")


class TestUniformSampler:
    def test_selects_requested_count(self, trained_cluster_model, operational_cluster_data):
        selection = UniformSeedSampler().select(
            operational_cluster_data, trained_cluster_model, 25, rng=0
        )
        assert len(selection) == 25
        assert selection.x.shape == (25, 2)

    def test_probabilities_uniform(self, trained_cluster_model, operational_cluster_data):
        selection = UniformSeedSampler().select(
            operational_cluster_data, trained_cluster_model, 10, rng=0
        )
        np.testing.assert_allclose(
            selection.probabilities, 1.0 / len(operational_cluster_data)
        )

    def test_oversampling_uses_replacement(self, trained_cluster_model, operational_cluster_data):
        selection = UniformSeedSampler().select(
            operational_cluster_data, trained_cluster_model, len(operational_cluster_data) + 50, rng=0
        )
        assert len(selection) == len(operational_cluster_data) + 50

    def test_invalid_budget(self, trained_cluster_model, operational_cluster_data):
        with pytest.raises(SamplingError):
            UniformSeedSampler().select(operational_cluster_data, trained_cluster_model, 0)


class TestOperationalSampler:
    def test_prefers_high_density_failure_prone_seeds(
        self, trained_cluster_model, operational_cluster_data, cluster_profile
    ):
        sampler = OperationalSeedSampler(profile=cluster_profile)
        uniform = UniformSeedSampler()
        weighted_selection = sampler.select(
            operational_cluster_data, trained_cluster_model, 50, rng=0
        )
        uniform_selection = uniform.select(
            operational_cluster_data, trained_cluster_model, 50, rng=0
        )
        # the weighted sampler's seeds must be at least as failure-prone
        weighted_margin = margin_weight(
            trained_cluster_model, weighted_selection.x, weighted_selection.y
        ).mean()
        uniform_margin = margin_weight(
            trained_cluster_model, uniform_selection.x, uniform_selection.y
        ).mean()
        assert weighted_margin >= uniform_margin - 0.05

    def test_op_exponent_zero_ignores_density(
        self, trained_cluster_model, operational_cluster_data, cluster_profile
    ):
        sampler = OperationalSeedSampler(profile=cluster_profile, op_exponent=0.0)
        selection = sampler.select(operational_cluster_data, trained_cluster_model, 20, rng=0)
        np.testing.assert_allclose(selection.op_density, np.ones(20))

    def test_failure_exponent_zero_ignores_failure(
        self, trained_cluster_model, operational_cluster_data, cluster_profile
    ):
        sampler = OperationalSeedSampler(profile=cluster_profile, failure_exponent=0.0)
        selection = sampler.select(operational_cluster_data, trained_cluster_model, 20, rng=0)
        np.testing.assert_allclose(selection.failure_weight, np.ones(20))

    def test_without_profile_density_is_uniform(
        self, trained_cluster_model, operational_cluster_data
    ):
        sampler = OperationalSeedSampler(profile=None)
        selection = sampler.select(operational_cluster_data, trained_cluster_model, 15, rng=0)
        np.testing.assert_allclose(selection.op_density, np.ones(15))

    def test_probabilities_sum_to_one(
        self, trained_cluster_model, operational_cluster_data, cluster_profile
    ):
        sampler = OperationalSeedSampler(profile=cluster_profile)
        selection = sampler.select(operational_cluster_data, trained_cluster_model, 5, rng=0)
        assert selection.probabilities.sum() == pytest.approx(1.0)

    def test_invalid_config(self):
        with pytest.raises(SamplingError):
            OperationalSeedSampler(op_exponent=-1.0)
        with pytest.raises(SamplingError):
            OperationalSeedSampler(failure_floor=1.0)


class TestCellStratifiedSampler:
    def test_covers_high_mass_cells(
        self, trained_cluster_model, operational_cluster_data, cluster_profile
    ):
        from repro.data import GridPartition

        partition = GridPartition(2, bins_per_dim=4)
        sampler = CellStratifiedSeedSampler(
            partition=partition, profile=cluster_profile, min_per_cell=0
        )
        selection = sampler.select(operational_cluster_data, trained_cluster_model, 30, rng=0)
        assert 0 < len(selection) <= 30
        selected_cells = set(partition.assign(selection.x).tolist())
        assert len(selected_cells) >= 3

    def test_requires_partition_and_profile(self):
        with pytest.raises(SamplingError):
            CellStratifiedSeedSampler()
