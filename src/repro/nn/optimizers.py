"""First-order optimisers for the numpy neural-network substrate."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .layers import Layer


class Optimizer:
    """Base class: updates layer parameters in place from their gradients."""

    def __init__(self, learning_rate: float = 0.01, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self._state: Dict[Tuple[int, str], Dict[str, np.ndarray]] = {}
        self._step_count = 0

    def step(self, layers: List[Layer]) -> None:
        """Apply one update to every trainable layer in ``layers``."""
        self._step_count += 1
        for layer_index, layer in enumerate(layers):
            if not layer.trainable:
                continue
            params = layer.parameters()
            grads = layer.gradients()
            for name, param in params.items():
                grad = grads[name]
                if self.weight_decay > 0 and name != "bias":
                    grad = grad + self.weight_decay * param
                key = (layer_index, name)
                self._update_param(key, param, grad)

    def _update_param(
        self, key: Tuple[int, str], param: np.ndarray, grad: np.ndarray
    ) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any accumulated state (momentum buffers, moment estimates)."""
        self._state.clear()
        self._step_count = 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ConfigurationError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov

    def _update_param(
        self, key: Tuple[int, str], param: np.ndarray, grad: np.ndarray
    ) -> None:
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        state = self._state.setdefault(key, {"velocity": np.zeros_like(param)})
        velocity = state["velocity"]
        velocity *= self.momentum
        velocity -= self.learning_rate * grad
        if self.nesterov:
            param += self.momentum * velocity - self.learning_rate * grad
        else:
            param += velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("beta1 and beta2 must be in [0, 1)")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def _update_param(
        self, key: Tuple[int, str], param: np.ndarray, grad: np.ndarray
    ) -> None:
        state = self._state.setdefault(
            key, {"m": np.zeros_like(param), "v": np.zeros_like(param)}
        )
        m, v = state["m"], state["v"]
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad**2
        m_hat = m / (1 - self.beta1**self._step_count)
        v_hat = v / (1 - self.beta2**self._step_count)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp optimiser with exponential moving average of squared gradients."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= rho < 1.0:
            raise ConfigurationError(f"rho must be in [0, 1), got {rho}")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.rho = rho
        self.eps = eps

    def _update_param(
        self, key: Tuple[int, str], param: np.ndarray, grad: np.ndarray
    ) -> None:
        state = self._state.setdefault(key, {"avg_sq": np.zeros_like(param)})
        avg_sq = state["avg_sq"]
        avg_sq *= self.rho
        avg_sq += (1 - self.rho) * grad**2
        param -= self.learning_rate * grad / (np.sqrt(avg_sq) + self.eps)


def optimizer_from_name(name: str, **kwargs) -> Optimizer:
    """Create an optimiser from its lowercase name."""
    table = {"sgd": SGD, "adam": Adam, "rmsprop": RMSProp}
    if name not in table:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; expected one of {sorted(table)}"
        )
    return table[name](**kwargs)


__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "optimizer_from_name"]
