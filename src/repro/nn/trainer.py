"""Mini-batch trainer for :class:`repro.nn.network.Sequential` networks.

The trainer supports per-sample weights (used by the OP-aware retraining of
RQ4), validation tracking, early stopping and an optional per-epoch callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..config import RngLike, ensure_rng
from ..exceptions import ConfigurationError, DataError
from .metrics import accuracy
from .network import Sequential
from .optimizers import Adam, Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and accuracies produced by :class:`Trainer`."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        """Best validation accuracy seen (0 when no validation data was used)."""
        return max(self.val_accuracy) if self.val_accuracy else 0.0


@dataclass
class TrainerConfig:
    """Hyper-parameters for one call to :meth:`Trainer.fit`."""

    epochs: int = 20
    batch_size: int = 64
    shuffle: bool = True
    early_stopping_patience: Optional[int] = None
    min_delta: float = 1e-4
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.early_stopping_patience is not None and self.early_stopping_patience <= 0:
            raise ConfigurationError("early_stopping_patience must be positive when set")
        if self.min_delta < 0:
            raise ConfigurationError("min_delta must be non-negative")


class Trainer:
    """Fits a :class:`Sequential` network with mini-batch gradient descent."""

    def __init__(
        self,
        optimizer: Optional[Optimizer] = None,
        config: Optional[TrainerConfig] = None,
        rng: RngLike = None,
    ) -> None:
        self.optimizer = optimizer if optimizer is not None else Adam()
        self.config = config if config is not None else TrainerConfig()
        self._rng = ensure_rng(rng)

    def fit(
        self,
        network: Sequential,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        epoch_callback: Optional[Callable[[int, TrainingHistory], None]] = None,
    ) -> TrainingHistory:
        """Train ``network`` on ``(x, y)`` and return the training history.

        Parameters
        ----------
        network:
            The model to train (modified in place).
        x, y:
            Training inputs and integer labels.
        sample_weight:
            Optional non-negative per-sample weights; the loss normalises them
            to mean one inside each batch.
        x_val, y_val:
            Optional validation split, used for the history and early stopping.
        epoch_callback:
            Called as ``epoch_callback(epoch_index, history)`` after each epoch.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise DataError(f"training inputs must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise DataError("x and y must have the same number of rows")
        if len(x) == 0:
            raise DataError("cannot train on an empty dataset")
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape != (len(x),):
                raise DataError("sample_weight must be one weight per training row")
        has_validation = x_val is not None and y_val is not None

        history = TrainingHistory()
        best_val_loss = np.inf
        epochs_without_improvement = 0
        n = len(x)
        batch_size = min(self.config.batch_size, n)

        for epoch in range(self.config.epochs):
            order = self._rng.permutation(n) if self.config.shuffle else np.arange(n)
            epoch_losses: List[float] = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch_weight = sample_weight[idx] if sample_weight is not None else None
                loss_value = network.train_step_gradients(x[idx], y[idx], batch_weight)
                self.optimizer.step(network.layers)
                epoch_losses.append(loss_value)

            train_loss = float(np.mean(epoch_losses))
            train_acc = accuracy(y, network.predict(x))
            history.train_loss.append(train_loss)
            history.train_accuracy.append(train_acc)

            if has_validation:
                val_loss = network.compute_loss(x_val, y_val)
                val_acc = accuracy(np.asarray(y_val, dtype=int), network.predict(x_val))
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
            else:
                val_loss = train_loss

            if self.config.verbose:  # pragma: no cover - console output only
                print(
                    f"epoch {epoch + 1}/{self.config.epochs} "
                    f"loss={train_loss:.4f} acc={train_acc:.4f}"
                )

            if epoch_callback is not None:
                epoch_callback(epoch, history)

            if self.config.early_stopping_patience is not None:
                if val_loss < best_val_loss - self.config.min_delta:
                    best_val_loss = val_loss
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= self.config.early_stopping_patience:
                        break

        network.mark_trained()
        return history

    def evaluate(
        self, network: Sequential, x: np.ndarray, y: np.ndarray
    ) -> Dict[str, float]:
        """Return loss and accuracy of ``network`` on a held-out set."""
        y = np.asarray(y, dtype=int)
        return {
            "loss": network.compute_loss(x, y),
            "accuracy": accuracy(y, network.predict(x)),
        }


__all__ = ["Trainer", "TrainerConfig", "TrainingHistory"]
