"""Dense autoencoder used as a learned naturalness model.

The paper's RQ3 needs a *quantified naturalness* score as a proxy for the
local operational profile inside a cell.  One standard proxy is the
reconstruction error of an autoencoder trained on natural (operational) data:
inputs close to the data manifold reconstruct well, off-manifold perturbations
reconstruct poorly.  :class:`repro.naturalness.autoencoder` wraps this class
into a scorer; here we only provide the model and its training loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import RngLike, ensure_rng, spawn_rngs
from ..exceptions import ConfigurationError, NotFittedError
from .layers import Dense, ReLU, Sigmoid
from .losses import MeanSquaredError
from .network import Sequential
from .optimizers import Adam
from .trainer import Trainer, TrainerConfig


@dataclass
class AutoencoderConfig:
    """Architecture and training hyper-parameters for :class:`DenseAutoencoder`."""

    hidden_sizes: Sequence[int] = (32,)
    latent_dim: int = 8
    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    sigmoid_output: bool = True

    def __post_init__(self) -> None:
        if self.latent_dim <= 0:
            raise ConfigurationError("latent_dim must be positive")
        if any(h <= 0 for h in self.hidden_sizes):
            raise ConfigurationError("hidden sizes must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")


class DenseAutoencoder:
    """Symmetric dense autoencoder trained with mean squared error."""

    def __init__(
        self,
        input_dim: int,
        config: Optional[AutoencoderConfig] = None,
        rng: RngLike = None,
    ) -> None:
        if input_dim <= 0:
            raise ConfigurationError(f"input_dim must be positive, got {input_dim}")
        self.input_dim = input_dim
        self.config = config if config is not None else AutoencoderConfig()
        self._rng = ensure_rng(rng)
        self.network = self._build_network()
        self._fitted = False

    def _build_network(self) -> Sequential:
        cfg = self.config
        widths = list(cfg.hidden_sizes)
        encoder_dims = [self.input_dim] + widths + [cfg.latent_dim]
        decoder_dims = [cfg.latent_dim] + widths[::-1] + [self.input_dim]
        rngs = spawn_rngs(self._rng, len(encoder_dims) + len(decoder_dims))
        layers = []
        rng_index = 0
        for previous, width in zip(encoder_dims[:-1], encoder_dims[1:]):
            layers.append(Dense(previous, width, rng=rngs[rng_index]))
            layers.append(ReLU())
            rng_index += 1
        for previous, width in zip(decoder_dims[:-1], decoder_dims[1:-1]):
            layers.append(Dense(previous, width, rng=rngs[rng_index]))
            layers.append(ReLU())
            rng_index += 1
        layers.append(Dense(decoder_dims[-2], decoder_dims[-1], rng=rngs[rng_index]))
        if cfg.sigmoid_output:
            layers.append(Sigmoid())
        return Sequential(layers, loss=MeanSquaredError())

    def fit(self, x: np.ndarray) -> "DenseAutoencoder":
        """Train the autoencoder to reconstruct the rows of ``x``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ConfigurationError(
                f"expected training data of shape (n, {self.input_dim}), got {x.shape}"
            )
        cfg = self.config
        n = len(x)
        batch_size = min(cfg.batch_size, n)
        optimizer = Adam(learning_rate=cfg.learning_rate)
        for _ in range(cfg.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch = x[idx]
                logits = self.network.forward(batch, training=True)
                self.network.loss.forward(logits, batch)
                self.network.backward(self.network.loss.backward())
                optimizer.step(self.network.layers)
        self._fitted = True
        return self

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Return the autoencoder reconstruction of each row of ``x``."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return self.network.forward(x, training=False)

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-sample mean squared reconstruction error (lower = more natural)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        recon = self.reconstruct(x)
        return np.mean((recon - x) ** 2, axis=1)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("DenseAutoencoder.fit must be called first")

    @property
    def is_fitted(self) -> bool:
        return self._fitted


__all__ = ["DenseAutoencoder", "AutoencoderConfig"]
