"""Weight initialisation schemes for the numpy neural-network substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..config import DEFAULT_DTYPE, RngLike, ensure_rng
from ..exceptions import ConfigurationError

_VALID = ("he", "xavier", "lecun", "normal", "uniform", "zeros")


def initialize(
    shape: Tuple[int, ...],
    scheme: str = "he",
    rng: RngLike = None,
    scale: float = 0.05,
) -> np.ndarray:
    """Create an initial weight tensor.

    Parameters
    ----------
    shape:
        Shape of the tensor to create.  The first axis is treated as the
        fan-in and the second as the fan-out for the variance-scaling schemes.
    scheme:
        One of ``"he"``, ``"xavier"``, ``"lecun"``, ``"normal"``,
        ``"uniform"`` or ``"zeros"``.
    rng:
        Seed or generator for the random draw.
    scale:
        Standard deviation (``"normal"``) or half-width (``"uniform"``) for
        the non-variance-scaling schemes.
    """
    if scheme not in _VALID:
        raise ConfigurationError(
            f"unknown initialisation scheme {scheme!r}; expected one of {_VALID}"
        )
    generator = ensure_rng(rng)
    if scheme == "zeros":
        return np.zeros(shape, dtype=DEFAULT_DTYPE)

    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    fan_in = max(fan_in, 1)
    fan_out = int(shape[0]) if len(shape) > 1 else int(shape[0])
    fan_out = max(fan_out, 1)

    if scheme == "he":
        std = np.sqrt(2.0 / fan_in)
        values = generator.normal(0.0, std, size=shape)
    elif scheme == "xavier":
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        values = generator.uniform(-limit, limit, size=shape)
    elif scheme == "lecun":
        std = np.sqrt(1.0 / fan_in)
        values = generator.normal(0.0, std, size=shape)
    elif scheme == "normal":
        values = generator.normal(0.0, scale, size=shape)
    else:  # uniform
        values = generator.uniform(-scale, scale, size=shape)
    return values.astype(DEFAULT_DTYPE)
