"""Classification metrics used by the trainer, reliability assessor and benches."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import EPSILON
from ..exceptions import ShapeError


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"y_true and y_pred must have the same shape, got {y_true.shape} vs {y_pred.shape}"
        )


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions equal to the ground truth."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    _check_pair(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def weighted_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, weights: np.ndarray
) -> float:
    """Accuracy where each sample counts with a non-negative weight.

    This is *operational accuracy* when the weights are operational-profile
    densities: it estimates the probability that the model handles a randomly
    drawn operational input correctly.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    weights = np.asarray(weights, dtype=float)
    _check_pair(y_true, y_pred)
    if weights.shape != y_true.shape:
        raise ShapeError("weights must match the label arrays in shape")
    if np.any(weights < 0):
        raise ShapeError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        return 0.0
    return float(np.sum((y_true == y_pred) * weights) / total)


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix (rows = truth)."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    _check_pair(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[t, p] += 1
    return matrix


def per_class_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Accuracy computed separately for each true class (NaN-free: 0 if unseen)."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    totals = matrix.sum(axis=1)
    correct = np.diag(matrix)
    return np.where(totals > 0, correct / np.maximum(totals, 1), 0.0)


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Per-class precision, recall and F1 scores."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    true_pos = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    precision = true_pos / np.maximum(predicted, EPSILON)
    recall = true_pos / np.maximum(actual, EPSILON)
    f1 = 2 * precision * recall / np.maximum(precision + recall, EPSILON)
    return {"precision": precision, "recall": recall, "f1": f1}


def cross_entropy(probs: np.ndarray, y_true: np.ndarray) -> float:
    """Mean negative log-likelihood of the true labels under ``probs``."""
    probs = np.asarray(probs, dtype=float)
    y_true = np.asarray(y_true, dtype=int)
    if probs.ndim != 2 or probs.shape[0] != y_true.shape[0]:
        raise ShapeError("probs must be (n, k) matching y_true length")
    picked = probs[np.arange(len(y_true)), y_true]
    return float(np.mean(-np.log(np.maximum(picked, EPSILON))))


def prediction_margin(probs: np.ndarray, y_true: np.ndarray) -> np.ndarray:
    """Margin = p(true class) - max p(other class); negative means misclassified."""
    probs = np.asarray(probs, dtype=float)
    y_true = np.asarray(y_true, dtype=int)
    if probs.ndim != 2 or probs.shape[0] != y_true.shape[0]:
        raise ShapeError("probs must be (n, k) matching y_true length")
    n = probs.shape[0]
    true_probs = probs[np.arange(n), y_true]
    masked = probs.copy()
    masked[np.arange(n), y_true] = -np.inf
    best_other = masked.max(axis=1)
    return true_probs - best_other


__all__ = [
    "accuracy",
    "weighted_accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "precision_recall_f1",
    "cross_entropy",
    "prediction_margin",
]
