"""Saving and loading network weights as ``.npz`` archives.

Only parameters are persisted; the architecture is reconstructed by the caller
(e.g. via :mod:`repro.nn.models` factories) and the weights are then loaded
into it.  This mirrors the state-dict convention of mainstream frameworks and
keeps the archive format a plain, inspectable numpy file.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..exceptions import ShapeError
from .network import Sequential

#: Paths are accepted as plain strings or any ``os.PathLike`` (``pathlib.Path``).
PathLike = Union[str, os.PathLike]

_KEY_SEPARATOR = "::"


def weights_to_flat_dict(weights: List[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Flatten per-layer weight dicts into ``{"<idx>::<name>": array}``."""
    flat: Dict[str, np.ndarray] = {}
    for index, layer_weights in enumerate(weights):
        for name, value in layer_weights.items():
            flat[f"{index}{_KEY_SEPARATOR}{name}"] = value
    return flat


def flat_dict_to_weights(flat: Dict[str, np.ndarray]) -> List[Dict[str, np.ndarray]]:
    """Inverse of :func:`weights_to_flat_dict`."""
    if not flat:
        return []
    layered: Dict[int, Dict[str, np.ndarray]] = {}
    max_index = -1
    for key, value in flat.items():
        index_str, _, name = key.partition(_KEY_SEPARATOR)
        if not name:
            raise ShapeError(f"malformed weight key {key!r}")
        try:
            index = int(index_str)
        except ValueError as exc:
            raise ShapeError(f"malformed weight key {key!r}") from exc
        layered.setdefault(index, {})[name] = value
        max_index = max(max_index, index)
    return [layered.get(i, {}) for i in range(max_index + 1)]


def save_weights(network: Sequential, path: PathLike) -> None:
    """Save the network's parameters to ``path`` as a compressed ``.npz``.

    ``path`` may be a string or a :class:`pathlib.Path`; missing parent
    directories are created, so checkpoint/registry code can save straight
    into fresh run directories.
    """
    path = Path(path)
    path.resolve().parent.mkdir(parents=True, exist_ok=True)
    flat = weights_to_flat_dict(network.get_weights())
    np.savez_compressed(path, **flat)


def load_weights(network: Sequential, path: PathLike) -> None:
    """Load parameters saved by :func:`save_weights` into ``network`` in place."""
    with np.load(Path(path)) as archive:
        flat = {key: archive[key] for key in archive.files}
    weights = flat_dict_to_weights(flat)
    # np.load drops empty dicts for parameter-free layers; pad to the layer count.
    while len(weights) < len(network.layers):
        weights.append({})
    network.set_weights(weights)


__all__ = [
    "save_weights",
    "load_weights",
    "weights_to_flat_dict",
    "flat_dict_to_weights",
]
