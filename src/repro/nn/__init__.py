"""Numpy deep-learning substrate used by the operational-AE testing pipeline.

The package provides everything the paper's machinery needs from a DL
framework: layered feed-forward networks with full backpropagation (including
gradients with respect to inputs), losses with per-sample weights, first-order
optimisers, a mini-batch trainer, weight serialisation, common architectures
and a dense autoencoder for naturalness scoring.
"""

from .autoencoder import AutoencoderConfig, DenseAutoencoder
from .initializers import initialize
from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    activation_from_name,
)
from .losses import (
    Loss,
    MeanSquaredError,
    NegativeLogLikelihood,
    SoftmaxCrossEntropy,
    loss_from_name,
)
from .metrics import (
    accuracy,
    confusion_matrix,
    cross_entropy,
    per_class_accuracy,
    precision_recall_f1,
    prediction_margin,
    weighted_accuracy,
)
from .models import (
    build_cnn_classifier,
    build_logistic_regression,
    build_mlp_classifier,
)
from .network import Sequential
from .optimizers import SGD, Adam, Optimizer, RMSProp, optimizer_from_name
from .serialization import load_weights, save_weights
from .trainer import Trainer, TrainerConfig, TrainingHistory

__all__ = [
    "AutoencoderConfig",
    "DenseAutoencoder",
    "initialize",
    "BatchNorm",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "LeakyReLU",
    "MaxPool2D",
    "ReLU",
    "Reshape",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "activation_from_name",
    "Loss",
    "MeanSquaredError",
    "NegativeLogLikelihood",
    "SoftmaxCrossEntropy",
    "loss_from_name",
    "accuracy",
    "confusion_matrix",
    "cross_entropy",
    "per_class_accuracy",
    "precision_recall_f1",
    "prediction_margin",
    "weighted_accuracy",
    "build_cnn_classifier",
    "build_logistic_regression",
    "build_mlp_classifier",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "RMSProp",
    "optimizer_from_name",
    "load_weights",
    "save_weights",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
]
