"""Loss functions for the numpy neural-network substrate.

Every loss supports optional per-sample weights.  Sample weights are the hook
the paper's RQ4 (operational-profile-aware retraining) needs: detected
operational AEs are mixed into the training set with weights proportional to
their operational-profile density.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import EPSILON
from ..exceptions import ShapeError


def _normalise_sample_weight(
    n: int, sample_weight: Optional[np.ndarray]
) -> np.ndarray:
    """Return per-sample weights that average to one over the batch."""
    if sample_weight is None:
        return np.ones(n)
    weights = np.asarray(sample_weight, dtype=float)
    if weights.shape != (n,):
        raise ShapeError(
            f"sample_weight must have shape ({n},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise ShapeError("sample_weight entries must be non-negative")
    total = weights.sum()
    if total <= 0:
        return np.ones(n)
    return weights * (n / total)


class Loss:
    """Base class for losses operating on raw network outputs (logits)."""

    def forward(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> float:
        """Return the scalar mean loss for the batch."""
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Return the gradient of the mean loss w.r.t. the predictions."""
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy on integer class labels.

    Fusing the two keeps the backward pass simple and numerically stable:
    ``dL/dlogits = (softmax - onehot) / n`` scaled by the sample weights.
    """

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None

    @staticmethod
    def softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def forward(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> float:
        if predictions.ndim != 2:
            raise ShapeError(f"logits must be 2-D, got shape {predictions.shape}")
        targets = np.asarray(targets, dtype=int)
        if targets.ndim != 1 or targets.shape[0] != predictions.shape[0]:
            raise ShapeError(
                f"targets must be 1-D with length {predictions.shape[0]}, got {targets.shape}"
            )
        if targets.min(initial=0) < 0 or targets.max(initial=0) >= predictions.shape[1]:
            raise ShapeError("target labels out of range for the given logits")
        n = predictions.shape[0]
        weights = _normalise_sample_weight(n, sample_weight)
        probs = self.softmax(predictions)
        picked = probs[np.arange(n), targets]
        losses = -np.log(np.maximum(picked, EPSILON))
        self._probs = probs
        self._targets = targets
        self._weights = weights
        return float(np.mean(losses * weights))

    def backward(self) -> np.ndarray:
        if self._probs is None:
            raise ShapeError("backward called before forward on SoftmaxCrossEntropy")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        grad *= self._weights[:, None]
        return grad / n


class MeanSquaredError(Loss):
    """Mean squared error, used mainly by the naturalness autoencoder."""

    def __init__(self) -> None:
        self._diff: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None

    def forward(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> float:
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"predictions and targets must match, got {predictions.shape} vs {targets.shape}"
            )
        n = predictions.shape[0]
        weights = _normalise_sample_weight(n, sample_weight)
        self._diff = predictions - targets
        self._weights = weights
        per_sample = np.mean(self._diff**2, axis=tuple(range(1, predictions.ndim)))
        return float(np.mean(per_sample * weights))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise ShapeError("backward called before forward on MeanSquaredError")
        n = self._diff.shape[0]
        per_feature = int(np.prod(self._diff.shape[1:])) or 1
        shape = (n,) + (1,) * (self._diff.ndim - 1)
        return 2.0 * self._diff * self._weights.reshape(shape) / (n * per_feature)


class NegativeLogLikelihood(Loss):
    """Cross-entropy on probabilities that are already normalised."""

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None

    def forward(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> float:
        targets = np.asarray(targets, dtype=int)
        n = predictions.shape[0]
        if targets.shape != (n,):
            raise ShapeError(f"targets must have shape ({n},), got {targets.shape}")
        weights = _normalise_sample_weight(n, sample_weight)
        picked = predictions[np.arange(n), targets]
        self._probs = predictions
        self._targets = targets
        self._weights = weights
        return float(np.mean(-np.log(np.maximum(picked, EPSILON)) * weights))

    def backward(self) -> np.ndarray:
        if self._probs is None:
            raise ShapeError("backward called before forward on NegativeLogLikelihood")
        n = self._probs.shape[0]
        grad = np.zeros_like(self._probs)
        picked = np.maximum(self._probs[np.arange(n), self._targets], EPSILON)
        grad[np.arange(n), self._targets] = -1.0 / picked
        grad *= self._weights[:, None]
        return grad / n


def loss_from_name(name: str) -> Loss:
    """Create a loss object from its lowercase name."""
    table = {
        "cross_entropy": SoftmaxCrossEntropy,
        "softmax_cross_entropy": SoftmaxCrossEntropy,
        "mse": MeanSquaredError,
        "nll": NegativeLogLikelihood,
    }
    if name not in table:
        raise ShapeError(f"unknown loss {name!r}; expected one of {sorted(table)}")
    return table[name]()


__all__ = [
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "NegativeLogLikelihood",
    "loss_from_name",
]
