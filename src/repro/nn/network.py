"""Sequential network container with input-gradient support.

The container chains layers, exposes the :class:`repro.types.Classifier`
protocol (``predict``, ``predict_proba``, ``loss_input_gradient``), and keeps
the loss object alongside the layers so attacks and the fuzzer can ask for the
gradient of the loss with respect to an *input* — the key primitive of RQ3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..config import DEFAULT_DTYPE
from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from .layers import Layer
from .losses import Loss, SoftmaxCrossEntropy


class Sequential:
    """A feed-forward stack of layers trained against a single loss.

    Parameters
    ----------
    layers:
        Ordered layers.  The final layer is expected to emit logits when the
        loss is :class:`SoftmaxCrossEntropy` (the default).
    loss:
        Loss object used by :meth:`compute_loss` and by
        :meth:`loss_input_gradient`.
    """

    def __init__(self, layers: Sequence[Layer], loss: Optional[Loss] = None) -> None:
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)
        self.loss: Loss = loss if loss is not None else SoftmaxCrossEntropy()
        self._trained = False

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass and return the final layer output (logits)."""
        if (
            isinstance(x, np.ndarray)
            and x.dtype == DEFAULT_DTYPE
            and x.flags["C_CONTIGUOUS"]
        ):
            out = x
        else:
            # one conversion that also guarantees contiguity for the matmuls
            out = np.ascontiguousarray(x, dtype=DEFAULT_DTYPE)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient through every layer, returning dL/dx."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------ #
    # Classifier protocol
    # ------------------------------------------------------------------ #
    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Return raw logits for a batch (no softmax applied)."""
        return self.forward(x, training=False)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Return softmax class probabilities, shape ``(n, num_classes)``."""
        logits = self.predict_logits(x)
        return SoftmaxCrossEntropy.softmax(logits)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return the predicted class label for each input."""
        return self.predict_logits(x).argmax(axis=1)

    def compute_loss(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        training: bool = False,
    ) -> float:
        """Return the mean loss of the network on ``(x, y)``."""
        logits = self.forward(x, training=training)
        return self.loss.forward(logits, y, sample_weight=sample_weight)

    def per_sample_loss(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return the cross-entropy loss of each sample individually."""
        probs = self.predict_proba(x)
        y = np.asarray(y, dtype=int)
        if y.shape[0] != probs.shape[0]:
            raise ShapeError("x and y disagree on batch size in per_sample_loss")
        picked = probs[np.arange(len(y)), y]
        return -np.log(np.maximum(picked, 1e-12))

    def loss_input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to the inputs ``x``.

        This is the primitive used by FGSM/PGD and by the gradient-guidance
        term of the operational fuzzer.  The returned array has the same shape
        as ``x`` (a leading batch axis is added and removed transparently for
        single inputs).
        """
        x_arr = np.asarray(x, dtype=DEFAULT_DTYPE)
        single = x_arr.ndim == 1
        batch = x_arr[None, :] if single else x_arr
        y_arr = np.atleast_1d(np.asarray(y, dtype=int))
        logits = self.forward(batch, training=False)
        self.loss.forward(logits, y_arr)
        grad = self.backward(self.loss.backward())
        return grad[0] if single else grad

    # ------------------------------------------------------------------ #
    # training-step plumbing (used by the Trainer)
    # ------------------------------------------------------------------ #
    def train_step_gradients(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> float:
        """Run forward + backward, leaving parameter gradients in the layers."""
        logits = self.forward(x, training=True)
        value = self.loss.forward(logits, y, sample_weight=sample_weight)
        self.backward(self.loss.backward())
        return value

    # ------------------------------------------------------------------ #
    # weights access / cloning
    # ------------------------------------------------------------------ #
    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Return a deep copy of every layer's parameters (one dict per layer)."""
        return [
            {name: param.copy() for name, param in layer.parameters().items()}
            for layer in self.layers
        ]

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ShapeError(
                f"expected weights for {len(self.layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(self.layers, weights):
            params = layer.parameters()
            if set(params) != set(layer_weights):
                raise ShapeError(
                    f"parameter names mismatch for {type(layer).__name__}: "
                    f"{sorted(params)} vs {sorted(layer_weights)}"
                )
            for name, value in layer_weights.items():
                if params[name].shape != value.shape:
                    raise ShapeError(
                        f"shape mismatch for {type(layer).__name__}.{name}: "
                        f"{params[name].shape} vs {value.shape}"
                    )
                params[name][...] = value

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(
            sum(param.size for layer in self.layers for param in layer.parameters().values())
        )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        """Whether a Trainer has marked this network as trained."""
        return self._trained

    def mark_trained(self) -> None:
        """Record that the network has been through at least one fit."""
        self._trained = True

    def require_trained(self) -> None:
        """Raise :class:`NotFittedError` unless the network has been trained."""
        if not self._trained:
            raise NotFittedError("the network has not been trained yet")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


__all__ = ["Sequential"]
