"""Neural-network layers with explicit forward/backward passes.

Each layer implements :meth:`Layer.forward` and :meth:`Layer.backward`; the
backward pass receives the gradient of the loss with respect to the layer's
output and returns the gradient with respect to its input, accumulating
parameter gradients along the way.  This manual-backprop design is all the
paper's machinery needs: attacks and the fuzzer only require gradients of the
loss with respect to the *input*, which falls out of the same chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_DTYPE, RngLike, ensure_rng
from ..exceptions import ConfigurationError, ShapeError
from .initializers import initialize


class Layer:
    """Base class for all layers."""

    #: Whether the layer owns trainable parameters.
    trainable: bool = False

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``grad_output`` (dL/d output) back to dL/d input."""
        raise NotImplementedError

    def parameters(self) -> Dict[str, np.ndarray]:
        """Return the layer's trainable parameters keyed by name."""
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Return gradients matching :meth:`parameters` after a backward pass."""
        return {}

    def output_dim(self, input_dim: int) -> int:
        """Return the flattened output dimension given a flattened input dimension."""
        return input_dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected affine layer ``y = x W + b``."""

    trainable = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: str = "he",
        rng: RngLike = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Dense dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = initialize((in_features, out_features), weight_init, rng)
        self.bias = np.zeros(out_features, dtype=DEFAULT_DTYPE)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense expected input of shape (n, {self.in_features}), got {x.shape}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ShapeError("backward called before forward on Dense layer")
        self.grad_weight = self._input.T @ grad_output
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def output_dim(self, input_dim: int) -> int:
        return self.out_features

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ConfigurationError("negative_slope must be >= 0")
        self.negative_slope = negative_slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._output**2)


class Softmax(Layer):
    """Numerically stable softmax over the last axis.

    Usually cross-entropy is fused with softmax in
    :class:`repro.nn.losses.SoftmaxCrossEntropy`; this standalone layer exists
    for models that expose probabilities directly.
    """

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=-1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        s = self._output
        dot = np.sum(grad_output * s, axis=-1, keepdims=True)
        return s * (grad_output - dot)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, rng: RngLike = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm(Layer):
    """Batch normalisation over feature columns with running statistics."""

    trainable = True

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        if num_features <= 0:
            raise ConfigurationError("num_features must be positive")
        if not 0.0 < momentum < 1.0:
            raise ConfigurationError("momentum must be in (0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features, dtype=DEFAULT_DTYPE)
        self.beta = np.zeros(num_features, dtype=DEFAULT_DTYPE)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(num_features, dtype=DEFAULT_DTYPE)
        self.running_var = np.ones(num_features, dtype=DEFAULT_DTYPE)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm expected {self.num_features} features, got {x.shape[1]}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std, x - mean)
        return self.gamma * x_hat + self.beta

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, std, centered = self._cache
        n = grad_output.shape[0]
        self.grad_gamma = np.sum(grad_output * x_hat, axis=0)
        self.grad_beta = np.sum(grad_output, axis=0)
        dx_hat = grad_output * self.gamma
        dvar = np.sum(dx_hat * centered * -0.5 / std**3, axis=0)
        dmean = np.sum(-dx_hat / std, axis=0) + dvar * np.mean(-2.0 * centered, axis=0)
        return dx_hat / std + dvar * 2.0 * centered / n + dmean / n

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"gamma": self.grad_gamma, "beta": self.grad_beta}


class Flatten(Layer):
    """Flatten any trailing axes into a single feature axis."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class Reshape(Layer):
    """Reshape a flat feature axis into a target shape (excluding batch)."""

    def __init__(self, target_shape: Tuple[int, ...]) -> None:
        if any(int(s) <= 0 for s in target_shape):
            raise ConfigurationError(f"target_shape entries must be positive, got {target_shape}")
        self.target_shape = tuple(int(s) for s in target_shape)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        expected = int(np.prod(self.target_shape))
        if int(np.prod(x.shape[1:])) != expected:
            raise ShapeError(
                f"cannot reshape features of size {int(np.prod(x.shape[1:]))} "
                f"into {self.target_shape}"
            )
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)

    def output_dim(self, input_dim: int) -> int:
        return int(np.prod(self.target_shape))


def _im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns for convolution via matmul."""
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.zeros((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for i in range(kernel):
        i_max = i + stride * out_h
        for j in range(kernel):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`, scattering column gradients back to images."""
    n, c, h, w = input_shape
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel):
        i_max = i + stride * out_h
        for j in range(kernel):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2D(Layer):
    """2-D convolution over ``(n, channels, height, width)`` inputs."""

    trainable = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        weight_init: str = "he",
        rng: RngLike = None,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ConfigurationError("invalid Conv2D hyper-parameters")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = initialize((out_channels, fan_in), weight_init, rng).reshape(
            out_channels, in_channels, kernel_size, kernel_size
        )
        self.bias = np.zeros(out_channels, dtype=DEFAULT_DTYPE)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int], int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2D expected (n, {self.in_channels}, h, w), got {x.shape}"
            )
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.bias
        out = out.reshape(x.shape[0], out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (cols, x.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cols, input_shape, out_h, out_w = self._cache
        n = input_shape[0]
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        w_mat = self.weight.reshape(self.out_channels, -1)
        self.grad_weight = (grad_mat.T @ cols).reshape(self.weight.shape)
        self.grad_bias = grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat
        return _col2im(
            grad_cols, input_shape, self.kernel_size, self.stride, self.padding, out_h, out_w
        )

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}


class MaxPool2D(Layer):
    """Max pooling over ``(n, channels, height, width)`` inputs."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None) -> None:
        if pool_size <= 0:
            raise ConfigurationError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        out = np.zeros((n, c, out_h, out_w), dtype=x.dtype)
        mask = np.zeros_like(x, dtype=bool)
        for i in range(out_h):
            for j in range(out_w):
                window = x[:, :, i * s : i * s + k, j * s : j * s + k]
                flat = window.reshape(n, c, -1)
                arg = flat.argmax(axis=2)
                out[:, :, i, j] = np.take_along_axis(flat, arg[:, :, None], axis=2)[:, :, 0]
                local_mask = np.zeros_like(flat, dtype=bool)
                np.put_along_axis(local_mask, arg[:, :, None], True, axis=2)
                mask[:, :, i * s : i * s + k, j * s : j * s + k] |= local_mask.reshape(window.shape)
        self._cache = (x.shape, mask, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, mask, out_h, out_w = self._cache
        k, s = self.pool_size, self.stride
        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        for i in range(out_h):
            for j in range(out_w):
                window_mask = mask[:, :, i * s : i * s + k, j * s : j * s + k]
                grad_input[:, :, i * s : i * s + k, j * s : j * s + k] += (
                    window_mask * grad_output[:, :, i, j][:, :, None, None]
                )
        return grad_input


def activation_from_name(name: str) -> Layer:
    """Create an activation layer from its lowercase name."""
    table = {
        "relu": ReLU,
        "leaky_relu": LeakyReLU,
        "sigmoid": Sigmoid,
        "tanh": Tanh,
        "softmax": Softmax,
    }
    if name not in table:
        raise ConfigurationError(
            f"unknown activation {name!r}; expected one of {sorted(table)}"
        )
    return table[name]()


__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm",
    "Flatten",
    "Reshape",
    "Conv2D",
    "MaxPool2D",
    "activation_from_name",
]
