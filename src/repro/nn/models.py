"""Factory functions for the model architectures used throughout the repo.

Three classifier families cover the paper's use cases:

* :func:`build_mlp_classifier` — the workhorse for low-dimensional synthetic
  benchmarks and for the flattened glyph images.
* :func:`build_cnn_classifier` — a small convolutional network for square
  image inputs, demonstrating that the testing pipeline is architecture
  agnostic.
* :func:`build_logistic_regression` — a deliberately weak linear baseline with
  many adversarial examples, useful for exercising detection code paths.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import RngLike, spawn_rngs
from ..exceptions import ConfigurationError
from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Reshape,
)
from .losses import SoftmaxCrossEntropy
from .network import Sequential


def build_mlp_classifier(
    input_dim: int,
    num_classes: int,
    hidden_sizes: Sequence[int] = (64, 32),
    dropout: float = 0.0,
    batch_norm: bool = False,
    rng: RngLike = None,
) -> Sequential:
    """Build a multi-layer perceptron classifier emitting logits.

    Parameters
    ----------
    input_dim:
        Number of (flattened) input features.
    num_classes:
        Number of output classes.
    hidden_sizes:
        Width of each hidden layer, in order.
    dropout:
        Dropout rate applied after every hidden activation (0 disables it).
    batch_norm:
        Whether to insert batch normalisation after every hidden affine layer.
    rng:
        Seed or generator controlling weight initialisation and dropout masks.
    """
    if input_dim <= 0 or num_classes <= 1:
        raise ConfigurationError(
            f"need input_dim > 0 and num_classes > 1, got {input_dim}, {num_classes}"
        )
    rngs = spawn_rngs(rng, len(hidden_sizes) + len(hidden_sizes) + 1)
    rng_index = 0
    layers = []
    previous = input_dim
    for width in hidden_sizes:
        if width <= 0:
            raise ConfigurationError(f"hidden layer width must be positive, got {width}")
        layers.append(Dense(previous, width, rng=rngs[rng_index]))
        rng_index += 1
        if batch_norm:
            layers.append(BatchNorm(width))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, rng=rngs[rng_index]))
        rng_index += 1
        previous = width
    layers.append(Dense(previous, num_classes, rng=rngs[rng_index]))
    return Sequential(layers, loss=SoftmaxCrossEntropy())


def build_logistic_regression(
    input_dim: int, num_classes: int, rng: RngLike = None
) -> Sequential:
    """Build a single affine layer classifier (multinomial logistic regression)."""
    if input_dim <= 0 or num_classes <= 1:
        raise ConfigurationError(
            f"need input_dim > 0 and num_classes > 1, got {input_dim}, {num_classes}"
        )
    return Sequential(
        [Dense(input_dim, num_classes, weight_init="xavier", rng=rng)],
        loss=SoftmaxCrossEntropy(),
    )


def build_cnn_classifier(
    image_size: int,
    num_classes: int,
    channels: int = 1,
    conv_channels: Sequence[int] = (8, 16),
    dense_width: int = 64,
    rng: RngLike = None,
) -> Sequential:
    """Build a small convolutional classifier for flattened square images.

    The network accepts flattened inputs of dimension
    ``channels * image_size * image_size`` (the library convention) and
    internally reshapes them to ``(n, channels, image_size, image_size)``.
    """
    if image_size < 4:
        raise ConfigurationError(f"image_size must be at least 4, got {image_size}")
    if num_classes <= 1:
        raise ConfigurationError(f"num_classes must be > 1, got {num_classes}")
    rngs = spawn_rngs(rng, len(conv_channels) + 2)
    layers = [Reshape((channels, image_size, image_size))]
    in_channels = channels
    spatial = image_size
    for index, out_channels in enumerate(conv_channels):
        layers.append(
            Conv2D(in_channels, out_channels, kernel_size=3, stride=1, padding=1, rng=rngs[index])
        )
        layers.append(ReLU())
        layers.append(MaxPool2D(pool_size=2))
        in_channels = out_channels
        spatial //= 2
        if spatial < 2:
            raise ConfigurationError(
                "too many conv/pool stages for this image size; reduce conv_channels"
            )
    layers.append(Flatten())
    flattened = in_channels * spatial * spatial
    layers.append(Dense(flattened, dense_width, rng=rngs[-2]))
    layers.append(ReLU())
    layers.append(Dense(dense_width, num_classes, rng=rngs[-1]))
    return Sequential(layers, loss=SoftmaxCrossEntropy())


__all__ = [
    "build_mlp_classifier",
    "build_logistic_regression",
    "build_cnn_classifier",
]
