"""Global configuration helpers shared across the library.

The library never touches :mod:`numpy`'s global random state.  Every stochastic
component accepts either an integer seed or a :class:`numpy.random.Generator`
and converts it through :func:`ensure_rng`, so experiments are reproducible by
construction and independent components can be seeded independently.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .exceptions import ConfigurationError

#: Type accepted everywhere a random source is needed.
RngLike = Union[None, int, np.random.Generator]

#: Default floating point dtype used by the numpy neural-network substrate.
DEFAULT_DTYPE = np.float64

#: Numerical floor used to avoid log(0) / division by zero in probabilities.
EPSILON = 1e-12


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator or ``None``.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing :class:`numpy.random.Generator` which is returned unchanged.
    """
    if rng is None:
        # the one documented opt-in to nondeterminism: callers who pass None
        # explicitly ask for an unseeded generator (see docstring above)
        return np.random.default_rng()  # repro: allow[rng-discipline]
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ConfigurationError(f"random seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise ConfigurationError(
        f"expected None, int seed or numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Split one random source into ``count`` independent child generators."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**31 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


@dataclass(frozen=True)
class GlobalConfig:
    """Library-wide defaults bundled in one immutable object.

    Attributes
    ----------
    dtype:
        Floating point dtype used by the neural-network substrate.
    epsilon:
        Numerical floor for probabilities and denominators.
    default_seed:
        Seed used by example scripts and benchmarks when none is supplied.
    """

    dtype: np.dtype = DEFAULT_DTYPE
    epsilon: float = EPSILON
    default_seed: Optional[int] = 2021  # year of the paper


#: Singleton default configuration used by examples and benchmarks.
DEFAULTS = GlobalConfig()


def clip01(x: np.ndarray) -> np.ndarray:
    """Clip an array into the canonical ``[0, 1]`` input domain."""
    return np.clip(x, 0.0, 1.0)


#: Environment variable overriding where ``python -m repro`` keeps its runs.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"


def default_runs_dir() -> Path:
    """Root of the run registry used by the CLI when ``--runs-dir`` is omitted.

    Controlled by the ``REPRO_RUNS_DIR`` environment variable so shared
    (cross-host) registries need no per-command flag; defaults to
    ``./repro-runs``.
    """
    return Path(os.environ.get(RUNS_DIR_ENV, "repro-runs"))
