"""``CampaignSpec`` — a whole testing campaign as one declarative document.

A campaign spec bundles everything needed to reproduce a run of the paper's
testing loop: the scenario to prepare, the fuzzer hyper-parameters, the
workflow and stopping settings, the campaign seed and one
:class:`~repro.runtime.ExecutionPolicy`.  Specs are plain JSON (or TOML)
files::

    {
      "name": "two-moons-small",
      "seed": 2021,
      "scenario": {"name": "two-moons", "samples": 300, "epochs": 6},
      "fuzzer":   {"queries_per_seed": 6},
      "workflow": {"test_budget_per_iteration": 80, "seeds_per_iteration": 4},
      "stopping": {"target_pmi": 0.02, "max_iterations": 1},
      "policy":   {"backend": "batched", "cache": true, "checkpoint_every": 1}
    }

``python -m repro run --spec campaign.json`` consumes such a file, records
it **verbatim** in the run registry (``run.json``'s ``config.spec``), and
``python -m repro run --from-run <id>`` re-launches a campaign from a stored
run's spec — so a stored run is reproducible from its spec alone.

Section keys are validated against the target configuration objects, and the
*legacy* execution knobs (``num_workers``, ``cache_dir``, ...) are rejected
outright: in a spec the execution surface lives in the ``policy`` section,
nowhere else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from .policy import ExecutionPolicy, load_structured_file

#: Keys of the ``scenario`` section (``samples`` maps onto the scenario
#: factories' ``num_samples``).  Any *other* key is passed through to the
#: named scenario factory, so scenario-specific settings (``noise``,
#: ``image_size``, ``num_classes``, ...) remain reachable — an unknown one
#: fails loudly inside the factory at build time.
SCENARIO_KEY_ALIASES = {"samples": "num_samples"}

_SECTIONS = ("scenario", "fuzzer", "workflow", "stopping", "policy")


def _section_fields(section: str) -> Tuple[set, set]:
    """(allowed keys, legacy keys) of one spec section's target dataclass."""
    # imported lazily: the spec module sits below the subsystems in the
    # package graph, and only needs them once a spec is actually validated
    if section == "fuzzer":
        from ..fuzzing.fuzzer import FUZZER_LEGACY_KNOBS, FuzzerConfig

        legacy = set(FUZZER_LEGACY_KNOBS)
        return set(FuzzerConfig.__dataclass_fields__) - legacy - {"policy"}, legacy
    if section == "workflow":
        from ..core.workflow import WORKFLOW_LEGACY_KNOBS, WorkflowConfig

        legacy = set(WORKFLOW_LEGACY_KNOBS)
        return set(WorkflowConfig.__dataclass_fields__) - legacy - {"policy"}, legacy
    if section == "stopping":
        from ..reliability.assessment import StoppingRule

        return set(StoppingRule.__dataclass_fields__), set()
    raise ConfigurationError(f"unknown spec section {section!r}")  # pragma: no cover


def _validate_section(section: str, data: Mapping[str, object]) -> Dict[str, object]:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"spec section {section!r} must be a mapping")
    allowed, legacy = _section_fields(section)
    for key in data:
        if key in legacy:
            raise ConfigurationError(
                f"spec section {section!r} must not carry the legacy execution "
                f"knob {key!r}; the execution surface lives in the 'policy' "
                "section"
            )
        if key not in allowed:
            raise ConfigurationError(
                f"unknown key {key!r} in spec section {section!r}; "
                f"expected a subset of {sorted(allowed)}"
            )
    if section == "fuzzer" and data.get("execution") == "sharded":
        # "sharded" is itself a deprecated alias (and would silently override
        # policy.backend): in a spec the backend lives in the policy section
        raise ConfigurationError(
            "spec section 'fuzzer' must not use execution='sharded'; set "
            "backend='sharded' in the 'policy' section (execution selects "
            "only the 'population'/'sequential' control flow)"
        )
    return dict(data)


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one operational-testing campaign.

    Attributes
    ----------
    scenario:
        Mapping with at least ``name`` (a
        :func:`repro.evaluation.make_scenario` name); ``samples``/``epochs``
        and any scenario-specific factory keyword ride along.
    policy:
        The campaign's :class:`ExecutionPolicy` (drives the fuzzer, the
        reliability assessor and the loop's checkpoint cadence).
    seed:
        Campaign RNG seed — the spec plus this seed reproduce the run.
    name:
        Registry display name (defaults to the scenario name).
    fuzzer, workflow, stopping:
        Keyword sections for :class:`repro.fuzzing.FuzzerConfig`,
        :class:`repro.core.WorkflowConfig` and
        :class:`repro.reliability.StoppingRule`; unknown and legacy keys are
        rejected at construction.
    """

    scenario: Mapping[str, object]
    policy: ExecutionPolicy = ExecutionPolicy()
    seed: int = 2021
    name: Optional[str] = None
    fuzzer: Mapping[str, object] = field(default_factory=dict)
    workflow: Mapping[str, object] = field(default_factory=dict)
    stopping: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.scenario, Mapping) or "name" not in self.scenario:
            raise ConfigurationError(
                "spec section 'scenario' must be a mapping with a 'name' key"
            )
        object.__setattr__(self, "scenario", dict(self.scenario))
        object.__setattr__(self, "fuzzer", _validate_section("fuzzer", self.fuzzer))
        object.__setattr__(self, "workflow", _validate_section("workflow", self.workflow))
        object.__setattr__(self, "stopping", _validate_section("stopping", self.stopping))
        if not isinstance(self.policy, ExecutionPolicy):
            raise ConfigurationError(
                "spec section 'policy' must be an ExecutionPolicy "
                "(or, in from_dict input, a mapping of its fields)"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigurationError(
                f"seed must be an integer, got {self.seed!r}"
            )
        if self.seed < 0:
            raise ConfigurationError("seed must be non-negative")

    @property
    def campaign_name(self) -> str:
        """Display name used by the run registry."""
        return self.name if self.name is not None else str(self.scenario["name"])

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (exact ``from_dict`` round-trip)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "scenario": dict(self.scenario),
            "fuzzer": dict(self.fuzzer),
            "workflow": dict(self.workflow),
            "stopping": dict(self.stopping),
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        """Build a spec from a parsed document, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ConfigurationError("a campaign spec must be a mapping")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign-spec keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "scenario" not in data:
            raise ConfigurationError("a campaign spec requires a 'scenario' section")
        payload = dict(data)
        policy = payload.get("policy", ExecutionPolicy())
        if isinstance(policy, Mapping):
            policy = ExecutionPolicy.from_dict(policy)
        payload["policy"] = policy
        return cls(**payload)

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the spec as JSON (parents created as needed)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a JSON (or TOML, by suffix) file."""
        return cls.from_dict(load_structured_file(path))

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def build(self):
        """Materialise ``(scenario, loop)`` — deterministic given the spec.

        The scenario is prepared from the ``scenario`` section and the
        campaign seed; the loop wires the spec's fuzzer/workflow/stopping
        sections together with the spec's policy driving both the fuzzer and
        the default reliability assessor.
        """
        from ..core.workflow import OperationalTestingLoop, WorkflowConfig
        from ..evaluation.scenarios import make_scenario
        from ..fuzzing.fuzzer import FuzzerConfig
        from ..reliability.assessment import StoppingRule

        overrides = {
            SCENARIO_KEY_ALIASES.get(key, key): value
            for key, value in self.scenario.items()
            if key != "name" and value is not None
        }
        scenario = make_scenario(
            str(self.scenario["name"]), rng=int(self.seed), **overrides
        )
        loop = OperationalTestingLoop(
            profile=scenario.profile,
            train_data=scenario.train_data,
            partition=scenario.partition,
            naturalness=scenario.naturalness,
            fuzzer_config=FuzzerConfig(**self.fuzzer, policy=self.policy),
            stopping_rule=StoppingRule(**self.stopping),
            workflow_config=WorkflowConfig(**self.workflow, policy=self.policy),
            rng=int(self.seed),
        )
        return scenario, loop


__all__ = ["SCENARIO_KEY_ALIASES", "CampaignSpec"]
