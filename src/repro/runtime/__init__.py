"""Runtime API: one execution policy, pluggable model backends, campaign specs.

This package is the single surface the whole system converges on for *how*
campaigns execute (the *what* stays with each subsystem's own config):

* :mod:`repro.runtime.policy` — :class:`ExecutionPolicy`, the frozen,
  serializable object capturing the entire execution surface (backend,
  workers, batching, caching, checkpoint cadence, RNG spawning), with a
  ``build_engine``/``session`` factory subsuming the former per-subsystem
  engine plumbing, plus the deprecation shims behind every legacy knob.
* :mod:`repro.runtime.backends` — the :class:`ModelBackend` protocol (the
  formerly implicit ``predict`` / ``predict_proba`` / ``loss_input_gradient``
  contract made explicit) and the open backend registry with the two
  shipping implementations: the in-process :class:`SequentialBackend` and
  the multi-worker :class:`ReplicatedBackend`.
* :mod:`repro.runtime.spec` — :class:`CampaignSpec`, the declarative
  JSON/TOML campaign description consumed by ``python -m repro run --spec``
  and recorded verbatim in the run registry.

Every subsystem (fuzzer, black-box attacks, reliability assessment, the
testing loop, scenarios, the CLI) accepts a single ``policy`` parameter;
results are bit-identical across policies by construction — only the
physical execution differs.
"""

# re-exported because they are ExecutionPolicy fields: callers configuring a
# policy should not need a second import root for its retry/faults values
from ..faults import FaultPlan, RetryPolicy
from .backends import (
    ModelBackend,
    ReplicatedBackend,
    SequentialBackend,
    available_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from .policy import (
    RNG_SPAWN_POLICIES,
    ExecutionPolicy,
    resolve_legacy_knobs,
    warn_legacy_knob,
)
from .spec import CampaignSpec

__all__ = [
    "ModelBackend",
    "SequentialBackend",
    "ReplicatedBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "RNG_SPAWN_POLICIES",
    "ExecutionPolicy",
    "RetryPolicy",
    "FaultPlan",
    "resolve_legacy_knobs",
    "warn_legacy_knob",
    "CampaignSpec",
]
