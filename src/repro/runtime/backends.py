"""Model backends: the explicit, registered execution interface.

Every subsystem of the reproduction ultimately talks to the model under test
through three methods — ``predict``, ``predict_proba`` and
``loss_input_gradient``.  Until this module that interface was *implicit*:
the engines satisfied it by construction and the only way to add a new
execution substrate (async dispatch, a remote service, thread pools) was to
grow another ``engine="..."`` string and thread it through sixteen configs.

:class:`ModelBackend` makes the interface explicit, and the registry below
makes the set of execution substrates open: a backend is registered under a
name, an :class:`repro.runtime.ExecutionPolicy` refers to it by that name,
and ``policy.build_engine(model, ...)`` constructs it.  Two backends ship:

* :class:`SequentialBackend` (``"batched"``) — in-process execution; every
  physical chunk runs on the coordinator (the PR 2 batching chassis).
* :class:`ReplicatedBackend` (``"sharded"``) — the PR 3 pickled-replica
  machinery; physical chunks fan out across worker processes holding exact
  model replicas, with bit-identical results by construction.

A third-party backend plugs in with::

    @register_backend("my-async")
    class AsyncBackend(BatchedQueryEngine):
        @classmethod
        def from_policy(cls, model, naturalness, policy, cache):
            ...

after which ``ExecutionPolicy(backend="my-async")`` selects it everywhere —
fuzzer, attacks, reliability assessment, scenarios, campaign specs — without
touching any of those subsystems.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..engine.batching import BatchedQueryEngine
from ..engine.parallel import ShardedQueryEngine
from ..exceptions import ConfigurationError


@runtime_checkable
class ModelBackend(Protocol):
    """The model interface an execution backend must serve.

    This is the formerly implicit contract between the testing machinery and
    whatever answers its queries: the raw model, the in-process engine, the
    replicated multi-worker engine, or any future substrate.  Implementations
    must be *exact* — two backends given the same model and the same inputs
    return bit-identical arrays, so campaign results never depend on the
    execution substrate.
    """

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels for a batch of inputs."""
        ...

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(n, num_classes)``."""
        ...

    def loss_input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gradient of the loss w.r.t. the inputs."""
        ...


#: Registered execution backends, keyed by the name an
#: :class:`~repro.runtime.ExecutionPolicy` selects them with.
_BACKENDS: Dict[str, type] = {}


def register_backend(name: str):
    """Class decorator registering an execution backend under ``name``.

    The class must provide a ``from_policy(model, naturalness, policy,
    cache)`` classmethod returning a ready :class:`BatchedQueryEngine`
    (sub)instance.  Names are unique; re-registering an existing name is an
    error (call :func:`unregister_backend` first if a plug-in really means
    to shadow a shipped backend).
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("backend name must be a non-empty string")

    def decorator(cls: type) -> type:
        if not callable(getattr(cls, "from_policy", None)):
            raise ConfigurationError(
                f"backend {cls.__name__} must define a from_policy(model, "
                "naturalness, policy, cache) classmethod"
            )
        if name in _BACKENDS:
            raise ConfigurationError(
                f"backend {name!r} is already registered "
                f"({_BACKENDS[name].__name__}); unregister_backend it first"
            )
        _BACKENDS[name] = cls
        cls.backend_name = name
        return cls

    return decorator


def unregister_backend(name: str) -> None:
    """Remove a registered backend (plug-in teardown; shipped names too)."""
    _BACKENDS.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Names accepted by ``ExecutionPolicy.backend``, sorted."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(name: str) -> type:
    """Look a backend class up by name, failing loudly with the valid names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; registered backends: "
            f"{list(available_backends())}"
        ) from None


@register_backend("batched")
class SequentialBackend(BatchedQueryEngine):
    """In-process backend: physical chunks execute sequentially on the
    coordinator.  The default — fastest for small per-row work, no pickling,
    no worker processes."""

    @classmethod
    def from_policy(cls, model, naturalness, policy, cache) -> "SequentialBackend":
        return cls(
            model,
            naturalness=naturalness,
            batch_size=policy.batch_size,
            cache=cache,
            cache_max_entries=policy.cache_max_entries,
        )


@register_backend("sharded")
class ReplicatedBackend(ShardedQueryEngine):
    """Replicated multi-worker backend: physical chunks fan out across
    ``policy.num_workers`` processes holding exact pickled replicas of the
    model (and naturalness scorer).  Bit-identical to the in-process backend
    by construction — see :mod:`repro.engine.parallel`."""

    @classmethod
    def from_policy(cls, model, naturalness, policy, cache) -> "ReplicatedBackend":
        return cls(
            model,
            naturalness=naturalness,
            batch_size=policy.batch_size,
            cache=cache,
            cache_max_entries=policy.cache_max_entries,
            num_workers=policy.num_workers,
            start_method=policy.start_method,
            transport=policy.transport,
            retry=policy.retry,
            faults=policy.faults,
        )


__all__ = [
    "ModelBackend",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "resolve_backend",
    "SequentialBackend",
    "ReplicatedBackend",
]
