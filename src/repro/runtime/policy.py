"""``ExecutionPolicy`` — the whole execution surface in one object.

Three infrastructure layers (the PR 2 batching engine, the PR 3 sharded
dispatch, the PR 4 persistent store) each used to thread their own knobs —
``engine``, ``num_workers``, ``batch_size``, ``use_query_cache``,
``cache_dir``, ``checkpoint_every`` — through every configuration object in
the stack.  :class:`ExecutionPolicy` replaces that sprawl: one frozen,
serializable dataclass that says *how* a campaign executes, accepted by every
subsystem as a single ``policy`` parameter and recorded verbatim in campaign
specs (:mod:`repro.runtime.spec`).

What the policy deliberately does **not** contain is anything that changes a
campaign's logical results.  Backends are bit-identical by construction, the
cache is exact, and RNG spawning is part of the campaign semantics pinned by
the equivalence suites — so two runs of the same campaign under different
policies produce identical detections, per-seed query counts and reliability
estimates; only the physical execution (model calls, processes, durability)
differs.

The legacy per-knob parameters survive as thin deprecated shims: each one
emits a :class:`DeprecationWarning` naming its replacement and folds into a
policy via :func:`resolve_legacy_knobs`, so old call sites keep working
bit-identically while the warning gate in CI keeps *internal* callers off
them.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional, Tuple, Union

from ..config import RngLike, spawn_rngs
from ..engine.batching import DEFAULT_BATCH_SIZE, BatchedQueryEngine, as_query_engine
from ..engine.transport import validate_transport
from ..exceptions import ConfigurationError
from ..faults.injection import FaultPlan
from ..faults.retry import RetryPolicy
from .backends import resolve_backend

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from .backends import ModelBackend

#: RNG spawning policies.  ``"per-seed"`` (the only shipping policy) gives
#: every fuzzed seed a private child generator spawned from the campaign RNG,
#: which is what makes campaigns independent of execution order — the
#: property every equivalence suite pins.  Future policies (e.g. counter-based
#: streams for remote backends) register here.
RNG_SPAWN_POLICIES = ("per-seed",)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a campaign executes: backend, parallelism, batching, caching.

    Attributes
    ----------
    backend:
        Registered execution backend name (see
        :func:`repro.runtime.available_backends`).  Shipping backends:
        ``"batched"`` (in-process) and ``"sharded"`` (replicated worker
        processes).
    num_workers:
        Worker processes for replicated backends; ``1`` stays in-process.
    transport:
        How replicated backends move row blocks to their workers:
        ``"pickle"`` (per-task pickling), ``"shm"`` (zero-copy
        shared-memory ring buffers), ``"threads"`` (in-process thread pool
        with per-thread replicas) or ``"auto"`` (default: pickle vs shm per
        logical call by block size).  Ignored by in-process backends.
        Transport never changes logical results — see
        :mod:`repro.engine.transport`.
    batch_size:
        Maximum rows per physical model call.
    cache:
        Memoize ``predict_proba`` results by exact row content.  Results are
        bit-identical either way; only physical model calls shrink.
    cache_max_entries:
        Capacity of the in-memory cache (ignored when ``cache_dir`` is set —
        the persistent cache is append-only).
    cache_dir:
        Directory of a durable :class:`repro.store.PersistentQueryCache`.
        When set (and ``cache`` is true) the memoizing cache survives the
        process and can be shared across hosts via a common directory.
    checkpoint_every:
        Campaign-checkpoint cadence (population rounds / seeds for the
        fuzzer, iterations for the testing loop).  0 disables.
    rng_spawning:
        RNG spawning policy; see :data:`RNG_SPAWN_POLICIES`.
    start_method:
        Optional :mod:`multiprocessing` start method for process-pool
        backends (platform default when ``None``).
    retry:
        Optional :class:`repro.faults.RetryPolicy` for supervised execution
        (heartbeat deadline, respawn/retry budgets, degrade-vs-fail on
        exhaustion).  ``None`` means the backend's defaults.  Mappings (from
        a spec file) are coerced.  Like every policy field this never
        changes logical results — supervision moves shards, it does not
        change what they compute.
    faults:
        Optional :class:`repro.faults.FaultPlan` injecting deterministic
        faults (worker kills, shard delays, cache corruption) — the chaos
        hook.  Recorded verbatim in specs/run.json like everything else, so
        even a chaos campaign is reproducible from its stored spec.
    telemetry:
        Record structured spans + metrics (:mod:`repro.telemetry`) for the
        campaign and persist ``trace.jsonl`` / ``metrics.json`` in the run
        registry.  Bit-identity-neutral (never touches RNG, never reorders
        work) and <3% wall time, both pinned by test and bench — so
        enabling it is always safe.
    """

    backend: str = "batched"
    num_workers: int = 1
    transport: str = "auto"
    batch_size: int = DEFAULT_BATCH_SIZE
    cache: bool = False
    cache_max_entries: int = 65536
    cache_dir: Optional[str] = None
    checkpoint_every: int = 0
    rng_spawning: str = "per-seed"
    start_method: Optional[str] = None
    retry: Optional[RetryPolicy] = None
    faults: Optional[FaultPlan] = None
    telemetry: bool = False

    def __post_init__(self) -> None:
        resolve_backend(self.backend)  # fails loudly on unknown names
        if self.num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        validate_transport(self.transport)
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if not isinstance(self.cache, bool):
            raise ConfigurationError(
                "cache must be a bool (hand CacheBackend instances to "
                "build_engine(cache=...), not to the policy)"
            )
        if self.cache_max_entries <= 0:
            raise ConfigurationError("cache_max_entries must be positive")
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be non-negative")
        if self.rng_spawning not in RNG_SPAWN_POLICIES:
            raise ConfigurationError(
                f"rng_spawning must be one of {RNG_SPAWN_POLICIES}, "
                f"got {self.rng_spawning!r}"
            )
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            # keep the policy JSON-serializable (pathlib.Path coerced here)
            object.__setattr__(self, "cache_dir", str(self.cache_dir))
        # coerce spec-file mappings into the frozen fault-tolerance objects
        if isinstance(self.retry, Mapping):
            object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
        elif self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ConfigurationError(
                f"retry must be a RetryPolicy, a mapping or None, "
                f"got {type(self.retry).__name__}"
            )
        if not isinstance(self.telemetry, bool):
            raise ConfigurationError(
                f"telemetry must be a bool, got {type(self.telemetry).__name__}"
            )
        if isinstance(self.faults, Mapping):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))
        elif self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigurationError(
                f"faults must be a FaultPlan, a mapping or None, "
                f"got {type(self.faults).__name__}"
            )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of every field (exact ``from_dict`` round-trip)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExecutionPolicy":
        """Rebuild a policy from :meth:`to_dict` output.

        Unknown keys are rejected so a policy written by a future (or
        mistyped) format fails loudly instead of silently dropping settings.
        """
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ExecutionPolicy fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the policy as JSON (parents created as needed)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExecutionPolicy":
        """Load a policy from a JSON (or TOML, by suffix) file."""
        return cls.from_dict(load_structured_file(path))

    def replace(self, **overrides: object) -> "ExecutionPolicy":
        """A copy with some fields replaced (validated like a fresh policy)."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # the factory: the policy builds its own execution machinery
    # ------------------------------------------------------------------ #
    def build_cache(self) -> object:
        """The engine-level cache argument this policy describes.

        ``False`` (no cache), ``True`` (default in-memory cache) or a
        :class:`repro.store.PersistentQueryCache` rooted at ``cache_dir``.
        """
        if not self.cache:
            return False
        if self.cache_dir is not None:
            from ..store.cache import PersistentQueryCache  # avoid an import cycle

            return PersistentQueryCache(self.cache_dir)
        return True

    def build_engine(
        self,
        model: "ModelBackend",
        naturalness: Optional[object] = None,
        *,
        cache: Optional[object] = None,
    ) -> BatchedQueryEngine:
        """Build the query engine this policy describes over ``model``.

        The single construction funnel that subsumes the PR 2/3
        ``build_query_engine`` / ``query_engine_session`` helpers and the
        per-subsystem knob plumbing.  A ``model`` that already *is* an engine
        is passed through unchanged (its configuration wins, so nested
        subsystems share one set of counters, one cache and one worker
        pool); ``cache`` overrides the policy's cache spec with a concrete
        :class:`repro.engine.CacheBackend` instance.
        """
        if isinstance(model, BatchedQueryEngine):
            return as_query_engine(model, naturalness=naturalness)
        backend = resolve_backend(self.backend)
        return backend.from_policy(
            model, naturalness, self, self.build_cache() if cache is None else cache
        )

    @contextmanager
    def session(
        self,
        model: "ModelBackend",
        naturalness: Optional[object] = None,
        *,
        cache: Optional[object] = None,
    ) -> Iterator[BatchedQueryEngine]:
        """Build an engine for one campaign and release its workers afterwards.

        Engines the caller already owns (``model`` is itself an engine) are
        passed through *without* being closed — their lifecycle belongs to
        the caller.
        """
        engine = self.build_engine(model, naturalness, cache=cache)
        created = engine is not model
        try:
            yield engine
        finally:
            if created:
                engine.close()

    def spawn_rngs(self, rng: RngLike, count: int) -> list:
        """Spawn per-seed generators according to the RNG spawning policy."""
        if self.rng_spawning == "per-seed":
            return spawn_rngs(rng, count)
        raise ConfigurationError(  # pragma: no cover - guarded in __post_init__
            f"unimplemented rng_spawning policy {self.rng_spawning!r}"
        )


def load_structured_file(path: Union[str, Path]) -> dict:
    """Load a JSON (default) or TOML (``.toml`` suffix) mapping from disk."""
    source = Path(path)
    try:
        if source.suffix.lower() == ".toml":
            import tomllib

            data = tomllib.loads(source.read_text())
        else:
            data = json.loads(source.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"no such file: {source}") from None
    except (json.JSONDecodeError, ValueError) as exc:
        raise ConfigurationError(f"could not parse {source}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(f"{source} must contain a mapping at top level")
    return data


# --------------------------------------------------------------------------- #
# the deprecation shims behind every legacy knob
# --------------------------------------------------------------------------- #
def warn_legacy_knob(
    owner: str, knob: str, replacement: str, stacklevel: int = 3
) -> None:
    """Emit the single :class:`DeprecationWarning` for one legacy knob.

    ``replacement`` is the full replacement phrase (usually
    ``"policy=ExecutionPolicy(...)"``).  ``stacklevel`` must point at the
    *user's* frame so the warning (and the CI gate filtering on ``repro.*``
    modules) is attributed to whoever still passes the knob, not to the
    shim.
    """
    warnings.warn(
        f"{owner}({knob}=...) is deprecated; use {replacement} instead — "
        "see the README 'Runtime API' section",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_legacy_knobs(
    owner: str,
    policy: Optional[ExecutionPolicy],
    default: ExecutionPolicy,
    legacy: Mapping[str, Tuple[str, object]],
    error: type = ConfigurationError,
    stacklevel: int = 4,
) -> ExecutionPolicy:
    """Fold deprecated per-knob parameters into an :class:`ExecutionPolicy`.

    ``legacy`` maps each knob name to ``(policy_field, value)`` where a
    ``None`` value means "not passed" (every legacy knob uses ``None`` as its
    sentinel).  Each knob that *was* passed emits one deprecation warning
    naming its replacement, then overrides the matching field of ``policy``
    (or of ``default`` when no policy was given).  Validation errors are
    re-raised as ``error`` so each subsystem keeps its own error taxonomy.

    ``stacklevel`` is forwarded to :func:`warnings.warn`: pass 4 when called
    directly from an ``__init__``, 5 from a dataclass ``__post_init__``.
    """
    if policy is not None and not isinstance(policy, ExecutionPolicy):
        # catch the easy mistake (a backend name string, a dict) here, where
        # the caller can see it — not attributes deep into the campaign
        raise error(
            f"{owner}: policy must be an ExecutionPolicy, "
            f"got {type(policy).__name__} ({policy!r})"
        )
    overrides: Dict[str, object] = {}
    for knob, (field_name, value) in legacy.items():
        if value is None:
            continue
        warn_legacy_knob(
            owner,
            knob,
            f"policy=ExecutionPolicy({field_name}=...)",
            stacklevel=stacklevel,
        )
        overrides[field_name] = value
    base = policy if policy is not None else default
    if not overrides:
        return base
    try:
        return base.replace(**overrides)
    except ConfigurationError as exc:
        if error is ConfigurationError:
            raise
        raise error(str(exc)) from exc


__all__ = [
    "RNG_SPAWN_POLICIES",
    "ExecutionPolicy",
    "load_structured_file",
    "warn_legacy_knob",
    "resolve_legacy_knobs",
]
