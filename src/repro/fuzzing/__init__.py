"""Naturalness-guided fuzzing for operational adversarial examples (RQ3)."""

from .fuzzer import (
    DEFAULT_FUZZER_POLICY,
    EXECUTION_MODES,
    FUZZER_LEGACY_KNOBS,
    FuzzCampaignResult,
    FuzzerConfig,
    OperationalFuzzer,
    SeedFuzzResult,
)
from .mutations import (
    BatchMutationContext,
    GaussianMutation,
    GradientMutation,
    InterpolationMutation,
    MutationContext,
    MutationOperator,
    SparseMutation,
    default_operators,
)

__all__ = [
    "BatchMutationContext",
    "DEFAULT_FUZZER_POLICY",
    "EXECUTION_MODES",
    "FUZZER_LEGACY_KNOBS",
    "FuzzCampaignResult",
    "FuzzerConfig",
    "OperationalFuzzer",
    "SeedFuzzResult",
    "GaussianMutation",
    "GradientMutation",
    "InterpolationMutation",
    "MutationContext",
    "MutationOperator",
    "SparseMutation",
    "default_operators",
]
