"""Naturalness-guided fuzzing for operational adversarial examples (RQ3)."""

from .fuzzer import FuzzCampaignResult, FuzzerConfig, OperationalFuzzer, SeedFuzzResult
from .mutations import (
    GaussianMutation,
    GradientMutation,
    InterpolationMutation,
    MutationContext,
    MutationOperator,
    SparseMutation,
    default_operators,
)

__all__ = [
    "FuzzCampaignResult",
    "FuzzerConfig",
    "OperationalFuzzer",
    "SeedFuzzResult",
    "GaussianMutation",
    "GradientMutation",
    "InterpolationMutation",
    "MutationContext",
    "MutationOperator",
    "SparseMutation",
    "default_operators",
]
