"""Naturalness-guided fuzzing for operational adversarial examples (RQ3)."""

from .fuzzer import (
    EXECUTION_MODES,
    FuzzCampaignResult,
    FuzzerConfig,
    OperationalFuzzer,
    SeedFuzzResult,
)
from .mutations import (
    BatchMutationContext,
    GaussianMutation,
    GradientMutation,
    InterpolationMutation,
    MutationContext,
    MutationOperator,
    SparseMutation,
    default_operators,
)

__all__ = [
    "BatchMutationContext",
    "EXECUTION_MODES",
    "FuzzCampaignResult",
    "FuzzerConfig",
    "OperationalFuzzer",
    "SeedFuzzResult",
    "GaussianMutation",
    "GradientMutation",
    "InterpolationMutation",
    "MutationContext",
    "MutationOperator",
    "SparseMutation",
    "default_operators",
]
