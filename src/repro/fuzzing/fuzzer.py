"""Naturalness-guided fuzzing around operational seeds (RQ3).

The fuzzer searches the cell (an L∞ ball) around each seed for *operational
adversarial examples*: inputs the model misclassifies **and** that remain
natural enough to plausibly occur in operation.  Existing attacks (PGD et al.)
optimise only the loss and routinely leave the data manifold; unguided fuzzing
stays natural but wastes the budget.  The operational fuzzer combines the two
signals:

* candidates are proposed by a mix of naturalness-preserving mutations and
  directed gradient steps (:mod:`repro.fuzzing.mutations`);
* a candidate is *accepted* as an operational AE only if it is misclassified
  and its naturalness score stays above ``naturalness_threshold`` times the
  seed's own naturalness (the "constraint on naturalness / local OP");
* the search is steered by a fitness that mixes the model loss with the
  naturalness score, so the fuzzer climbs towards the decision boundary while
  staying on the data manifold;
* the per-seed energy (query budget) is allocated proportionally to the
  seed's operational density, so high-OP cells get searched harder.

Execution model
---------------
Control flow and execution substrate are separate axes:

* ``FuzzerConfig.execution`` picks the *control flow* — ``"population"``
  (default; lock-step population fuzzing via
  :class:`repro.engine.PopulationFuzzEngine`: all live seeds propose each
  round and one batched naturalness call plus one batched ``predict_proba``
  call service the whole population) or ``"sequential"`` (the reference
  one-seed-at-a-time loop, kept for equivalence testing and as the ground
  truth for the per-seed semantics).
* ``FuzzerConfig.policy`` (an :class:`repro.runtime.ExecutionPolicy`) picks
  the *execution substrate*: the registered model backend (in-process
  ``"batched"`` or replicated multi-worker ``"sharded"``), batching,
  caching — including a durable cross-process cache via ``cache_dir`` — and
  the checkpoint cadence.  Campaign results are bit-identical across
  policies by construction.

Both control flows draw each seed's randomness from a private generator
spawned from the campaign RNG (the policy's ``rng_spawning`` rule), so a
seed sees the same proposal stream no matter which execution strategy runs
it or which other seeds are being fuzzed alongside.  Either way every model
query flows through a :class:`BatchedQueryEngine`, so query statistics (and
the optional memoizing cache) are always available via
``OperationalFuzzer.last_query_stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from ..config import EPSILON, RngLike, ensure_rng
from ..engine.batching import BatchedQueryEngine, QueryStats
from ..engine.population import (
    PROPOSAL_CAP_FACTOR,
    PopulationFuzzEngine,
    SeedTask,
    fitness_from_probs,
    pick_operator,
)
from ..exceptions import FuzzingError
from ..naturalness.metrics import NaturalnessScorer
from ..runtime.policy import ExecutionPolicy, resolve_legacy_knobs, warn_legacy_knob
from ..store.checkpoint import Checkpointer, campaign_fingerprint, read_checkpoint
from ..types import AdversarialExample, Classifier
from .mutations import MutationContext, MutationOperator, default_operators

#: Valid values of :attr:`FuzzerConfig.execution` — the *control flow* knob:
#: the batched lock-step default and the sequential reference loop.
#: ``"sharded"`` is accepted as a deprecated alias for ``execution=
#: "population"`` plus ``policy.backend="sharded"`` (the execution backend
#: now lives on the :class:`~repro.runtime.ExecutionPolicy`).
EXECUTION_MODES = ("population", "sequential", "sharded")

#: Deprecated per-knob parameters of :class:`FuzzerConfig`, each a thin shim
#: folding into :attr:`FuzzerConfig.policy` (mapping: knob -> policy field).
FUZZER_LEGACY_KNOBS = {
    "num_workers": "num_workers",
    "batch_size": "batch_size",
    "use_query_cache": "cache",
    "cache_max_entries": "cache_max_entries",
    "cache_dir": "cache_dir",
    "checkpoint_every": "checkpoint_every",
}

#: The fuzzer's default execution surface: in-process backend with the
#: memoizing query cache on (the fuzzer re-visits rows constantly, so the
#: cache is the historical default here — unlike the attacks/assessor).
DEFAULT_FUZZER_POLICY = ExecutionPolicy(cache=True)


@dataclass
class FuzzerConfig:
    """Hyper-parameters of the operational fuzzer.

    Attributes
    ----------
    epsilon:
        L∞ radius of the cell searched around each seed.
    queries_per_seed:
        Baseline number of model queries spent on each seed (scaled by the
        seed energy when OP densities are supplied).
    naturalness_threshold:
        Minimum acceptable naturalness of an AE, as a fraction of the seed's
        own naturalness score.  Set to 0 to disable the constraint (ablation).
    loss_weight, naturalness_weight:
        Mixing coefficients of the search fitness.  Setting
        ``naturalness_weight`` to 0 recovers purely loss-guided search.
    use_gradient:
        Include the directed gradient mutation operator.
    gradient_probability:
        Probability of picking the gradient operator at each mutation step
        (the remaining probability is split uniformly over the undirected
        operators).  Ignored when ``use_gradient`` is false.
    neighbour_count:
        Natural neighbours (from the calibration pool) made available to the
        interpolation mutation for each seed.
    min_energy, max_energy:
        Bounds of the per-seed energy multiplier derived from OP density.
    stall_limit:
        Abandon a seed after this many consecutive evaluated candidates without
        a fitness improvement (0 disables early abandonment).  Spending the
        full per-seed budget on seeds whose whole natural neighbourhood is
        robust is exactly the waste the paper wants to avoid.
    execution:
        Control flow: ``"population"`` (batched lock-step fuzzing, the fast
        default) or ``"sequential"`` (the reference per-seed loop).
        ``"sharded"`` is a deprecated alias for population control flow with
        ``policy.backend="sharded"``.
    policy:
        The campaign's :class:`~repro.runtime.ExecutionPolicy` (backend,
        workers, batching, caching, checkpoint cadence).  Defaults to
        :data:`DEFAULT_FUZZER_POLICY` (in-process, query cache on).
        Campaign results are bit-identical across policies.
    num_workers, batch_size, use_query_cache, cache_max_entries, cache_dir,
    checkpoint_every:
        **Deprecated** per-knob shims.  Each one emits a
        ``DeprecationWarning`` and overrides the matching field of
        ``policy`` (``use_query_cache`` maps to ``policy.cache``); after
        construction they read as ``None`` and only the resolved ``policy``
        carries the execution surface.
    """

    epsilon: float = 0.1
    queries_per_seed: int = 20
    naturalness_threshold: float = 0.5
    loss_weight: float = 1.0
    naturalness_weight: float = 0.5
    use_gradient: bool = True
    gradient_probability: float = 0.5
    neighbour_count: int = 5
    min_energy: float = 0.5
    max_energy: float = 2.0
    stall_limit: int = 8
    execution: str = "population"
    policy: Optional[ExecutionPolicy] = None
    num_workers: Optional[int] = None
    batch_size: Optional[int] = None
    use_query_cache: Optional[bool] = None
    cache_max_entries: Optional[int] = None
    cache_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise FuzzingError("epsilon must be positive")
        if self.queries_per_seed <= 0:
            raise FuzzingError("queries_per_seed must be positive")
        if self.naturalness_threshold < 0:
            raise FuzzingError("naturalness_threshold must be non-negative")
        if self.loss_weight < 0 or self.naturalness_weight < 0:
            raise FuzzingError("fitness weights must be non-negative")
        if self.loss_weight == 0 and self.naturalness_weight == 0:
            raise FuzzingError("at least one fitness weight must be positive")
        if not 0.0 <= self.gradient_probability <= 1.0:
            raise FuzzingError("gradient_probability must be in [0, 1]")
        if self.stall_limit < 0:
            raise FuzzingError("stall_limit must be non-negative")
        if self.neighbour_count < 0:
            raise FuzzingError("neighbour_count must be non-negative")
        if not 0 < self.min_energy <= self.max_energy:
            raise FuzzingError("need 0 < min_energy <= max_energy")
        if self.execution not in EXECUTION_MODES:
            raise FuzzingError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )
        policy = resolve_legacy_knobs(
            "FuzzerConfig",
            self.policy,
            DEFAULT_FUZZER_POLICY,
            {
                knob: (policy_field, getattr(self, knob))
                for knob, policy_field in FUZZER_LEGACY_KNOBS.items()
            },
            error=FuzzingError,
            stacklevel=5,
        )
        if self.execution == "sharded":
            warn_legacy_knob(
                "FuzzerConfig",
                "execution",
                "policy=ExecutionPolicy(backend='sharded')",
                stacklevel=4,
            )
            overrides = {"backend": "sharded"}
            if self.num_workers is None and self.policy is None:
                overrides["num_workers"] = 2  # the historical sharded default
            policy = policy.replace(**overrides)
            self.execution = "population"
        self.policy = policy
        # the shims have been folded into the policy; null them so replace()
        # round-trips warning-free and equality ignores the spelling used
        for knob in FUZZER_LEGACY_KNOBS:
            setattr(self, knob, None)


@dataclass
class SeedFuzzResult:
    """Outcome of fuzzing a single seed."""

    seed_index: int
    adversarial_example: Optional[AdversarialExample]
    queries: int
    best_fitness: float
    candidates_rejected_by_naturalness: int


@dataclass
class FuzzCampaignResult:
    """Aggregate outcome of fuzzing a batch of seeds."""

    per_seed: List[SeedFuzzResult] = field(default_factory=list)

    @property
    def adversarial_examples(self) -> List[AdversarialExample]:
        return [r.adversarial_example for r in self.per_seed if r.adversarial_example]

    @property
    def total_queries(self) -> int:
        return int(sum(r.queries for r in self.per_seed))

    @property
    def detection_rate(self) -> float:
        if not self.per_seed:
            return 0.0
        return len(self.adversarial_examples) / len(self.per_seed)

    def validate_budget(self, budget: Optional[int]) -> None:
        """Check the campaign's query-accounting invariants.

        ``total_queries`` must equal the sum of the per-seed counts (it does
        by construction; re-derived here defensively) and must never exceed
        the global budget when one was given.
        """
        total = int(sum(r.queries for r in self.per_seed))
        if total != self.total_queries:
            raise FuzzingError(
                f"per-seed query accounting is inconsistent: {total} vs "
                f"{self.total_queries}"
            )
        if budget is not None and total > budget:
            raise FuzzingError(
                f"campaign spent {total} queries, exceeding the budget of {budget}"
            )


class OperationalFuzzer:
    """Naturalness-guided fuzzer detecting operational adversarial examples.

    Parameters
    ----------
    naturalness:
        Fitted naturalness scorer approximating the local OP.
    config:
        Fuzzer hyper-parameters.
    operators:
        Mutation operators; defaults to the standard mix (noise, sparse,
        interpolation and — if enabled — gradient).
    natural_pool:
        Pool of natural inputs used to find each seed's natural neighbours for
        the interpolation operator.
    """

    def __init__(
        self,
        naturalness: NaturalnessScorer,
        config: Optional[FuzzerConfig] = None,
        operators: Optional[Sequence[MutationOperator]] = None,
        natural_pool: Optional[np.ndarray] = None,
    ) -> None:
        self.config = config if config is not None else FuzzerConfig()
        self.naturalness = naturalness
        if operators is None:
            operators = default_operators(use_gradient=self.config.use_gradient)
        if not operators:
            raise FuzzingError("OperationalFuzzer requires at least one mutation operator")
        self.operators: List[MutationOperator] = list(operators)
        self._pool = (
            np.atleast_2d(np.asarray(natural_pool, dtype=float))
            if natural_pool is not None
            else None
        )
        self._pool_tree = cKDTree(self._pool) if self._pool is not None else None
        #: Query statistics of the most recent campaign (one engine per call).
        self.last_query_stats: Optional[QueryStats] = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def fuzz(
        self,
        model: Classifier,
        seeds: np.ndarray,
        labels: np.ndarray,
        op_densities: Optional[np.ndarray] = None,
        budget: Optional[int] = None,
        rng: RngLike = None,
        checkpoint_path: Optional[str] = None,
        resume_from: Optional[str] = None,
    ) -> FuzzCampaignResult:
        """Fuzz a batch of seeds and return every operational AE found.

        Parameters
        ----------
        model:
            Model under test (or a pre-built :class:`BatchedQueryEngine`
            wrapping one, whose counters and cache are then shared).
        seeds, labels:
            Operational seeds and their true labels.
        op_densities:
            Operational density of each seed; used both to scale the per-seed
            energy and to annotate detected AEs.  ``None`` means uniform.
        budget:
            Optional hard cap on total model queries across the whole batch;
            fuzzing stops once it is exhausted.
        rng:
            Seed or generator.
        checkpoint_path:
            Where to snapshot the campaign every
            ``config.policy.checkpoint_every`` rounds/seeds (atomic replace;
            see :mod:`repro.store.checkpoint`).  ``None`` disables snapshots.
        resume_from:
            Path of a checkpoint written by an earlier (interrupted) run of
            *this* campaign — same seeds, labels and control-flow config,
            verified by fingerprint.  The campaign resumes from the snapshot
            and produces detections, per-seed query counts and fitness
            trajectories bit-identical to an uninterrupted run.  Population
            and sharded execution share one checkpoint format, so a campaign
            may resume under either backend.
        """
        seeds = np.atleast_2d(np.asarray(seeds, dtype=float))
        labels = np.atleast_1d(np.asarray(labels, dtype=int))
        if len(seeds) != len(labels):
            raise FuzzingError("seeds and labels must align")
        if len(seeds) == 0:
            raise FuzzingError("cannot fuzz an empty seed batch")
        if op_densities is not None:
            op_densities = np.asarray(op_densities, dtype=float)
            if op_densities.shape != (len(seeds),):
                raise FuzzingError("op_densities must have one entry per seed")
        generator = ensure_rng(rng)
        cfg = self.config
        kind = "sequential" if cfg.execution == "sequential" else "population"
        # fingerprint everything that shapes the campaign's control flow:
        # the inputs (seeds, labels, densities, the natural pool feeding the
        # interpolation neighbours) and every config knob that changes what
        # the campaign *does* — execution backend, batching and caching are
        # deliberately excluded because they never change logical results
        fingerprint_arrays = [seeds, labels]
        if op_densities is not None:
            fingerprint_arrays.append(op_densities)
        if self._pool is not None:
            fingerprint_arrays.append(self._pool)
        fingerprint = campaign_fingerprint(
            *fingerprint_arrays,
            extra=(
                f"{kind}:{cfg.epsilon}:{cfg.queries_per_seed}:"
                f"{cfg.naturalness_threshold}:{cfg.loss_weight}:"
                f"{cfg.naturalness_weight}:{cfg.use_gradient}:"
                f"{cfg.gradient_probability}:{cfg.neighbour_count}:"
                f"{cfg.min_energy}:{cfg.max_energy}:{cfg.stall_limit}:"
                f"{budget}:densities={op_densities is not None}:"
                f"pool={self._pool is not None}"
            ),
        )
        resume_state: Optional[dict] = None
        if resume_from is not None:
            resume_state = read_checkpoint(resume_from)
            if resume_state.get("fingerprint") != fingerprint:
                raise FuzzingError(
                    f"checkpoint {resume_from} belongs to a different campaign "
                    "(seeds, labels or control-flow config differ)"
                )
        checkpointer = None
        if checkpoint_path is not None and cfg.policy.checkpoint_every > 0:
            checkpointer = Checkpointer(
                checkpoint_path,
                every=cfg.policy.checkpoint_every,
                meta={"fingerprint": fingerprint, "kind": kind},
            )
        energies = self._seed_energies(op_densities, len(seeds))
        # on resume the snapshot carries every live RNG; do not consume the
        # campaign generator so direct runs and resumed runs stay aligned
        rngs = (
            cfg.policy.spawn_rngs(generator, len(seeds))
            if resume_state is None
            else []
        )
        nominal_budgets = [
            max(1, int(round(cfg.queries_per_seed * energies[i])))
            for i in range(len(seeds))
        ]
        with cfg.policy.session(model, naturalness=self.naturalness) as engine:
            self.last_query_stats = engine.stats
            if resume_state is not None:
                # continue the interrupted campaign's accounting: counters
                # restart from the snapshot, exactly as if never interrupted
                engine.stats.merge(resume_state["stats"])
            if cfg.execution == "sequential":
                result = self._fuzz_sequential(
                    engine,
                    seeds,
                    labels,
                    op_densities,
                    budget,
                    nominal_budgets,
                    rngs,
                    checkpointer=checkpointer,
                    resume_state=resume_state,
                )
            else:
                # "population" and "sharded" share the lock-step control
                # flow; only the physical execution backend differs
                result = self._fuzz_population(
                    engine,
                    seeds,
                    labels,
                    op_densities,
                    budget,
                    nominal_budgets,
                    rngs,
                    checkpointer=checkpointer,
                    resume_state=resume_state,
                )
        result.validate_budget(budget)
        return result

    # ------------------------------------------------------------------ #
    # population (batched) execution
    # ------------------------------------------------------------------ #
    def _fuzz_population(
        self,
        engine: BatchedQueryEngine,
        seeds: np.ndarray,
        labels: np.ndarray,
        op_densities: Optional[np.ndarray],
        budget: Optional[int],
        nominal_budgets: List[int],
        rngs: List[np.random.Generator],
        checkpointer=None,
        resume_state: Optional[dict] = None,
    ) -> FuzzCampaignResult:
        if resume_state is None:
            neighbours = self._natural_neighbours_batch(seeds)
            tasks = [
                SeedTask(
                    index=i,
                    seed=seeds[i],
                    label=int(labels[i]),
                    budget=nominal_budgets[i],
                    density=float(op_densities[i]) if op_densities is not None else None,
                    neighbours=neighbours[i],
                    rng=rngs[i],
                )
                for i in range(len(seeds))
            ]
        else:
            tasks = []  # the snapshot carries every task's live state
        population = PopulationFuzzEngine(engine, self.config, self.operators)
        outcomes = population.run(
            tasks, budget=budget, checkpointer=checkpointer, resume_state=resume_state
        )
        return FuzzCampaignResult(
            per_seed=[
                SeedFuzzResult(
                    seed_index=o.index,
                    adversarial_example=o.adversarial_example,
                    queries=o.queries,
                    best_fitness=o.best_fitness,
                    candidates_rejected_by_naturalness=o.rejected,
                )
                for o in outcomes
            ]
        )

    # ------------------------------------------------------------------ #
    # sequential (reference) execution
    # ------------------------------------------------------------------ #
    def _fuzz_sequential(
        self,
        engine: BatchedQueryEngine,
        seeds: np.ndarray,
        labels: np.ndarray,
        op_densities: Optional[np.ndarray],
        budget: Optional[int],
        nominal_budgets: List[int],
        rngs: List[np.random.Generator],
        checkpointer=None,
        resume_state: Optional[dict] = None,
    ) -> FuzzCampaignResult:
        result = FuzzCampaignResult()
        start = 0
        queries_remaining = budget if budget is not None else np.inf
        if resume_state is not None:
            start = int(resume_state["next_index"])
            result.per_seed = list(resume_state["per_seed"])
            queries_remaining = resume_state["queries_remaining"]
            rngs = list(resume_state["rngs"])
        for index in range(start, len(seeds)):
            if checkpointer is not None:
                checkpointer.save_if_due(
                    index,
                    lambda: {
                        "next_index": index,
                        "per_seed": result.per_seed,
                        "queries_remaining": queries_remaining,
                        "rngs": rngs,
                        "stats": engine.stats,
                    },
                )
            if queries_remaining <= 0:
                break
            seed, label = seeds[index], labels[index]
            seed_budget = nominal_budgets[index]
            if np.isfinite(queries_remaining):
                seed_budget = min(seed_budget, int(queries_remaining))
            seed_budget = max(1, seed_budget)
            density = float(op_densities[index]) if op_densities is not None else None
            seed_result = self._fuzz_one(
                engine, seed, int(label), index, seed_budget, density, rngs[index]
            )
            queries_remaining -= seed_result.queries
            result.per_seed.append(seed_result)
        return result

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _seed_energies(
        self, op_densities: Optional[np.ndarray], count: int
    ) -> np.ndarray:
        if op_densities is None:
            return np.ones(count)
        mean_density = max(float(np.mean(op_densities)), EPSILON)
        energies = op_densities / mean_density
        return np.clip(energies, self.config.min_energy, self.config.max_energy)

    def _natural_neighbours(self, seed: np.ndarray) -> Optional[np.ndarray]:
        if self._pool_tree is None or self.config.neighbour_count == 0:
            return None
        k = min(self.config.neighbour_count, len(self._pool))
        _, indices = self._pool_tree.query(seed, k=k)
        indices = np.atleast_1d(indices)
        return self._pool[indices]

    def _natural_neighbours_batch(
        self, seeds: np.ndarray
    ) -> List[Optional[np.ndarray]]:
        """Natural neighbours of every seed from one vectorised KD-tree query."""
        if self._pool_tree is None or self.config.neighbour_count == 0:
            return [None] * len(seeds)
        k = min(self.config.neighbour_count, len(self._pool))
        _, indices = self._pool_tree.query(seeds, k=k)
        # cKDTree squeezes the k axis when k == 1; restore (n, k)
        indices = np.asarray(indices).reshape(len(seeds), -1)
        return [self._pool[row] for row in indices]

    def _fuzz_one(
        self,
        engine: BatchedQueryEngine,
        seed: np.ndarray,
        label: int,
        seed_index: int,
        seed_budget: int,
        op_density: Optional[float],
        generator: np.random.Generator,
    ) -> SeedFuzzResult:
        cfg = self.config
        seed_naturalness = float(engine.score_naturalness(seed[None, :])[0])
        naturalness_floor = cfg.naturalness_threshold * seed_naturalness
        neighbours = self._natural_neighbours(seed)

        queries = 0
        rejected = 0
        current = seed.copy()
        best_fitness = -np.inf
        found: Optional[AdversarialExample] = None

        # the seed itself may already be misclassified (a "natural failure")
        prediction = int(engine.predict(seed[None, :])[0])
        queries += 1
        if prediction != label:
            found = AdversarialExample(
                seed=seed.copy(),
                perturbed=seed.copy(),
                true_label=label,
                predicted_label=prediction,
                distance=0.0,
                naturalness=seed_naturalness,
                op_density=op_density,
                method="operational-fuzzer",
                queries=queries,
            )
            return SeedFuzzResult(seed_index, found, queries, 0.0, 0)

        directed = [op for op in self.operators if op.queries_model]
        undirected = [op for op in self.operators if not op.queries_model]
        stalled = 0
        proposals = 0
        max_proposals = PROPOSAL_CAP_FACTOR * seed_budget
        while queries < seed_budget and proposals < max_proposals:
            if cfg.stall_limit and stalled >= cfg.stall_limit:
                break
            proposals += 1
            operator = pick_operator(
                directed, undirected, self.operators, cfg.gradient_probability, generator
            )
            context = MutationContext(
                seed=seed,
                current=current,
                label=label,
                epsilon=cfg.epsilon,
                model=engine,
                natural_neighbours=neighbours,
                rng=generator,
            )
            candidate = operator.propose(context)
            if operator.queries_model:
                queries += 1
                if queries >= seed_budget:
                    break
            candidate_naturalness = float(engine.score_naturalness(candidate[None, :])[0])
            if cfg.naturalness_threshold > 0 and candidate_naturalness < naturalness_floor:
                rejected += 1
                stalled += 1
                continue

            # a single forward pass yields both the verdict and the fitness
            probs = engine.predict_proba(candidate[None, :])[0]
            prediction = int(np.argmax(probs))
            queries += 1
            if prediction != label:
                distance = float(np.max(np.abs(candidate - seed)))
                found = AdversarialExample(
                    seed=seed.copy(),
                    perturbed=candidate,
                    true_label=label,
                    predicted_label=prediction,
                    distance=distance,
                    naturalness=candidate_naturalness,
                    op_density=op_density,
                    method="operational-fuzzer",
                    queries=queries,
                )
                break

            fitness = fitness_from_probs(
                probs, label, candidate_naturalness, cfg.loss_weight, cfg.naturalness_weight
            )
            if fitness > best_fitness:
                best_fitness = fitness
                current = candidate
                stalled = 0
            else:
                stalled += 1

        return SeedFuzzResult(
            seed_index=seed_index,
            adversarial_example=found,
            queries=queries,
            best_fitness=float(best_fitness) if np.isfinite(best_fitness) else 0.0,
            candidates_rejected_by_naturalness=rejected,
        )


__all__ = [
    "EXECUTION_MODES",
    "FUZZER_LEGACY_KNOBS",
    "DEFAULT_FUZZER_POLICY",
    "FuzzerConfig",
    "OperationalFuzzer",
    "FuzzCampaignResult",
    "SeedFuzzResult",
]
