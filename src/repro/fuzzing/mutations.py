"""Mutation operators used by the operational fuzzer.

Each operator proposes a new candidate from the current one while staying
inside the L∞ cell around the original seed.  The fuzzer mixes *undirected*
operators (noise, feature perturbations, interpolation towards natural
neighbours — these tend to preserve naturalness) with *directed* operators
(signed-gradient steps — these find misclassifications quickly), which is how
the trade-off between naturalness and loss gradient described in Section II
is realised mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import clip01
from ..exceptions import FuzzingError
from ..types import Classifier


@dataclass
class MutationContext:
    """Everything a mutation operator may use to propose a candidate.

    Attributes
    ----------
    seed:
        The original operational seed (centre of the cell).
    current:
        The current candidate being mutated.
    label:
        True label of the seed.
    epsilon:
        L∞ radius of the cell around the seed.
    model:
        Model under test (only directed operators query it).
    natural_neighbours:
        Optional pool of natural inputs near the seed, used by the
        interpolation operator.
    rng:
        Random generator for the proposal.
    """

    seed: np.ndarray
    current: np.ndarray
    label: int
    epsilon: float
    model: Classifier
    natural_neighbours: Optional[np.ndarray]
    rng: np.random.Generator


@dataclass
class BatchMutationContext:
    """Lock-step variant of :class:`MutationContext` covering many seeds.

    One row per live population member.  ``rngs`` carries each member's
    private random stream, so a member's proposal sequence is independent of
    which other members happen to be alive in the same round — this is what
    keeps the batched fuzzer statistically equivalent to the sequential one.
    """

    seeds: np.ndarray
    currents: np.ndarray
    labels: np.ndarray
    epsilon: float
    model: Classifier
    natural_neighbours: List[Optional[np.ndarray]]
    rngs: Sequence[np.random.Generator]

    def row(self, i: int) -> MutationContext:
        """View row ``i`` as a single-seed mutation context."""
        return MutationContext(
            seed=self.seeds[i],
            current=self.currents[i],
            label=int(self.labels[i]),
            epsilon=self.epsilon,
            model=self.model,
            natural_neighbours=self.natural_neighbours[i],
            rng=self.rngs[i],
        )


class MutationOperator:
    """Base class for mutation operators."""

    #: Whether the operator consumes a model query (gradient or prediction).
    queries_model: bool = False
    name: str = "mutation"

    def propose(self, context: MutationContext) -> np.ndarray:
        """Return a new candidate derived from ``context.current``."""
        raise NotImplementedError

    def propose_batch(self, context: BatchMutationContext) -> np.ndarray:
        """Return one candidate per row of ``context.currents``.

        The default delegates to :meth:`propose` row by row, drawing from
        each row's own generator; operators whose proposals touch the model
        override this to issue a single batched call instead.
        """
        return np.stack(
            [self.propose(context.row(i)) for i in range(len(context.currents))]
        )

    @staticmethod
    def _project(candidate: np.ndarray, seed: np.ndarray, epsilon: float) -> np.ndarray:
        return clip01(np.clip(candidate, seed - epsilon, seed + epsilon))


class GaussianMutation(MutationOperator):
    """Add small Gaussian noise to every feature."""

    name = "gaussian"

    def __init__(self, scale_fraction: float = 0.25) -> None:
        if not 0 < scale_fraction <= 1:
            raise FuzzingError("scale_fraction must be in (0, 1]")
        self.scale_fraction = scale_fraction

    def propose(self, context: MutationContext) -> np.ndarray:
        std = context.epsilon * self.scale_fraction
        noise = context.rng.normal(0.0, std, size=context.current.shape)
        return self._project(context.current + noise, context.seed, context.epsilon)


class SparseMutation(MutationOperator):
    """Perturb a random subset of features by up to epsilon (salt-and-pepper style)."""

    name = "sparse"

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0 < fraction <= 1:
            raise FuzzingError("fraction must be in (0, 1]")
        self.fraction = fraction

    def propose(self, context: MutationContext) -> np.ndarray:
        d = context.current.shape[0]
        count = max(1, int(round(self.fraction * d)))
        indices = context.rng.choice(d, size=count, replace=False)
        candidate = context.current.copy()
        candidate[indices] += context.rng.uniform(
            -context.epsilon, context.epsilon, size=count
        )
        return self._project(candidate, context.seed, context.epsilon)


class InterpolationMutation(MutationOperator):
    """Move towards a random natural neighbour of the seed.

    Because the target is itself natural, interpolated candidates stay close
    to the data manifold — this operator injects naturalness-preserving
    diversity the gradient alone would not provide.
    """

    name = "interpolation"

    def __init__(self, max_step: float = 0.5) -> None:
        if not 0 < max_step <= 1:
            raise FuzzingError("max_step must be in (0, 1]")
        self.max_step = max_step

    def propose(self, context: MutationContext) -> np.ndarray:
        neighbours = context.natural_neighbours
        if neighbours is None or len(neighbours) == 0:
            # degenerate gracefully to a Gaussian proposal
            return GaussianMutation().propose(context)
        target = neighbours[context.rng.integers(len(neighbours))]
        alpha = context.rng.uniform(0.0, self.max_step)
        candidate = context.current + alpha * (target - context.current)
        return self._project(candidate, context.seed, context.epsilon)


class GradientMutation(MutationOperator):
    """Directed signed-gradient step (the loss-gradient guidance of Section II.c)."""

    name = "gradient"
    queries_model = True

    def __init__(self, step_fraction: float = 0.25) -> None:
        if not 0 < step_fraction <= 1:
            raise FuzzingError("step_fraction must be in (0, 1]")
        self.step_fraction = step_fraction

    def propose(self, context: MutationContext) -> np.ndarray:
        # context.model IS the fuzzer's engine (OperationalFuzzer installs it
        # in the MutationContext), so this call is already funnelled
        gradient = context.model.loss_input_gradient(  # repro: allow[engine-funnel]
            context.current[None, :], np.asarray([context.label])
        )[0]
        step = context.epsilon * self.step_fraction
        candidate = context.current + step * np.sign(gradient)
        return self._project(candidate, context.seed, context.epsilon)

    def propose_batch(self, context: BatchMutationContext) -> np.ndarray:
        # one physical gradient call for the whole population; the batch-mean
        # scaling of the gradient is irrelevant under np.sign, so each row is
        # the same step the sequential single-row call would have taken
        # (context.model is the fuzzer's engine — already funnelled)
        gradient = context.model.loss_input_gradient(context.currents, context.labels)  # repro: allow[engine-funnel]
        step = context.epsilon * self.step_fraction
        candidates = context.currents + step * np.sign(gradient)
        return self._project(candidates, context.seeds, context.epsilon)


def default_operators(use_gradient: bool = True) -> list[MutationOperator]:
    """The default operator mix used by the operational fuzzer."""
    operators: list[MutationOperator] = [
        GaussianMutation(),
        SparseMutation(),
        InterpolationMutation(),
    ]
    if use_gradient:
        operators.append(GradientMutation())
    return operators


__all__ = [
    "BatchMutationContext",
    "MutationContext",
    "MutationOperator",
    "GaussianMutation",
    "SparseMutation",
    "InterpolationMutation",
    "GradientMutation",
    "default_operators",
]
