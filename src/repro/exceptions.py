"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses describe the subsystem
that failed and the kind of misuse, which keeps error handling explicit at the
call sites (e.g. configuration problems vs. numerical problems).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration object or argument combination is invalid."""


class ShapeError(ReproError):
    """An array has an unexpected shape or dimensionality."""


class NotFittedError(ReproError):
    """A model or estimator was used before being fitted/trained."""


class DataError(ReproError):
    """A dataset is malformed (empty, mismatched labels, bad bounds, ...)."""


class ProfileError(ReproError):
    """An operational profile is inconsistent (bad probabilities, unknown cell, ...)."""


class AttackError(ReproError):
    """An adversarial attack was configured or invoked incorrectly."""


class SamplingError(ReproError):
    """A seed-sampling strategy received invalid weights or budgets."""


class FuzzingError(ReproError):
    """The operational fuzzer was configured or invoked incorrectly."""


class ReliabilityError(ReproError):
    """A reliability assessment received inconsistent evidence."""


class BudgetExhaustedError(ReproError):
    """A testing campaign ran out of its test-case budget."""


class StoreError(ReproError):
    """The persistent campaign store (cache, checkpoints, registry) failed."""


class CheckpointError(StoreError):
    """A campaign checkpoint is missing, corrupt or from a different campaign."""


class CheckpointMismatchError(CheckpointError, ConfigurationError):
    """A checkpoint's campaign fingerprint does not match the campaign.

    Carries the checkpoint path and both fingerprints so tooling (the CLI
    ``resume`` verb) can render a one-line diagnosis and exit distinctly
    from generic store failures.
    """

    def __init__(self, path: object, expected: object, actual: object) -> None:
        self.path = str(path)
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"checkpoint {self.path} belongs to a different campaign: "
            f"expected fingerprint {expected}, found {actual}"
        )


class FaultToleranceError(ReproError):
    """Supervised execution exhausted its retry budget with ``on_exhaustion=fail``."""


class ConvergenceError(ReproError):
    """An iterative procedure failed to converge within its iteration limit."""
