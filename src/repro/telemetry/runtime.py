"""Session lifecycle and the instrumentation API.

Instrumentation sites call :func:`span` / :func:`event` / :func:`count` /
:func:`observe` unconditionally; when no session is active every call
resolves to a shared no-op handle, so disabled telemetry costs one
attribute load and a falsy check per site.  That is the mechanism behind
the <3% overhead guarantee — there is no per-site ``if policy.telemetry``
plumbing anywhere in the funnel.

Scoping: the active session lives in a :class:`contextvars.ContextVar`
(so nested sessions restore correctly) with a module-global mirror that
lets pool threads — which do not inherit the submitting thread's context
— reach the coordinator's session.

Cross-process path: process-pool workers are armed by the pool
initializer (:func:`arm_process_worker`), record spans into a private
local collector, and every shard task drains that collector into a
compact wire payload (:func:`drain_worker_payload`) that rides back to
the coordinator on the existing shard result / supervision harvest.
:func:`ingest_worker_payload` merges it into the live session,
correcting for monotonic-epoch skew when the worker's paired
(monotonic, wall) anchor disagrees with the coordinator's.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Optional

from . import clock
from .metrics import MetricsRegistry
from .spans import DEFAULT_CAPACITY, WORKER, Span, TraceCollector

__all__ = [
    "TelemetrySession",
    "session",
    "active",
    "enabled",
    "span",
    "event",
    "count",
    "gauge",
    "observe",
    "arm_process_worker",
    "worker_armed",
    "drain_worker_payload",
    "ingest_worker_payload",
    "record_span",
]

# Beyond this, the worker's monotonic clock does not share the
# coordinator's epoch (per-process monotonic platform, or a container
# boundary) and span starts are re-anchored via the wall-clock pair.
# Below it, the delta is scheduling noise and correcting would jitter
# spans that already share an epoch.
MAX_CLOCK_SKEW_S = 0.5

WORKER_CAPACITY = 8192


class TelemetrySession:
    """One campaign's worth of spans + metrics, coordinator side."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.spans = TraceCollector(capacity)
        self.metrics = MetricsRegistry()
        self.anchor_monotonic, self.anchor_wall = clock.anchor()


_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_telemetry_session", default=None
)
_GLOBAL: Optional[TelemetrySession] = None

# Set only inside armed process-pool workers.
_WORKER_INDEX: Optional[int] = None
_WORKER_SPANS: Optional[TraceCollector] = None
_WORKER_METRICS: Optional[MetricsRegistry] = None


def active() -> Optional[TelemetrySession]:
    """The session visible from this thread (context first, then global)."""
    sess = _ACTIVE.get()
    if sess is not None:
        return sess
    return _GLOBAL


def enabled() -> bool:
    return _WORKER_SPANS is not None or active() is not None


@contextmanager
def session(enabled: bool = True, capacity: int = DEFAULT_CAPACITY):
    """Activate a telemetry session for the duration of the block.

    ``enabled=False`` yields ``None`` and leaves every instrumentation
    site on the no-op path, so callers can write
    ``with telemetry.session(policy.telemetry) as sess:`` unconditionally.
    """
    global _GLOBAL
    if not enabled:
        yield None
        return
    sess = TelemetrySession(capacity)
    token = _ACTIVE.set(sess)
    prev_global = _GLOBAL
    _GLOBAL = sess
    try:
        yield sess
    finally:
        _ACTIVE.reset(token)
        _GLOBAL = prev_global


class _SpanHandle:
    """Live span: records itself on ``__exit__``."""

    __slots__ = ("_name", "_category", "_attrs", "_start")

    def __init__(self, name: str, category: str, attrs: Optional[dict]):
        self._name = name
        self._category = category
        self._attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> "_SpanHandle":
        if self._attrs is None:
            self._attrs = {}
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._start = clock.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = clock.monotonic() - self._start
        if exc_type is not None:
            self.set(error=exc_type.__name__)
        _record(
            self._name, self._category, self._start, duration, self._attrs
        )


class _NullSpan:
    """Shared no-op handle returned when telemetry is off."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def _record(
    name: str,
    category: str,
    start_s: float,
    duration_s: float,
    attrs: Optional[dict],
) -> None:
    if _WORKER_SPANS is not None:
        _WORKER_SPANS.record(
            Span(
                name=name,
                category=category,
                start_s=start_s,
                duration_s=duration_s,
                proc=WORKER,
                worker=_WORKER_INDEX if _WORKER_INDEX is not None else -1,
                attrs=attrs,
            )
        )
        return
    sess = active()
    if sess is not None:
        sess.spans.record(
            Span(
                name=name,
                category=category,
                start_s=start_s,
                duration_s=duration_s,
                attrs=attrs,
            )
        )


def span(name: str, category: str = "app", **attrs):
    """A context manager timing the enclosed block; no-op when disabled."""
    if _WORKER_SPANS is None and active() is None:
        return _NULL_SPAN
    return _SpanHandle(name, category, attrs or None)


def event(name: str, category: str = "event", **attrs) -> None:
    """A zero-duration span marking a point in time."""
    if _WORKER_SPANS is None and active() is None:
        return
    _record(name, category, clock.monotonic(), 0.0, attrs or None)


def record_span(
    name: str,
    category: str,
    start_s: float,
    duration_s: float,
    proc: str = "coordinator",
    worker: int = -1,
    attrs: Optional[dict] = None,
) -> None:
    """Record a span with explicit timing directly into the active session.

    For callers that already hold their own clock readings (the supervisor's
    dispatch→complete round trips) or need a non-default lane (thread-pool
    workers share the coordinator's address space but render on worker
    lanes).  No-op without an active session.
    """
    sess = active()
    if sess is not None:
        sess.spans.record(
            Span(
                name=name,
                category=category,
                start_s=start_s,
                duration_s=duration_s,
                proc=proc,
                worker=worker,
                attrs=attrs,
            )
        )


def _registry() -> Optional[MetricsRegistry]:
    if _WORKER_METRICS is not None:
        return _WORKER_METRICS
    sess = active()
    return sess.metrics if sess is not None else None


def count(name: str, amount: float = 1.0) -> None:
    reg = _registry()
    if reg is not None:
        reg.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    reg = _registry()
    if reg is not None:
        reg.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    reg = _registry()
    if reg is not None:
        reg.histogram(name).observe(value)


# -- process-worker side -------------------------------------------------


def arm_process_worker(worker_index: int, enabled: bool) -> None:
    """Initialize telemetry inside a pool worker process.

    Always clears any coordinator session inherited through ``fork`` —
    a forked child must never write into the parent's (copied) ring —
    then, when enabled, installs a private worker-lane collector.
    Thread-pool workers never call this: they share the coordinator's
    address space and record into the live session directly.
    """
    global _GLOBAL, _WORKER_INDEX, _WORKER_SPANS, _WORKER_METRICS
    _GLOBAL = None
    _ACTIVE.set(None)
    if enabled:
        _WORKER_INDEX = worker_index
        _WORKER_SPANS = TraceCollector(WORKER_CAPACITY)
        _WORKER_METRICS = MetricsRegistry()
    else:
        _WORKER_INDEX = None
        _WORKER_SPANS = None
        _WORKER_METRICS = None


def worker_armed() -> bool:
    return _WORKER_SPANS is not None


def drain_worker_payload() -> Optional[tuple]:
    """Drain this worker's spans/metrics into a compact wire payload.

    Returns ``None`` when the worker is not armed (the shard result then
    stays a plain 2-tuple, preserving the telemetry-off wire format).
    Called at the end of every shard task so a worker killed mid-shard
    loses at most that shard's spans.
    """
    global _WORKER_METRICS
    if _WORKER_SPANS is None or _WORKER_METRICS is None:
        return None
    wire = [s.to_wire() for s in _WORKER_SPANS.drain()]
    metrics = _WORKER_METRICS.to_dict()
    if metrics:
        _WORKER_METRICS = MetricsRegistry()
    return (wire, metrics, clock.anchor())


# -- coordinator-side ingest --------------------------------------------


def ingest_worker_payload(payload: Optional[tuple]) -> None:
    """Merge a worker payload into the active session, aligning clocks.

    On Linux both processes read the same system-wide CLOCK_MONOTONIC,
    so the offset is ~0 and spans merge untouched.  When the anchors
    disagree by more than :data:`MAX_CLOCK_SKEW_S` the worker's spans
    are translated onto the coordinator's monotonic timeline using the
    wall-clock pair as the common reference.
    """
    sess = active()
    if sess is None or payload is None:
        return
    wire_spans, metrics, (anchor_mono, anchor_wall) = payload
    offset = (anchor_wall - anchor_mono) - (
        sess.anchor_wall - sess.anchor_monotonic
    )
    if abs(offset) <= MAX_CLOCK_SKEW_S:
        offset = 0.0
    for wire in wire_spans:
        sess.spans.record(Span.from_wire(wire).shifted(offset))
    if metrics:
        sess.metrics.merge(metrics)
