"""Counters, gauges, and log-bucketed histograms.

The registry is get-or-create by name so instrumentation sites never
need to pre-declare their metrics, and ``to_dict`` / ``merge`` give the
JSON artifact shape and the worker→coordinator aggregation path.

All updates are lock-guarded: the sharded engine touches metrics from
future-completion threads, and process workers keep a private registry
that is merged into the coordinator's when shard payloads are harvested.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

# Geometric buckets from 1µs up to ~1074s (ratio 4): wide enough to hold
# both sub-millisecond IPC latencies and multi-minute campaign phases in
# one fixed shape, which keeps histogram merge a pointwise add.
DEFAULT_BOUNDS = tuple(1e-6 * (4.0**i) for i in range(16))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        with self._lock:
            return {"type": self.kind, "value": self.value}

    def merge(self, payload: dict) -> None:
        with self._lock:
            self.value += float(payload["value"])


class Gauge:
    """Last-observed value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def to_dict(self) -> dict:
        with self._lock:
            return {"type": self.kind, "value": self.value}

    def merge(self, payload: dict) -> None:
        # Gauges are point-in-time; on merge the incoming (worker-side,
        # more recent) reading wins.
        with self._lock:
            self.value = float(payload["value"])


class Histogram:
    """Fixed log-spaced buckets with count/sum/min/max."""

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = self._bucket_index(value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def _bucket_index(self, value: float) -> int:
        # Linear scan: 17 buckets, and instrumentation sites observe at
        # chunk/shard granularity, not per row.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "type": self.kind,
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "bounds": list(self.bounds),
                "counts": list(self.counts),
            }

    def merge(self, payload: dict) -> None:
        if list(payload["bounds"]) != list(self.bounds):
            raise ValueError("cannot merge histograms with different bounds")
        with self._lock:
            self.count += int(payload["count"])
            self.sum += float(payload["sum"])
            self.counts = [a + b for a, b in zip(self.counts, payload["counts"])]
            if payload["min"] is not None and payload["min"] < self.min:
                self.min = payload["min"]
            if payload["max"] is not None and payload["max"] > self.max:
                self.max = payload["max"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create metric store keyed by dotted name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, "gauge")

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        factory = Histogram if bounds is None else (lambda: Histogram(bounds))
        return self._get_or_create(name, factory, "histogram")

    def to_dict(self) -> dict:
        """JSON-ready snapshot, sorted by name for stable artifacts."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.to_dict() for name, metric in items}

    def merge(self, payload: dict) -> None:
        """Fold a ``to_dict`` snapshot (e.g. a worker's) into this registry."""
        for name, entry in payload.items():
            kind = entry["type"]
            if kind == "histogram":
                metric = self.histogram(name, entry["bounds"])
            elif kind == "gauge":
                metric = self.gauge(name)
            elif kind == "counter":
                metric = self.counter(name)
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            metric.merge(entry)
