"""Low-overhead structured tracing + metrics for the execution funnel.

Usage, coordinator side::

    from repro import telemetry

    with telemetry.session(policy.telemetry) as sess:
        with telemetry.span("campaign", "app", run_id=run_id):
            loop.run(...)
    if sess is not None:
        registry.save_telemetry(run_id, sess)

Instrumentation sites (engine, transport, faults, store) call
``telemetry.span/event/count/gauge/observe`` unconditionally — when no
session is active every call is a no-op, which is what keeps the
disabled path free and the enabled path under the 3% overhead budget
pinned by ``benchmarks/bench_telemetry.py``.

Process-pool workers are armed by the pool initializer and ship their
spans back piggybacked on shard results; see :mod:`repro.telemetry.runtime`.
Telemetry never touches RNG state and never reorders work, so enabling
it is bit-identity-neutral (pinned by the equivalence suite).
"""

from .clock import anchor, monotonic, wall
from .export import (
    chrome_trace_events,
    metrics_document,
    read_trace,
    render_timeline,
    write_chrome_trace,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    MAX_CLOCK_SKEW_S,
    TelemetrySession,
    active,
    arm_process_worker,
    count,
    drain_worker_payload,
    enabled,
    event,
    gauge,
    ingest_worker_payload,
    observe,
    record_span,
    session,
    span,
    worker_armed,
)
from .spans import DEFAULT_CAPACITY, Span, TraceCollector

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "MAX_CLOCK_SKEW_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetrySession",
    "TraceCollector",
    "active",
    "anchor",
    "arm_process_worker",
    "chrome_trace_events",
    "count",
    "drain_worker_payload",
    "enabled",
    "event",
    "gauge",
    "ingest_worker_payload",
    "metrics_document",
    "monotonic",
    "observe",
    "read_trace",
    "record_span",
    "render_timeline",
    "session",
    "span",
    "wall",
    "worker_armed",
    "write_chrome_trace",
    "write_trace",
]
