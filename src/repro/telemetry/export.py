"""Durable trace/metric artifacts and renderers.

``trace.jsonl`` layout: a header object on line 1 —

    {"version": 1, "origin_monotonic": ..., "origin_wall": ...,
     "dropped": N, "spans": M}

— then one JSON object per span with ``start_s`` rebased so the
session's activation is t=0.  ``origin_wall`` lets readers recover
calendar time; everything else stays on the monotonic timeline.

Two renderers consume a loaded trace: :func:`chrome_trace_events` emits
Chrome trace-event JSON (load the file in Perfetto / ``chrome://tracing``)
and :func:`render_timeline` draws an ASCII per-lane occupancy chart for
``python -m repro trace <run>``.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Tuple

from .runtime import TelemetrySession
from .spans import Span

__all__ = [
    "TRACE_VERSION",
    "trace_header",
    "write_trace",
    "read_trace",
    "metrics_document",
    "chrome_trace_events",
    "write_chrome_trace",
    "render_timeline",
]

TRACE_VERSION = 1


def trace_header(session: TelemetrySession, span_count: int) -> dict:
    return {
        "version": TRACE_VERSION,
        "origin_monotonic": session.anchor_monotonic,
        "origin_wall": session.anchor_wall,
        "dropped": session.spans.dropped,
        "spans": span_count,
    }


def write_trace(fp: IO[str], session: TelemetrySession) -> int:
    """Write header + spans (rebased to session start, time-ordered).

    Returns the number of spans written.
    """
    origin = session.anchor_monotonic
    spans = sorted(session.spans.snapshot(), key=lambda s: s.start_s)
    fp.write(json.dumps(trace_header(session, len(spans))) + "\n")
    for s in spans:
        fp.write(json.dumps(s.shifted(-origin).to_dict()) + "\n")
    return len(spans)


def read_trace(fp: IO[str]) -> Tuple[dict, List[Span]]:
    """Parse a ``trace.jsonl`` stream back into (header, spans).

    Span ``start_s`` values are relative to the trace origin (t=0).
    """
    header_line = fp.readline()
    if not header_line.strip():
        raise ValueError("empty trace file")
    header = json.loads(header_line)
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {header.get('version')!r}"
        )
    spans = []
    for line in fp:
        if not line.strip():
            continue
        rec = json.loads(line)
        spans.append(
            Span(
                name=rec["name"],
                category=rec["cat"],
                start_s=rec["start_s"],
                duration_s=rec["dur_s"],
                proc=rec["proc"],
                worker=rec["worker"],
                attrs=rec.get("attrs"),
            )
        )
    return header, spans


def metrics_document(session: TelemetrySession) -> dict:
    """The ``metrics.json`` artifact body."""
    return {
        "version": TRACE_VERSION,
        "origin_wall": session.anchor_wall,
        "spans_recorded": len(session.spans),
        "spans_dropped": session.spans.dropped,
        "metrics": session.metrics.to_dict(),
    }


# -- Chrome trace-event export ------------------------------------------


def _tid(span: Span) -> int:
    # tid 0 = coordinator lane; worker N renders as tid N+1.
    return span.worker + 1 if span.proc == "worker" and span.worker >= 0 else 0


def chrome_trace_events(header: dict, spans: List[Span]) -> List[dict]:
    """Chrome trace-event objects (``ph: X`` complete events, µs units)."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro campaign"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "coordinator"},
        },
    ]
    named = {0}
    for s in spans:
        tid = _tid(s)
        if tid not in named:
            named.add(tid)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": s.lane},
                }
            )
        event = {
            "name": s.name,
            "cat": s.category,
            "ph": "X",
            "ts": s.start_s * 1e6,
            "dur": s.duration_s * 1e6,
            "pid": 1,
            "tid": tid,
        }
        if s.attrs:
            event["args"] = s.attrs
        events.append(event)
    return events


def write_chrome_trace(fp: IO[str], header: dict, spans: List[Span]) -> None:
    json.dump(
        {
            "traceEvents": chrome_trace_events(header, spans),
            "displayTimeUnit": "ms",
            "otherData": {"origin_wall": header.get("origin_wall")},
        },
        fp,
    )


# -- ASCII timeline ------------------------------------------------------


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.2f}ms"


def _occupancy_bar(spans: List[Span], end_s: float, width: int) -> str:
    cells = [0.0] * width
    cell_w = end_s / width if end_s > 0 else 1.0
    for s in spans:
        lo = max(0, min(width - 1, int(s.start_s / cell_w)))
        hi = max(0, min(width - 1, int(s.end_s / cell_w)))
        for i in range(lo, hi + 1):
            cell_lo, cell_hi = i * cell_w, (i + 1) * cell_w
            overlap = min(s.end_s, cell_hi) - max(s.start_s, cell_lo)
            if overlap > 0 or s.duration_s == 0.0:
                cells[i] += max(overlap, 0.0)
    out = []
    for filled in cells:
        frac = filled / cell_w
        if frac <= 0.0:
            out.append("·")
        elif frac < 0.5:
            out.append("░")
        elif frac < 0.95:
            out.append("▒")
        else:
            out.append("█")
    return "".join(out)


def render_timeline(
    header: dict,
    spans: List[Span],
    width: int = 64,
    max_shard_rows: int = 48,
) -> str:
    """Per-lane occupancy chart + category summary + shard table."""
    lines: List[str] = []
    if not spans:
        lines.append("trace is empty (0 spans)")
        if header.get("dropped"):
            lines.append(f"spans dropped (ring full): {header['dropped']}")
        return "\n".join(lines)

    end_s = max(s.end_s for s in spans)
    lines.append(
        f"trace: {len(spans)} spans over {_format_seconds(end_s)}"
        + (
            f"  (dropped {header['dropped']} — ring full)"
            if header.get("dropped")
            else ""
        )
    )
    lines.append("")

    # Lane occupancy: coordinator first, then workers in index order.
    lanes = {}
    for s in spans:
        lanes.setdefault(s.lane, []).append(s)
    lane_order = sorted(
        lanes, key=lambda lane: (-1,) if lane == "coordinator" else (
            0,
            int(lane.rsplit("-", 1)[1]) if "-" in lane else 0,
        )
    )
    label_w = max(len(lane) for lane in lane_order)
    for lane in lane_order:
        lane_spans = lanes[lane]
        busy = sum(s.duration_s for s in lane_spans)
        bar = _occupancy_bar(lane_spans, end_s, width)
        lines.append(
            f"{lane:<{label_w}} |{bar}| "
            f"{len(lane_spans)} spans, busy {_format_seconds(busy)}"
        )
    lines.append(f"{'':<{label_w}}  0{'':<{width - 2}}{_format_seconds(end_s)}")
    lines.append("")

    # Category summary.
    cats = {}
    for s in spans:
        count, total = cats.get(s.category, (0, 0.0))
        cats[s.category] = (count + 1, total + s.duration_s)
    lines.append(f"{'category':<12} {'spans':>6} {'total':>10}")
    for cat in sorted(cats, key=lambda c: -cats[c][1]):
        count, total = cats[cat]
        lines.append(f"{cat:<12} {count:>6} {_format_seconds(total):>10}")

    # Shard table: the dispatch→complete spans, in start order.
    shard_spans = [s for s in spans if s.category == "shard"]
    if shard_spans:
        lines.append("")
        lines.append(
            f"{'shard span':<24} {'lane':<{label_w}} "
            f"{'start':>10} {'duration':>10}"
        )
        for s in shard_spans[:max_shard_rows]:
            lines.append(
                f"{s.name:<24} {s.lane:<{label_w}} "
                f"{_format_seconds(s.start_s):>10} "
                f"{_format_seconds(s.duration_s):>10}"
            )
        if len(shard_spans) > max_shard_rows:
            lines.append(f"… and {len(shard_spans) - max_shard_rows} more")
    return "\n".join(lines)
