"""Single home for clock reads.

Every timestamp in repro flows through this module.  ``monotonic()`` is
the only clock allowed in span, deadline, and heartbeat arithmetic:
``CLOCK_MONOTONIC`` is system-wide on Linux, so readings taken in a
worker process are directly comparable to readings taken in the
coordinator, and the clock never steps backwards under NTP adjustments.
``wall()`` exists solely to anchor a monotonic trace to calendar time in
exported artifacts.

The REP008 clock-discipline lint rule enforces the split: wall-clock
reads (``time.time()``, ``datetime.now()``, ...) outside
``repro/telemetry/`` must carry a ``# repro: allow[clock-discipline]``
pragma with a justification.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "wall", "anchor"]


def monotonic() -> float:
    """Seconds on the system-wide monotonic clock."""
    return time.monotonic()


def wall() -> float:
    """Seconds since the epoch.  Only for anchoring exports to calendar
    time and stamping artifact metadata — never for durations or
    deadlines."""
    return time.time()


def anchor() -> tuple[float, float]:
    """A paired ``(monotonic, wall)`` reading.

    Shipped alongside worker span payloads so the coordinator can detect
    (and correct) a monotonic-epoch mismatch on platforms where the
    monotonic clock is per-process rather than system-wide.
    """
    return time.monotonic(), time.time()
