"""Span records and the preallocated ring-buffer collector.

A :class:`Span` is a closed interval on the monotonic timeline with a
name, a category (``engine``, ``shard``, ``store``, ``fault``, ...), the
process lane it ran on (coordinator or a numbered worker) and a small
free-form attribute dict.  Spans are immutable once recorded.

:class:`TraceCollector` is the sink: a fixed-capacity preallocated list
used as a ring, so recording a span is an index assignment and never
allocates buffer storage on the hot path.  When the ring is full the
oldest spans are overwritten and ``dropped`` counts the loss — telemetry
degrades by forgetting history, never by blocking or growing without
bound.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["Span", "TraceCollector", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 65536

COORDINATOR = "coordinator"
WORKER = "worker"


@dataclass(frozen=True)
class Span:
    """One closed interval on the monotonic timeline."""

    name: str
    category: str
    start_s: float
    duration_s: float
    proc: str = COORDINATOR
    worker: int = -1
    attrs: Optional[dict] = None

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def lane(self) -> str:
        """Display lane: ``coordinator`` or ``worker-N``."""
        if self.proc == WORKER and self.worker >= 0:
            return f"worker-{self.worker}"
        return self.proc

    def shifted(self, offset_s: float) -> "Span":
        """A copy translated along the timeline (skew correction)."""
        if offset_s == 0.0:
            return self
        return replace(self, start_s=self.start_s + offset_s)

    def to_dict(self) -> dict:
        """JSON-friendly record (the ``trace.jsonl`` per-span layout)."""
        record = {
            "name": self.name,
            "cat": self.category,
            "start_s": self.start_s,
            "dur_s": self.duration_s,
            "proc": self.proc,
            "worker": self.worker,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def to_wire(self) -> tuple:
        """Compact picklable tuple for the worker→coordinator path."""
        return (
            self.name,
            self.category,
            self.start_s,
            self.duration_s,
            self.proc,
            self.worker,
            self.attrs,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "Span":
        name, category, start_s, duration_s, proc, worker, attrs = wire
        return cls(
            name=name,
            category=category,
            start_s=start_s,
            duration_s=duration_s,
            proc=proc,
            worker=worker,
            attrs=attrs,
        )


class TraceCollector:
    """Fixed-capacity span sink backed by a preallocated ring.

    ``record`` is O(1) and lock-guarded (the sharded engine completes
    futures on multiple threads).  When full, the oldest span is
    overwritten and ``dropped`` is incremented.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: list = [None] * capacity
        self._next = 0
        self._count = 0
        self.dropped = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def record(self, span: Span) -> None:
        with self._lock:
            if self._count == self.capacity:
                self.dropped += 1
            else:
                self._count += 1
            self._ring[self._next] = span
            self._next = (self._next + 1) % self.capacity

    def _ordered(self) -> list:
        # Callers (snapshot/drain) hold self._lock; this helper only exists
        # to share the wraparound math between them.
        start = self._next - self._count  # repro: allow[lock-discipline]
        if start >= 0:
            return self._ring[start : self._next]  # repro: allow[lock-discipline]
        ring, stop = self._ring, self._next  # repro: allow[lock-discipline]
        return [ring[i % self.capacity] for i in range(start, stop)]

    def snapshot(self) -> list:
        """Spans in record order (oldest first); buffer is untouched."""
        with self._lock:
            return self._ordered()

    def drain(self) -> list:
        """Spans in record order; clears the buffer (keeps ``dropped``)."""
        with self._lock:
            out = self._ordered()
            self._ring = [None] * self.capacity
            self._next = 0
            self._count = 0
            return out
