"""repro — Operational adversarial example detection for reliable deep learning.

Reproduction of the DSN 2021 fast abstract *"Detecting Operational Adversarial
Examples for Reliable Deep Learning"* (Zhao, Huang, Schewe, Dong, Huang).

The package implements the paper's five-step testing workflow and every
substrate it depends on:

* :mod:`repro.nn` — numpy deep-learning framework (models under test).
* :mod:`repro.data` — synthetic datasets, transforms, input-space cells.
* :mod:`repro.op` — operational-profile modelling, estimation, synthesis, drift (RQ1).
* :mod:`repro.naturalness` — quantified naturalness / local-OP proxies.
* :mod:`repro.attacks` — FGSM, PGD and black-box baselines.
* :mod:`repro.engine` — batched model-query engine (chunking, caching,
  lock-step population fuzzing).
* :mod:`repro.sampling` — weight-based seed sampling (RQ2).
* :mod:`repro.fuzzing` — naturalness-guided operational fuzzer (RQ3).
* :mod:`repro.retraining` — OP-aware adversarial retraining (RQ4).
* :mod:`repro.reliability` — cell-based reliability assessment (RQ5).
* :mod:`repro.core` — detection methods, comparison harness and the full loop.
* :mod:`repro.evaluation` — experiment scenarios and reporting.
* :mod:`repro.store` — persistent campaign store (durable query cache,
  checkpoint/resume, run registry + ``python -m repro`` CLI).
* :mod:`repro.runtime` — the runtime API: :class:`ExecutionPolicy`, the
  :class:`ModelBackend` registry and declarative :class:`CampaignSpec` files.
"""

from . import (
    attacks,
    config,
    core,
    data,
    engine,
    evaluation,
    exceptions,
    fuzzing,
    naturalness,
    nn,
    op,
    reliability,
    retraining,
    runtime,
    sampling,
    store,
    types,
)
from .types import (
    AdversarialExample,
    CampaignReport,
    Classifier,
    DetectionResult,
    IterationReport,
    LabeledBatch,
)

__version__ = "1.0.0"

__all__ = [
    "attacks",
    "config",
    "core",
    "data",
    "engine",
    "evaluation",
    "exceptions",
    "fuzzing",
    "naturalness",
    "nn",
    "op",
    "reliability",
    "retraining",
    "runtime",
    "sampling",
    "store",
    "types",
    "AdversarialExample",
    "CampaignReport",
    "Classifier",
    "DetectionResult",
    "IterationReport",
    "LabeledBatch",
    "__version__",
]
