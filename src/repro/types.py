"""Shared dataclasses and protocols used across subsystems.

These are the "wire types" that flow between the five steps of the paper's
workflow (Figure 1): labelled datasets, detected adversarial examples, test
cases, and campaign-level reports.  Keeping them in one module avoids circular
imports between :mod:`repro.core` and the subsystem packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from .exceptions import DataError, ShapeError


@runtime_checkable
class Classifier(Protocol):
    """Minimal protocol the testing machinery requires from a model under test.

    Any object with these methods can be plugged into the attacks, the fuzzer,
    the reliability assessor and the workflow — not only :class:`repro.nn`
    networks.
    """

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return predicted class labels for a batch of inputs."""
        ...

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Return class probabilities, shape ``(n, num_classes)``."""
        ...

    def loss_input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return the gradient of the loss w.r.t. the inputs."""
        ...


@dataclass
class LabeledBatch:
    """A batch of inputs with integer class labels.

    Attributes
    ----------
    x:
        Inputs, shape ``(n, d)`` with features flattened to one axis.
    y:
        Integer labels, shape ``(n,)``.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=int)
        if self.x.ndim != 2:
            raise ShapeError(f"x must be 2-D (n, d), got shape {self.x.shape}")
        if self.y.ndim != 1:
            raise ShapeError(f"y must be 1-D (n,), got shape {self.y.shape}")
        if self.x.shape[0] != self.y.shape[0]:
            raise DataError(
                f"x and y disagree on batch size: {self.x.shape[0]} vs {self.y.shape[0]}"
            )

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def subset(self, indices: Sequence[int]) -> "LabeledBatch":
        """Return a new batch containing only the rows in ``indices``."""
        idx = np.asarray(indices, dtype=int)
        return LabeledBatch(self.x[idx], self.y[idx])

    def concat(self, other: "LabeledBatch") -> "LabeledBatch":
        """Return the concatenation of this batch with ``other``."""
        if other.num_features != self.num_features:
            raise DataError(
                "cannot concatenate batches with different feature counts: "
                f"{self.num_features} vs {other.num_features}"
            )
        return LabeledBatch(
            np.concatenate([self.x, other.x], axis=0),
            np.concatenate([self.y, other.y], axis=0),
        )


@dataclass
class AdversarialExample:
    """A single detected adversarial example.

    Attributes
    ----------
    seed:
        The original (correctly handled or operational) input the attack
        started from, shape ``(d,)``.
    perturbed:
        The adversarial input that is misclassified, shape ``(d,)``.
    true_label:
        Ground-truth label of the seed.
    predicted_label:
        The (wrong) label the model assigns to ``perturbed``.
    distance:
        Norm of the perturbation (in the attack's norm).
    naturalness:
        Naturalness score of ``perturbed`` (higher is more natural);
        ``None`` when the detecting method did not evaluate it.
    op_density:
        Operational-profile density at the seed (higher means the
        surrounding region is executed more often in operation);
        ``None`` when unknown.
    method:
        Name of the detection method that produced this AE.
    queries:
        Number of model queries (test cases) spent to find this AE.
    """

    seed: np.ndarray
    perturbed: np.ndarray
    true_label: int
    predicted_label: int
    distance: float
    naturalness: Optional[float] = None
    op_density: Optional[float] = None
    method: str = "unknown"
    queries: int = 0

    def perturbation(self) -> np.ndarray:
        """Return the raw perturbation vector ``perturbed - seed``."""
        return np.asarray(self.perturbed) - np.asarray(self.seed)


@dataclass
class DetectionResult:
    """Outcome of running one detection method under a test-case budget.

    Attributes
    ----------
    method:
        Human-readable name of the testing method.
    adversarial_examples:
        All AEs found within the budget.
    test_cases_used:
        Total number of model queries spent.
    budget:
        The budget the method was given.
    seeds_attacked:
        Number of distinct seeds the method attacked.
    """

    method: str
    adversarial_examples: List[AdversarialExample] = field(default_factory=list)
    test_cases_used: int = 0
    budget: int = 0
    seeds_attacked: int = 0

    @property
    def num_detected(self) -> int:
        return len(self.adversarial_examples)

    def detection_rate(self) -> float:
        """AEs found per test case spent (0 if nothing was spent)."""
        if self.test_cases_used == 0:
            return 0.0
        return self.num_detected / self.test_cases_used

    def mean_op_density(self) -> float:
        """Mean operational density over detected AEs (0 if none carry it)."""
        values = [
            ae.op_density for ae in self.adversarial_examples if ae.op_density is not None
        ]
        if not values:
            return 0.0
        return float(np.mean(values))

    def mean_naturalness(self) -> float:
        """Mean naturalness score over detected AEs (0 if none carry it)."""
        values = [
            ae.naturalness for ae in self.adversarial_examples if ae.naturalness is not None
        ]
        if not values:
            return 0.0
        return float(np.mean(values))

    def operational_weight(self) -> float:
        """Total OP density mass of the detected AEs.

        This is the quantity the paper cares about: detecting many AEs in
        regions that are never executed contributes nothing to delivered
        reliability, so we score a method by the OP mass of what it finds.
        """
        return float(
            sum(ae.op_density or 0.0 for ae in self.adversarial_examples)
        )


@dataclass
class IterationReport:
    """Summary of one pass through the five-step loop of Figure 1."""

    iteration: int
    seeds_selected: int
    test_cases_used: int
    aes_detected: int
    pmi_before: float
    pmi_after: float
    operational_accuracy_before: float
    operational_accuracy_after: float
    reliability_target: float
    target_met: bool
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def pmi_improvement(self) -> float:
        """Absolute reduction in probability of misclassification per input."""
        return self.pmi_before - self.pmi_after


@dataclass
class CampaignReport:
    """Full report of an operational testing campaign (all loop iterations)."""

    iterations: List[IterationReport] = field(default_factory=list)
    total_test_cases: int = 0
    total_aes: int = 0
    final_pmi: float = float("nan")
    target_met: bool = False

    def append(self, report: IterationReport) -> None:
        self.iterations.append(report)
        self.total_test_cases += report.test_cases_used
        self.total_aes += report.aes_detected
        self.final_pmi = report.pmi_after
        self.target_met = report.target_met

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)
