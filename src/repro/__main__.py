"""Entry point for ``python -m repro``.

Two command families share the entry point: the campaign-store CLI
(``run``/``resume``/``ls``/``show``/``gc``, see :mod:`repro.store.cli`) and
the static invariant linter (``lint``, see :mod:`repro.analysis.cli`).  The
``lint`` verb is dispatched before the store parser so the linter owns its
own argument surface (paths, ``--json``, baseline flags).
"""

import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:]) if argv is None else list(argv)
    if args and args[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(args[1:])
    from .store.cli import main as store_main

    return store_main(args)


if __name__ == "__main__":
    sys.exit(main())
