"""Entry point for ``python -m repro`` (the campaign-store CLI)."""

import sys

from .store.cli import main

if __name__ == "__main__":
    sys.exit(main())
