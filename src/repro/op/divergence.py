"""Divergences between distributions over the input space.

Used to (i) score how well an estimated operational profile matches the ground
truth (experiment E5), (ii) quantify the train/operation mismatch that
motivates the paper, and (iii) detect operational-profile drift after
deployment.  All divergences operate on discrete distributions; continuous
profiles are first discretised onto a common cell partition.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import EPSILON, RngLike
from ..data.partition import Partition
from ..exceptions import ShapeError
from .profile import OperationalProfile


def _validate_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape or p.ndim != 1:
        raise ShapeError(
            f"expected two 1-D distributions of equal length, got {p.shape} and {q.shape}"
        )
    if np.any(p < -EPSILON) or np.any(q < -EPSILON):
        raise ShapeError("distributions must be non-negative")
    p = np.maximum(p, 0.0)
    q = np.maximum(q, 0.0)
    p_sum, q_sum = p.sum(), q.sum()
    if p_sum <= 0 or q_sum <= 0:
        raise ShapeError("distributions must have positive mass")
    return p / p_sum, q / q_sum


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback–Leibler divergence ``KL(p || q)`` in nats (q is floored)."""
    p, q = _validate_pair(p, q)
    q = np.maximum(q, EPSILON)
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen–Shannon divergence (symmetric, bounded by ``log 2``)."""
    p, q = _validate_pair(p, q)
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance ``0.5 * sum |p - q|`` in ``[0, 1]``."""
    p, q = _validate_pair(p, q)
    return float(0.5 * np.sum(np.abs(p - q)))


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Hellinger distance in ``[0, 1]``."""
    p, q = _validate_pair(p, q)
    return float(np.sqrt(0.5 * np.sum((np.sqrt(p) - np.sqrt(q)) ** 2)))


def profile_divergence(
    estimated: OperationalProfile,
    reference: OperationalProfile,
    partition: Partition,
    metric: str = "js",
    num_samples: int = 4096,
    rng: RngLike = None,
) -> float:
    """Divergence between two profiles after discretising onto ``partition``.

    Parameters
    ----------
    estimated, reference:
        The two profiles to compare (order matters only for ``"kl"``).
    partition:
        Cell partition used for discretisation.
    metric:
        ``"kl"``, ``"js"``, ``"tv"`` or ``"hellinger"``.
    num_samples:
        Monte Carlo samples used to discretise each profile.
    """
    table = {
        "kl": kl_divergence,
        "js": js_divergence,
        "tv": total_variation,
        "hellinger": hellinger_distance,
    }
    if metric not in table:
        raise ShapeError(f"unknown metric {metric!r}; expected one of {sorted(table)}")
    p = estimated.cell_probabilities(partition, num_samples=num_samples, rng=rng)
    q = reference.cell_probabilities(partition, num_samples=num_samples, rng=rng)
    return table[metric](p, q)


def empirical_distribution(
    x: np.ndarray, partition: Partition, smoothing: float = 0.0
) -> np.ndarray:
    """Histogram a batch of inputs over a partition's cells (optionally smoothed)."""
    if smoothing < 0:
        raise ShapeError("smoothing must be non-negative")
    cell_ids = partition.assign(x)
    counts = np.bincount(cell_ids, minlength=partition.num_cells).astype(float)
    counts += smoothing
    total = counts.sum()
    if total <= 0:
        raise ShapeError("empirical distribution has no mass")
    return counts / total


__all__ = [
    "kl_divergence",
    "js_divergence",
    "total_variation",
    "hellinger_distance",
    "profile_divergence",
    "empirical_distribution",
]
