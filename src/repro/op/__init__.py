"""Operational profile (OP) modelling, estimation, synthesis and drift.

Implements RQ1 of the paper: representing the OP, learning it from operational
data, synthesising an operational dataset from it, measuring its divergence
from the training distribution, and detecting post-deployment drift.
"""

from .divergence import (
    empirical_distribution,
    hellinger_distance,
    js_divergence,
    kl_divergence,
    profile_divergence,
    total_variation,
)
from .drift import DriftDetector, DriftReport, OperationScenario
from .estimation import (
    FrequencyProfileEstimator,
    GMMProfileEstimator,
    KDEProfileEstimator,
    ProfileEstimator,
)
from .profile import (
    CellProfile,
    EmpiricalProfile,
    GaussianMixtureProfile,
    OperationalProfile,
    ground_truth_profile_for_clusters,
    profile_from_dataset,
)
from .synthesis import OperationalDatasetSynthesizer, synthesize_operational_dataset

__all__ = [
    "empirical_distribution",
    "hellinger_distance",
    "js_divergence",
    "kl_divergence",
    "profile_divergence",
    "total_variation",
    "DriftDetector",
    "DriftReport",
    "OperationScenario",
    "FrequencyProfileEstimator",
    "GMMProfileEstimator",
    "KDEProfileEstimator",
    "ProfileEstimator",
    "CellProfile",
    "EmpiricalProfile",
    "GaussianMixtureProfile",
    "OperationalProfile",
    "ground_truth_profile_for_clusters",
    "profile_from_dataset",
    "OperationalDatasetSynthesizer",
    "synthesize_operational_dataset",
]
