"""Operational profile representations.

Musa defines the operational profile (OP) as a probability distribution over
the input domain quantifying how the software will be operated.  The paper
needs three things from an OP: (i) *density* queries (how likely is the
neighbourhood of this input to be exercised in operation), (ii) *sampling*
(draw realistic operational inputs, possibly with labels, to form the
operational dataset of RQ1), and (iii) *cell probabilities* (the OP mass of
every cell of a partition, which the ReAsDL-style reliability model of RQ5
multiplies with per-cell unastuteness).

Several concrete profiles are provided, from exact parametric ground truths
(used by the synthetic benchmarks) to empirical/KDE profiles estimated from
operational data (see :mod:`repro.op.estimation`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..config import EPSILON, RngLike, ensure_rng
from ..data.dataset import Dataset
from ..data.partition import Partition
from ..exceptions import ProfileError, ShapeError


class OperationalProfile:
    """Interface shared by all operational-profile representations."""

    @property
    def num_features(self) -> int:
        """Dimensionality of the input space the profile is defined over."""
        raise NotImplementedError

    def density(self, x: np.ndarray) -> np.ndarray:
        """Return the (unnormalised) operational density at each row of ``x``."""
        raise NotImplementedError

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``size`` operational inputs."""
        raise NotImplementedError

    def sample_labeled(
        self, size: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Draw operational inputs together with labels when the profile has them.

        Profiles that do not carry label information return ``(x, None)``.
        """
        return self.sample(size, rng), None

    def cell_probabilities(
        self,
        partition: Partition,
        num_samples: int = 4096,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Estimate the OP probability of every cell of ``partition``.

        The default implementation is Monte Carlo: draw operational samples
        and histogram them over the cells.  Subclasses with analytic structure
        may override this.
        """
        if num_samples <= 0:
            raise ProfileError("num_samples must be positive")
        samples = self.sample(num_samples, rng)
        cell_ids = partition.assign(samples)
        counts = np.bincount(cell_ids, minlength=partition.num_cells).astype(float)
        total = counts.sum()
        if total <= 0:
            raise ProfileError("cell probability estimation produced no samples")
        return counts / total

    def normalized_density(self, x: np.ndarray, reference: np.ndarray) -> np.ndarray:
        """Density of ``x`` rescaled so the mean density of ``reference`` is one.

        Useful for turning raw densities into interpretable relative weights.
        """
        ref = self.density(reference)
        scale = float(np.mean(ref))
        if scale <= 0:
            scale = EPSILON
        return self.density(x) / scale

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"profile expects {self.num_features} features, got {x.shape[1]}"
            )
        return x


class GaussianMixtureProfile(OperationalProfile):
    """OP represented as a Gaussian mixture with diagonal covariances.

    This is the exact ground-truth profile of the Gaussian-cluster benchmark
    and the workhorse parametric estimate for everything else.  Components may
    optionally carry class labels, making the profile label-aware.
    """

    def __init__(
        self,
        weights: np.ndarray,
        means: np.ndarray,
        variances: np.ndarray,
        component_labels: Optional[np.ndarray] = None,
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        means = np.atleast_2d(np.asarray(means, dtype=float))
        variances = np.atleast_2d(np.asarray(variances, dtype=float))
        if weights.ndim != 1:
            raise ProfileError("weights must be a 1-D array")
        if len(weights) != len(means) or len(weights) != len(variances):
            raise ProfileError("weights, means and variances must have equal length")
        if means.shape != variances.shape:
            raise ProfileError("means and variances must have the same shape")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ProfileError("component weights must be non-negative with positive sum")
        if np.any(variances <= 0):
            raise ProfileError("variances must be strictly positive")
        self.weights = weights / weights.sum()
        self.means = means
        self.variances = variances
        if component_labels is not None:
            component_labels = np.asarray(component_labels, dtype=int)
            if component_labels.shape != (len(weights),):
                raise ProfileError("component_labels must have one entry per component")
        self.component_labels = component_labels

    @property
    def num_features(self) -> int:
        return self.means.shape[1]

    @property
    def num_components(self) -> int:
        return len(self.weights)

    def _log_component_densities(self, x: np.ndarray) -> np.ndarray:
        """Return log N(x | mean_k, var_k) for every (row, component) pair."""
        x = self._check_input(x)
        diff = x[:, None, :] - self.means[None, :, :]
        inv_var = 1.0 / self.variances[None, :, :]
        log_det = np.sum(np.log(self.variances), axis=1)
        quad = np.sum(diff**2 * inv_var, axis=2)
        d = self.num_features
        return -0.5 * (quad + log_det[None, :] + d * np.log(2 * np.pi))

    def density(self, x: np.ndarray) -> np.ndarray:
        log_comp = self._log_component_densities(x)
        log_weights = np.log(np.maximum(self.weights, EPSILON))
        stacked = log_comp + log_weights[None, :]
        max_log = stacked.max(axis=1, keepdims=True)
        return np.exp(max_log[:, 0]) * np.sum(np.exp(stacked - max_log), axis=1)

    def log_density(self, x: np.ndarray) -> np.ndarray:
        """Log of :meth:`density`, computed stably."""
        log_comp = self._log_component_densities(x)
        log_weights = np.log(np.maximum(self.weights, EPSILON))
        stacked = log_comp + log_weights[None, :]
        max_log = stacked.max(axis=1)
        return max_log + np.log(np.sum(np.exp(stacked - max_log[:, None]), axis=1))

    def responsibilities(self, x: np.ndarray) -> np.ndarray:
        """Posterior component membership probabilities for each row of ``x``."""
        log_comp = self._log_component_densities(x)
        log_weights = np.log(np.maximum(self.weights, EPSILON))
        stacked = log_comp + log_weights[None, :]
        stacked -= stacked.max(axis=1, keepdims=True)
        probs = np.exp(stacked)
        return probs / probs.sum(axis=1, keepdims=True)

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        x, _ = self.sample_labeled(size, rng)
        return x

    def sample_labeled(
        self, size: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if size <= 0:
            raise ProfileError("sample size must be positive")
        generator = ensure_rng(rng)
        components = generator.choice(self.num_components, size=size, p=self.weights)
        noise = generator.normal(size=(size, self.num_features))
        x = self.means[components] + noise * np.sqrt(self.variances[components])
        x = np.clip(x, 0.0, 1.0)
        if self.component_labels is None:
            return x, None
        return x, self.component_labels[components]

    def class_prior(self, num_classes: int) -> np.ndarray:
        """Marginal class distribution implied by labelled components."""
        if self.component_labels is None:
            raise ProfileError("this profile has no component labels")
        prior = np.zeros(num_classes)
        for weight, label in zip(self.weights, self.component_labels):
            if not 0 <= label < num_classes:
                raise ProfileError(f"component label {label} out of range")
            prior[label] += weight
        return prior


class EmpiricalProfile(OperationalProfile):
    """OP represented by a weighted pool of operational samples.

    Density queries use a Gaussian kernel density estimate over the pool;
    sampling draws pool rows (with replacement) proportionally to their
    weights and optionally adds resampling noise ("smoothed bootstrap") so the
    synthesised operational dataset is not a verbatim copy of the pool.
    """

    def __init__(
        self,
        samples: np.ndarray,
        labels: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        bandwidth: Optional[float] = None,
        resample_noise: float = 0.0,
    ) -> None:
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if len(samples) == 0:
            raise ProfileError("EmpiricalProfile requires at least one sample")
        self.samples = samples
        if labels is not None:
            labels = np.asarray(labels, dtype=int)
            if labels.shape != (len(samples),):
                raise ProfileError("labels must align with samples")
        self.labels = labels
        if weights is None:
            weights = np.full(len(samples), 1.0 / len(samples))
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (len(samples),):
                raise ProfileError("weights must align with samples")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ProfileError("weights must be non-negative with positive sum")
            weights = weights / weights.sum()
        self.weights = weights
        if bandwidth is None:
            bandwidth = self._scott_bandwidth(samples)
        if bandwidth <= 0:
            raise ProfileError("bandwidth must be positive")
        self.bandwidth = float(bandwidth)
        if resample_noise < 0:
            raise ProfileError("resample_noise must be non-negative")
        self.resample_noise = float(resample_noise)

    @staticmethod
    def _scott_bandwidth(samples: np.ndarray) -> float:
        n, d = samples.shape
        spread = float(np.mean(np.std(samples, axis=0)))
        if spread <= 0:
            spread = 0.1
        return max(spread * n ** (-1.0 / (d + 4)), 1e-3)

    @property
    def num_features(self) -> int:
        return self.samples.shape[1]

    def density(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        # Gaussian KDE with shared isotropic bandwidth, evaluated blockwise to
        # bound memory for large pools.
        h2 = self.bandwidth**2
        d = self.num_features
        log_norm = -0.5 * d * np.log(2 * np.pi * h2)
        densities = np.zeros(len(x))
        block = 256
        for start in range(0, len(x), block):
            chunk = x[start : start + block]
            sq_dist = np.sum(
                (chunk[:, None, :] - self.samples[None, :, :]) ** 2, axis=2
            )
            log_kernel = log_norm - 0.5 * sq_dist / h2
            max_log = log_kernel.max(axis=1, keepdims=True)
            weighted = self.weights[None, :] * np.exp(log_kernel - max_log)
            densities[start : start + block] = np.exp(max_log[:, 0]) * weighted.sum(axis=1)
        return densities

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        x, _ = self.sample_labeled(size, rng)
        return x

    def sample_labeled(
        self, size: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if size <= 0:
            raise ProfileError("sample size must be positive")
        generator = ensure_rng(rng)
        indices = generator.choice(len(self.samples), size=size, p=self.weights)
        x = self.samples[indices].copy()
        if self.resample_noise > 0:
            x = np.clip(
                x + generator.normal(0.0, self.resample_noise, size=x.shape), 0.0, 1.0
            )
        labels = self.labels[indices] if self.labels is not None else None
        return x, labels

    def class_prior(self, num_classes: int) -> np.ndarray:
        """Weighted class frequencies of the pool."""
        if self.labels is None:
            raise ProfileError("this profile has no labels")
        prior = np.zeros(num_classes)
        np.add.at(prior, self.labels, self.weights)
        total = prior.sum()
        return prior / total if total > 0 else np.full(num_classes, 1.0 / num_classes)


class CellProfile(OperationalProfile):
    """OP given directly as a probability per cell of a fixed partition."""

    def __init__(self, partition: Partition, probabilities: np.ndarray) -> None:
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (partition.num_cells,):
            raise ProfileError(
                f"probabilities must have shape ({partition.num_cells},), "
                f"got {probabilities.shape}"
            )
        if np.any(probabilities < 0) or probabilities.sum() <= 0:
            raise ProfileError("cell probabilities must be non-negative with positive sum")
        self.partition = partition
        self.probabilities = probabilities / probabilities.sum()

    @property
    def num_features(self) -> int:
        return self.partition.num_features

    def density(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        cell_ids = self.partition.assign(x)
        return self.probabilities[cell_ids]

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        if size <= 0:
            raise ProfileError("sample size must be positive")
        generator = ensure_rng(rng)
        cells = generator.choice(self.partition.num_cells, size=size, p=self.probabilities)
        unique, counts = np.unique(cells, return_counts=True)
        rows = [
            self.partition.sample_in_cell(int(cell), int(count), generator)
            for cell, count in zip(unique, counts)
        ]
        samples = np.concatenate(rows, axis=0)
        return samples[generator.permutation(len(samples))]

    def cell_probabilities(
        self,
        partition: Partition,
        num_samples: int = 4096,
        rng: RngLike = None,
    ) -> np.ndarray:
        if partition is self.partition:
            return self.probabilities.copy()
        return super().cell_probabilities(partition, num_samples, rng)


def ground_truth_profile_for_clusters(
    num_classes: int,
    num_features: int,
    cluster_std: float,
    class_priors: Optional[Sequence[float]] = None,
) -> GaussianMixtureProfile:
    """Exact OP of :func:`repro.data.make_gaussian_clusters` with the same parameters."""
    if class_priors is None:
        weights = np.full(num_classes, 1.0 / num_classes)
    else:
        weights = np.asarray(class_priors, dtype=float)
        if weights.shape != (num_classes,):
            raise ProfileError("class_priors must have one entry per class")
        weights = weights / weights.sum()
    angles = 2 * np.pi * np.arange(num_classes) / num_classes
    means = np.full((num_classes, num_features), 0.5)
    means[:, 0] = 0.5 + 0.3 * np.cos(angles)
    means[:, 1] = 0.5 + 0.3 * np.sin(angles)
    variances = np.full((num_classes, num_features), cluster_std**2)
    return GaussianMixtureProfile(
        weights, means, variances, component_labels=np.arange(num_classes)
    )


def profile_from_dataset(
    dataset: Dataset,
    class_priors: Optional[Sequence[float]] = None,
    resample_noise: float = 0.01,
) -> EmpiricalProfile:
    """Build an empirical OP from a dataset, optionally reweighting classes.

    This is the standard way to define a *ground-truth* operational profile
    for the image-like benchmarks: take natural samples and impose the class
    frequencies observed (or expected) in operation.
    """
    if class_priors is None:
        weights = np.full(len(dataset), 1.0 / max(len(dataset), 1))
    else:
        priors = np.asarray(class_priors, dtype=float)
        if priors.shape != (dataset.num_classes,):
            raise ProfileError("class_priors must have one entry per class")
        if np.any(priors < 0) or priors.sum() <= 0:
            raise ProfileError("class_priors must be non-negative with positive sum")
        priors = priors / priors.sum()
        counts = dataset.class_counts().astype(float)
        weights = np.zeros(len(dataset))
        for label in range(dataset.num_classes):
            members = dataset.indices_of_class(label)
            if len(members) == 0:
                continue
            weights[members] = priors[label] / counts[label]
    return EmpiricalProfile(
        dataset.x, labels=dataset.y, weights=weights, resample_noise=resample_noise
    )


__all__ = [
    "OperationalProfile",
    "GaussianMixtureProfile",
    "EmpiricalProfile",
    "CellProfile",
    "ground_truth_profile_for_clusters",
    "profile_from_dataset",
]
