"""Learning the operational profile from operational data (RQ1).

In operation, the deployed model sees a stream of inputs whose distribution —
the operational profile — usually differs from the balanced training set.
RQ1 asks how to learn that profile effectively.  Three estimators are
provided, in increasing order of structure:

* :class:`FrequencyProfileEstimator` — estimates only the class prior from
  (pseudo-)labels and reuses natural per-class data for the conditional; the
  classic Musa-style OP over operation modes.
* :class:`KDEProfileEstimator` — non-parametric kernel density estimate over
  the raw inputs.
* :class:`GMMProfileEstimator` — a diagonal-covariance Gaussian mixture fitted
  with expectation–maximisation.

All estimators return an :class:`repro.op.profile.OperationalProfile`, so the
rest of the pipeline is agnostic to how the OP was obtained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..config import EPSILON, RngLike, ensure_rng
from ..data.dataset import Dataset
from ..exceptions import ConvergenceError, DataError, ProfileError
from ..types import Classifier

if TYPE_CHECKING:  # pragma: no cover - annotations only (import cycle:
    # runtime.policy reaches this module via engine → naturalness → op)
    from ..runtime.policy import ExecutionPolicy
from .profile import EmpiricalProfile, GaussianMixtureProfile, OperationalProfile


class ProfileEstimator:
    """Interface of operational-profile estimators."""

    def fit(self, x: np.ndarray, labels: Optional[np.ndarray] = None) -> OperationalProfile:
        """Estimate an OP from operational inputs ``x`` (labels optional)."""
        raise NotImplementedError


@dataclass
class FrequencyProfileEstimator(ProfileEstimator):
    """Class-frequency OP: estimate the operational class prior, reuse natural data.

    Parameters
    ----------
    reference:
        A labelled dataset of natural inputs providing the within-class
        conditional distribution (typically the existing training/test data).
    model:
        Optional classifier used to pseudo-label unlabeled operational inputs.
        Queried through the ``policy`` funnel, so pseudo-labelling is batched,
        cache-aware and visible in the campaign's ``QueryStats``.
    policy:
        Execution policy used to build the query engine over ``model``; the
        default in-process policy is used when ``None``.  A ``model`` that is
        already an engine passes through unchanged.
    smoothing:
        Additive (Laplace) smoothing applied to the class counts, so classes
        unseen in the operational sample keep a small positive probability.
    resample_noise:
        Smoothed-bootstrap noise for the resulting empirical profile.
    """

    reference: Dataset
    model: Optional[Classifier] = None
    policy: Optional["ExecutionPolicy"] = None
    smoothing: float = 1.0
    resample_noise: float = 0.01

    def fit(self, x: np.ndarray, labels: Optional[np.ndarray] = None) -> EmpiricalProfile:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if len(x) == 0:
            raise DataError("cannot estimate an operational profile from zero samples")
        if self.smoothing < 0:
            raise ProfileError("smoothing must be non-negative")
        if labels is None:
            if self.model is None:
                raise ProfileError(
                    "FrequencyProfileEstimator needs labels or a model for pseudo-labels"
                )
            from ..runtime.policy import ExecutionPolicy

            policy = self.policy if self.policy is not None else ExecutionPolicy()
            with policy.session(self.model) as engine:
                labels = np.asarray(engine.predict(x), dtype=int)
        else:
            labels = np.asarray(labels, dtype=int)
            if labels.shape != (len(x),):
                raise DataError("labels must align with the operational inputs")
        counts = np.bincount(labels, minlength=self.reference.num_classes).astype(float)
        priors = counts + self.smoothing
        priors = priors / priors.sum()

        counts_ref = self.reference.class_counts().astype(float)
        weights = np.zeros(len(self.reference))
        for label in range(self.reference.num_classes):
            members = self.reference.indices_of_class(label)
            if len(members) == 0:
                continue
            weights[members] = priors[label] / counts_ref[label]
        return EmpiricalProfile(
            self.reference.x,
            labels=self.reference.y,
            weights=weights,
            resample_noise=self.resample_noise,
        )


@dataclass
class KDEProfileEstimator(ProfileEstimator):
    """Kernel density estimate of the OP over raw operational inputs.

    Parameters
    ----------
    bandwidth:
        Kernel bandwidth; ``None`` uses Scott's rule.
    max_samples:
        Operational samples retained in the KDE pool (subsampled beyond this,
        keeping density queries affordable).
    resample_noise:
        Smoothed-bootstrap noise used when sampling from the fitted profile;
        defaults to the bandwidth when ``None``.
    """

    bandwidth: Optional[float] = None
    max_samples: int = 2000
    resample_noise: Optional[float] = None
    rng: RngLike = None

    def fit(self, x: np.ndarray, labels: Optional[np.ndarray] = None) -> EmpiricalProfile:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if len(x) == 0:
            raise DataError("cannot estimate an operational profile from zero samples")
        if self.max_samples <= 0:
            raise ProfileError("max_samples must be positive")
        generator = ensure_rng(self.rng)
        if labels is not None:
            labels = np.asarray(labels, dtype=int)
            if labels.shape != (len(x),):
                raise DataError("labels must align with the operational inputs")
        if len(x) > self.max_samples:
            idx = generator.choice(len(x), size=self.max_samples, replace=False)
            x = x[idx]
            labels = labels[idx] if labels is not None else None
        profile = EmpiricalProfile(x, labels=labels, bandwidth=self.bandwidth)
        noise = self.resample_noise if self.resample_noise is not None else profile.bandwidth
        profile.resample_noise = float(noise)
        return profile


@dataclass
class GMMProfileEstimator(ProfileEstimator):
    """Diagonal-covariance Gaussian mixture fitted with EM.

    Parameters
    ----------
    num_components:
        Number of mixture components.
    max_iterations:
        EM iteration cap.
    tolerance:
        Relative log-likelihood improvement below which EM stops.
    min_variance:
        Variance floor preventing degenerate components.
    num_restarts:
        Independent EM restarts; the best log-likelihood wins.
    """

    num_components: int = 4
    max_iterations: int = 200
    tolerance: float = 1e-5
    min_variance: float = 1e-4
    num_restarts: int = 2
    rng: RngLike = None

    def fit(self, x: np.ndarray, labels: Optional[np.ndarray] = None) -> GaussianMixtureProfile:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if len(x) < self.num_components:
            raise DataError(
                f"need at least {self.num_components} samples to fit "
                f"{self.num_components} components, got {len(x)}"
            )
        if self.num_components <= 0:
            raise ProfileError("num_components must be positive")
        if self.max_iterations <= 0 or self.num_restarts <= 0:
            raise ProfileError("max_iterations and num_restarts must be positive")
        generator = ensure_rng(self.rng)
        best: Optional[GaussianMixtureProfile] = None
        best_ll = -np.inf
        last_error: Optional[Exception] = None
        for _ in range(self.num_restarts):
            try:
                profile, ll = self._fit_once(x, generator)
            except ConvergenceError as exc:  # keep trying other restarts
                last_error = exc
                continue
            if ll > best_ll:
                best_ll = ll
                best = profile
        if best is None:
            raise ConvergenceError(
                f"EM failed to converge in {self.num_restarts} restarts"
            ) from last_error
        if labels is not None:
            best = self._attach_labels(best, x, np.asarray(labels, dtype=int))
        return best

    def _fit_once(
        self, x: np.ndarray, generator: np.random.Generator
    ) -> tuple[GaussianMixtureProfile, float]:
        n, d = x.shape
        k = self.num_components
        indices = generator.choice(n, size=k, replace=False)
        means = x[indices].copy()
        variances = np.full((k, d), max(float(np.var(x)), self.min_variance))
        weights = np.full(k, 1.0 / k)

        previous_ll = -np.inf
        for _ in range(self.max_iterations):
            profile = GaussianMixtureProfile(weights, means, variances)
            responsibilities = profile.responsibilities(x)
            ll = float(np.mean(profile.log_density(x)))

            effective = responsibilities.sum(axis=0)
            if np.any(effective < EPSILON):
                # re-seed dead components at random data points
                dead = effective < EPSILON
                means[dead] = x[generator.choice(n, size=int(dead.sum()))]
                variances[dead] = max(float(np.var(x)), self.min_variance)
                weights = np.full(k, 1.0 / k)
                continue

            weights = effective / n
            means = (responsibilities.T @ x) / effective[:, None]
            diff_sq = (x[:, None, :] - means[None, :, :]) ** 2
            variances = np.einsum("nk,nkd->kd", responsibilities, diff_sq) / effective[:, None]
            variances = np.maximum(variances, self.min_variance)

            if np.isfinite(previous_ll) and abs(ll - previous_ll) < self.tolerance * (
                abs(previous_ll) + EPSILON
            ):
                previous_ll = ll
                break
            previous_ll = ll
        if not np.isfinite(previous_ll):
            raise ConvergenceError("EM log-likelihood did not become finite")
        return GaussianMixtureProfile(weights, means, variances), previous_ll

    @staticmethod
    def _attach_labels(
        profile: GaussianMixtureProfile, x: np.ndarray, labels: np.ndarray
    ) -> GaussianMixtureProfile:
        """Label each component with the majority label of its members."""
        if labels.shape != (len(x),):
            raise DataError("labels must align with the operational inputs")
        responsibilities = profile.responsibilities(x)
        assignment = responsibilities.argmax(axis=1)
        component_labels = np.zeros(profile.num_components, dtype=int)
        for component in range(profile.num_components):
            members = labels[assignment == component]
            if len(members) == 0:
                component_labels[component] = int(np.bincount(labels).argmax())
            else:
                component_labels[component] = int(np.bincount(members).argmax())
        return GaussianMixtureProfile(
            profile.weights, profile.means, profile.variances, component_labels
        )


__all__ = [
    "ProfileEstimator",
    "FrequencyProfileEstimator",
    "KDEProfileEstimator",
    "GMMProfileEstimator",
]
