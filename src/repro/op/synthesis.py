"""Synthesising an operational dataset from a learned profile (RQ1, step 1).

The first step of the paper's workflow turns the learned operational profile
into an *operational dataset*: a labelled pool of inputs whose empirical
distribution follows the OP.  Seeds for the fuzzer are later sampled from this
pool (RQ2), and the reliability assessment uses its labels as the per-cell
ground truth (RQ5).

Label assignment distinguishes three cases:

* the profile carries labels (class-frequency or labelled-GMM profiles) — use
  them directly;
* a labelled reference dataset is available — assign each synthesised input the
  label of its nearest reference neighbour (valid because synthesised points
  stay close to the natural data manifold);
* otherwise, an oracle model can be supplied as a last resort (pseudo-labels).

Data augmentation (the paper's RQ1 mentions augmentation and high-fidelity
simulation as OP-learning accelerators) can optionally be applied to enlarge
the synthesised pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from ..config import RngLike, ensure_rng
from ..data.dataset import Dataset
from ..data.transforms import Augmenter
from ..exceptions import DataError, ProfileError
from ..types import Classifier
from .profile import OperationalProfile


@dataclass
class OperationalDatasetSynthesizer:
    """Builds labelled operational datasets by sampling a profile.

    Parameters
    ----------
    profile:
        The operational profile to sample from.
    reference:
        Labelled natural dataset used for nearest-neighbour label transfer when
        the profile itself is unlabelled.
    oracle:
        Optional classifier used as a labelling fallback (pseudo-labelling);
        only consulted when neither the profile nor the reference can label a
        sample.
    augmenter:
        Optional augmentation pipeline applied to the synthesised pool.
    max_label_distance:
        When transferring labels from the reference by nearest neighbour,
        samples farther than this (L2) from every reference point are dropped
        unless an oracle is available, because their label would be guesswork.
    """

    profile: OperationalProfile
    reference: Optional[Dataset] = None
    oracle: Optional[Classifier] = None
    augmenter: Optional[Augmenter] = None
    max_label_distance: float = np.inf

    def synthesize(self, size: int, rng: RngLike = None) -> Dataset:
        """Return a labelled operational dataset with roughly ``size`` rows."""
        if size <= 0:
            raise DataError("size must be positive")
        if self.reference is None and self.oracle is None:
            # the profile must be able to label its own samples
            _, probe_labels = self.profile.sample_labeled(1, ensure_rng(rng))
            if probe_labels is None:
                raise ProfileError(
                    "profile provides no labels and neither a reference dataset "
                    "nor an oracle was supplied"
                )
        generator = ensure_rng(rng)
        x, labels = self.profile.sample_labeled(size, generator)
        if labels is None:
            x, labels = self._label_samples(x, generator)
        num_classes, class_names, image_shape = self._metadata()
        dataset = Dataset(
            x,
            labels,
            num_classes,
            class_names=class_names,
            image_shape=image_shape,
            name="operational-dataset",
        )
        if self.augmenter is not None:
            dataset = self.augmenter.augment(dataset)
        return dataset

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _metadata(self):
        if self.reference is not None:
            return (
                self.reference.num_classes,
                self.reference.class_names,
                self.reference.image_shape,
            )
        # label-carrying profile without reference: infer the class count
        probe_x, probe_labels = self.profile.sample_labeled(256, ensure_rng(0))
        if probe_labels is None and self.oracle is not None:
            # the oracle is the ground-truth labeller, not the model under
            # test: its queries are free by definition and never counted
            probe_labels = np.asarray(self.oracle.predict(probe_x), dtype=int)  # repro: allow[engine-funnel]
        if probe_labels is None:
            raise ProfileError("cannot infer the number of classes without labels")
        return int(probe_labels.max()) + 1, None, None

    def _label_samples(
        self, x: np.ndarray, generator: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.reference is not None:
            tree = cKDTree(self.reference.x)
            distances, indices = tree.query(x)
            labels = self.reference.y[indices]
            if np.isfinite(self.max_label_distance):
                near = distances <= self.max_label_distance
                if self.oracle is not None and np.any(~near):
                    # ground-truth oracle, not the model under test
                    far_labels = np.asarray(self.oracle.predict(x[~near]), dtype=int)  # repro: allow[engine-funnel]
                    labels = labels.copy()
                    labels[~near] = far_labels
                    near[:] = True
                x, labels = x[near], labels[near]
                if len(x) == 0:
                    raise DataError(
                        "all synthesised samples were farther than max_label_distance "
                        "from the reference dataset"
                    )
            return x, labels
        if self.oracle is not None:
            # ground-truth oracle, not the model under test
            return x, np.asarray(self.oracle.predict(x), dtype=int)  # repro: allow[engine-funnel]
        raise ProfileError("no labelling source available for synthesised samples")


def synthesize_operational_dataset(
    profile: OperationalProfile,
    size: int,
    reference: Optional[Dataset] = None,
    oracle: Optional[Classifier] = None,
    augmenter: Optional[Augmenter] = None,
    rng: RngLike = None,
) -> Dataset:
    """Convenience wrapper around :class:`OperationalDatasetSynthesizer`."""
    synthesizer = OperationalDatasetSynthesizer(
        profile=profile, reference=reference, oracle=oracle, augmenter=augmenter
    )
    return synthesizer.synthesize(size, rng=rng)


__all__ = ["OperationalDatasetSynthesizer", "synthesize_operational_dataset"]
