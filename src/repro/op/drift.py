"""Operational-profile drift: simulation and detection.

The paper stresses that the OP is "not necessarily ... constant after
deployment".  This module provides (i) scenario generators that simulate an
operation stream whose class priors and noise level evolve over time, and
(ii) a windowed drift detector that compares recent operation against the
profile currently assumed by the testing loop, signalling when the OP should
be re-learned (re-entering step 1 of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import RngLike, clip01, ensure_rng
from ..data.dataset import Dataset
from ..data.partition import Partition
from ..exceptions import ConfigurationError, DataError
from .divergence import empirical_distribution, js_divergence
from .profile import OperationalProfile


@dataclass
class OperationScenario:
    """Simulated operation stream drawn from a (possibly drifting) profile.

    Parameters
    ----------
    source:
        Labelled natural dataset the stream draws from.
    initial_priors:
        Class priors at the start of operation.
    final_priors:
        Class priors at the end of the simulated horizon; ``None`` keeps the
        priors constant (no drift).
    horizon:
        Number of batches over which the priors interpolate linearly from
        initial to final.
    noise_std:
        Gaussian observation noise added to streamed inputs (sensor noise).
    """

    source: Dataset
    initial_priors: Sequence[float]
    final_priors: Optional[Sequence[float]] = None
    horizon: int = 20
    noise_std: float = 0.0

    def __post_init__(self) -> None:
        self._initial = self._validate(self.initial_priors)
        self._final = (
            self._validate(self.final_priors) if self.final_priors is not None else None
        )
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")

    def _validate(self, priors: Sequence[float]) -> np.ndarray:
        arr = np.asarray(priors, dtype=float)
        if arr.shape != (self.source.num_classes,):
            raise DataError(
                f"priors must have length {self.source.num_classes}, got {arr.shape}"
            )
        if np.any(arr < 0) or arr.sum() <= 0:
            raise DataError("priors must be non-negative with positive mass")
        return arr / arr.sum()

    def priors_at(self, step: int) -> np.ndarray:
        """Class priors in effect at batch index ``step``."""
        if self._final is None:
            return self._initial.copy()
        alpha = min(max(step, 0), self.horizon) / self.horizon
        priors = (1 - alpha) * self._initial + alpha * self._final
        return priors / priors.sum()

    def batch(self, step: int, size: int, rng: RngLike = None) -> Dataset:
        """Draw one operation batch at time ``step``."""
        if size <= 0:
            raise DataError("batch size must be positive")
        generator = ensure_rng(rng)
        priors = self.priors_at(step)
        labels = generator.choice(self.source.num_classes, size=size, p=priors)
        rows = np.zeros(size, dtype=int)
        for index, label in enumerate(labels):
            members = self.source.indices_of_class(int(label))
            if len(members) == 0:
                members = np.arange(len(self.source))
            rows[index] = generator.choice(members)
        x = self.source.x[rows].copy()
        if self.noise_std > 0:
            x = clip01(x + generator.normal(0.0, self.noise_std, size=x.shape))
        return Dataset(
            x,
            self.source.y[rows],
            self.source.num_classes,
            class_names=self.source.class_names,
            image_shape=self.source.image_shape,
            name=f"{self.source.name}-operation-t{step}",
        )

    def stream(
        self, num_batches: int, batch_size: int, rng: RngLike = None
    ) -> Iterator[Dataset]:
        """Yield ``num_batches`` consecutive operation batches."""
        if num_batches <= 0:
            raise DataError("num_batches must be positive")
        generator = ensure_rng(rng)
        for step in range(num_batches):
            yield self.batch(step, batch_size, generator)


@dataclass
class DriftReport:
    """Outcome of one drift check."""

    step: int
    divergence: float
    threshold: float
    drift_detected: bool


@dataclass
class DriftDetector:
    """Windowed Jensen–Shannon drift detector over a cell partition.

    The detector discretises both the assumed profile and the recent operation
    window onto the same partition and raises a drift flag when the JS
    divergence exceeds ``threshold`` for ``patience`` consecutive checks.
    """

    partition: Partition
    assumed_profile: OperationalProfile
    threshold: float = 0.1
    patience: int = 2
    window_size: int = 200
    smoothing: float = 0.5
    num_reference_samples: int = 4096
    rng: RngLike = None
    history: List[DriftReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if self.patience <= 0 or self.window_size <= 0:
            raise ConfigurationError("patience and window_size must be positive")
        self._reference = self.assumed_profile.cell_probabilities(
            self.partition, num_samples=self.num_reference_samples, rng=self.rng
        )
        self._window: List[np.ndarray] = []
        self._consecutive = 0
        self._step = 0

    def update(self, x: np.ndarray) -> DriftReport:
        """Feed a batch of operational inputs and return the current drift report."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if len(x) == 0:
            raise DataError("drift update requires at least one sample")
        self._window.append(x)
        window = np.concatenate(self._window, axis=0)
        if len(window) > self.window_size:
            window = window[-self.window_size :]
            self._window = [window]
        observed = empirical_distribution(window, self.partition, smoothing=self.smoothing)
        reference = self._reference + self.smoothing / max(self.partition.num_cells, 1)
        reference = reference / reference.sum()
        divergence = js_divergence(observed, reference)
        if divergence > self.threshold:
            self._consecutive += 1
        else:
            self._consecutive = 0
        report = DriftReport(
            step=self._step,
            divergence=float(divergence),
            threshold=self.threshold,
            drift_detected=self._consecutive >= self.patience,
        )
        self.history.append(report)
        self._step += 1
        return report

    def reset(self, new_profile: Optional[OperationalProfile] = None) -> None:
        """Clear the window; optionally adopt a freshly re-learned profile."""
        if new_profile is not None:
            self.assumed_profile = new_profile
            self._reference = new_profile.cell_probabilities(
                self.partition, num_samples=self.num_reference_samples, rng=self.rng
            )
        self._window = []
        self._consecutive = 0


__all__ = ["OperationScenario", "DriftDetector", "DriftReport"]
