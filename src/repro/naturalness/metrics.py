"""Naturalness scorers: quantified proxies for the "local operational profile".

The paper (Section II.b) concedes that a sound fine-grained OP estimator for
every single input is usually unavailable, and falls back to *quantified
naturalness* as an approximation of the local OP inside each cell.  A
naturalness scorer therefore maps inputs to scores where **higher means more
natural / more likely under operation**.  Scores are calibrated against a
pool of natural data so that different scorers are comparable: a score of 1.0
is the median naturalness of natural data and scores decay towards 0 as the
input leaves the data manifold.

Three scorers are provided:

* :class:`DensityNaturalness` — kernel density (or any
  :class:`repro.op.OperationalProfile` density) relative to natural data.
* :class:`ReconstructionNaturalness` — autoencoder reconstruction error
  (:class:`repro.nn.DenseAutoencoder`), a learned manifold-distance proxy.
* :class:`CompositeNaturalness` — geometric mean of other scorers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..config import EPSILON, RngLike
from ..exceptions import ConfigurationError, NotFittedError
from ..nn.autoencoder import AutoencoderConfig, DenseAutoencoder
from ..op.profile import EmpiricalProfile, OperationalProfile


class NaturalnessScorer:
    """Interface: ``score`` returns per-input naturalness, higher = more natural."""

    def fit(self, natural_x: np.ndarray) -> "NaturalnessScorer":
        """Calibrate the scorer on a pool of natural inputs."""
        raise NotImplementedError

    def score(self, x: np.ndarray) -> np.ndarray:
        """Return a naturalness score for each row of ``x``."""
        raise NotImplementedError

    @property
    def is_fitted(self) -> bool:
        raise NotImplementedError

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before scoring")


class DensityNaturalness(NaturalnessScorer):
    """Naturalness as (relative) operational density.

    When an operational profile is supplied its density is used directly;
    otherwise a KDE profile is fitted on the calibration pool.  Scores are the
    density divided by the median density of the calibration pool, so natural
    inputs score around 1 and off-manifold inputs score near 0.
    """

    def __init__(
        self,
        profile: Optional[OperationalProfile] = None,
        bandwidth: Optional[float] = None,
        max_pool: int = 2000,
        rng: RngLike = None,
    ) -> None:
        if max_pool <= 0:
            raise ConfigurationError("max_pool must be positive")
        self._profile = profile
        self._bandwidth = bandwidth
        self._max_pool = max_pool
        self._rng = rng
        self._median_density: Optional[float] = None

    def fit(self, natural_x: np.ndarray) -> "DensityNaturalness":
        natural_x = np.atleast_2d(np.asarray(natural_x, dtype=float))
        if len(natural_x) == 0:
            raise ConfigurationError("cannot calibrate on an empty pool")
        if self._profile is None:
            pool = natural_x
            if len(pool) > self._max_pool:
                from ..config import ensure_rng

                idx = ensure_rng(self._rng).choice(len(pool), self._max_pool, replace=False)
                pool = pool[idx]
            self._profile = EmpiricalProfile(pool, bandwidth=self._bandwidth)
        densities = self._profile.density(natural_x)
        self._median_density = float(np.median(densities))
        if self._median_density <= 0:
            self._median_density = float(np.mean(densities)) or EPSILON
        return self

    def score(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return self._profile.density(x) / max(self._median_density, EPSILON)

    @property
    def is_fitted(self) -> bool:
        return self._median_density is not None


class ReconstructionNaturalness(NaturalnessScorer):
    """Naturalness from autoencoder reconstruction error.

    The scorer trains a dense autoencoder on natural data and converts the
    reconstruction error ``e(x)`` into a score ``exp(-(e(x) - m) / s)`` where
    ``m`` and ``s`` are the median and scale of natural errors — natural
    inputs score about 1, badly reconstructed inputs decay towards 0.
    """

    def __init__(
        self,
        autoencoder: Optional[DenseAutoencoder] = None,
        config: Optional[AutoencoderConfig] = None,
        rng: RngLike = None,
    ) -> None:
        self._autoencoder = autoencoder
        self._config = config
        self._rng = rng
        self._median_error: Optional[float] = None
        self._scale: Optional[float] = None

    def fit(self, natural_x: np.ndarray) -> "ReconstructionNaturalness":
        natural_x = np.atleast_2d(np.asarray(natural_x, dtype=float))
        if len(natural_x) == 0:
            raise ConfigurationError("cannot calibrate on an empty pool")
        if self._autoencoder is None:
            config = self._config if self._config is not None else AutoencoderConfig(
                hidden_sizes=(min(64, max(8, natural_x.shape[1] // 2)),),
                latent_dim=min(16, max(2, natural_x.shape[1] // 8)),
                epochs=20,
            )
            self._autoencoder = DenseAutoencoder(natural_x.shape[1], config, rng=self._rng)
        if not self._autoencoder.is_fitted:
            self._autoencoder.fit(natural_x)
        errors = self._autoencoder.reconstruction_error(natural_x)
        self._median_error = float(np.median(errors))
        spread = float(np.percentile(errors, 90) - np.percentile(errors, 10))
        self._scale = max(spread, EPSILON, 0.1 * self._median_error)
        return self

    def score(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        errors = self._autoencoder.reconstruction_error(np.atleast_2d(np.asarray(x, dtype=float)))
        return np.exp(-(errors - self._median_error) / self._scale)

    @property
    def is_fitted(self) -> bool:
        return self._median_error is not None


class CompositeNaturalness(NaturalnessScorer):
    """Geometric mean of several scorers, optionally weighted."""

    def __init__(
        self,
        scorers: Sequence[NaturalnessScorer],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not scorers:
            raise ConfigurationError("CompositeNaturalness requires at least one scorer")
        self.scorers: List[NaturalnessScorer] = list(scorers)
        if weights is None:
            weights = [1.0] * len(self.scorers)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(self.scorers),):
            raise ConfigurationError("weights must have one entry per scorer")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ConfigurationError("weights must be non-negative with positive sum")
        self.weights = weights / weights.sum()

    def fit(self, natural_x: np.ndarray) -> "CompositeNaturalness":
        for scorer in self.scorers:
            if not scorer.is_fitted:
                scorer.fit(natural_x)
        return self

    def score(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        # convert once, then fold every scorer's log-scores in a single
        # weighted matrix product instead of accumulating python-side
        x = np.atleast_2d(np.asarray(x, dtype=float))
        log_scores = np.log(
            np.maximum(np.stack([scorer.score(x) for scorer in self.scorers]), EPSILON)
        )
        return np.exp(self.weights @ log_scores)

    @property
    def is_fitted(self) -> bool:
        return all(scorer.is_fitted for scorer in self.scorers)


def default_naturalness_scorer(
    natural_x: np.ndarray,
    profile: Optional[OperationalProfile] = None,
    use_autoencoder: bool = True,
    rng: RngLike = None,
) -> NaturalnessScorer:
    """Build and fit the default naturalness scorer for a dataset.

    Density naturalness is always included (seeded with the OP when given);
    the autoencoder term is added for higher-dimensional (image-like) inputs
    where a learned manifold model is more informative than raw KDE.
    """
    natural_x = np.atleast_2d(np.asarray(natural_x, dtype=float))
    scorers: List[NaturalnessScorer] = [DensityNaturalness(profile=profile, rng=rng)]
    if use_autoencoder and natural_x.shape[1] >= 8:
        scorers.append(ReconstructionNaturalness(rng=rng))
    scorer: NaturalnessScorer
    if len(scorers) == 1:
        scorer = scorers[0]
    else:
        scorer = CompositeNaturalness(scorers)
    return scorer.fit(natural_x)


__all__ = [
    "NaturalnessScorer",
    "DensityNaturalness",
    "ReconstructionNaturalness",
    "CompositeNaturalness",
    "default_naturalness_scorer",
]
