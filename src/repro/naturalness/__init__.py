"""Quantified naturalness — the approximation of the local operational profile.

See :mod:`repro.naturalness.metrics` for the scorers and the rationale
(Section II.b of the paper).
"""

from .metrics import (
    CompositeNaturalness,
    DensityNaturalness,
    NaturalnessScorer,
    ReconstructionNaturalness,
    default_naturalness_scorer,
)

__all__ = [
    "CompositeNaturalness",
    "DensityNaturalness",
    "NaturalnessScorer",
    "ReconstructionNaturalness",
    "default_naturalness_scorer",
]
