"""Retraining the model on detected operational AEs (RQ4).

The paper asks for an "enhanced adversarial training approach [that] considers
both the OP and the detected operational AEs, while being light-weight".  Two
trainers are provided:

* :class:`OperationalRetrainer` — the proposed light-weight scheme: fine-tune
  the existing model on the original training data mixed with the detected
  operational AEs, where sample weights encode the operational profile (both
  for the natural data and for the AEs, via their seed's OP density).  No new
  attack queries are spent during retraining.
* :class:`StandardAdversarialTrainer` — the OP-ignorant baseline (Madry-style
  adversarial training): every mini-batch is replaced by PGD adversarial
  counterparts before the gradient step, with uniform weighting.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..attacks.gradient import PGD
from ..config import EPSILON, RngLike, ensure_rng
from ..data.dataset import Dataset
from ..exceptions import ConfigurationError, DataError
from ..nn.network import Sequential
from ..nn.optimizers import Adam
from ..nn.trainer import Trainer, TrainerConfig
from ..op.profile import OperationalProfile
from ..types import AdversarialExample


@dataclass
class RetrainingConfig:
    """Hyper-parameters shared by the retraining schemes.

    Attributes
    ----------
    epochs:
        Fine-tuning epochs.
    batch_size:
        Mini-batch size.
    learning_rate:
        Learning rate of the Adam fine-tuning optimiser (kept small so the
        model is adjusted, not re-learned from scratch).
    ae_replication:
        How many copies of each detected AE are injected into the fine-tuning
        set (replication is the light-weight alternative to loss re-weighting
        when only a handful of AEs were found).
    ae_weight_boost:
        Multiplier applied to the sample weight of injected AEs on top of
        their OP-derived weight.
    weight_natural_data_by_op:
        Whether the original training data is re-weighted by the OP density
        (aligning the training distribution with operation) or kept uniform.
    from_scratch:
        Re-initialise and retrain instead of fine-tuning the current weights.
    """

    epochs: int = 10
    batch_size: int = 64
    learning_rate: float = 5e-4
    ae_replication: int = 3
    ae_weight_boost: float = 2.0
    weight_natural_data_by_op: bool = True
    from_scratch: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.ae_replication <= 0:
            raise ConfigurationError("ae_replication must be positive")
        if self.ae_weight_boost <= 0:
            raise ConfigurationError("ae_weight_boost must be positive")


class OperationalRetrainer:
    """OP-aware fine-tuning on detected operational adversarial examples."""

    def __init__(
        self,
        config: Optional[RetrainingConfig] = None,
        profile: Optional[OperationalProfile] = None,
        rng: RngLike = None,
    ) -> None:
        self.config = config if config is not None else RetrainingConfig()
        self.profile = profile
        self._rng = ensure_rng(rng)

    def retrain(
        self,
        network: Sequential,
        train_data: Dataset,
        adversarial_examples: Sequence[AdversarialExample],
        in_place: bool = False,
    ) -> Sequential:
        """Return a retrained copy of ``network`` (or modify it in place).

        Parameters
        ----------
        network:
            The model under test.
        train_data:
            The original training dataset.
        adversarial_examples:
            Operational AEs detected by the fuzzer; each is injected with its
            true label and an OP-derived sample weight.
        in_place:
            When ``True`` the passed network is fine-tuned directly; otherwise
            a deep copy is trained and returned, leaving the original intact.
        """
        if len(train_data) == 0:
            raise DataError("cannot retrain on an empty training set")
        model = network if in_place else copy.deepcopy(network)
        if self.config.from_scratch:
            self._reinitialise(model)

        x, y, weights = self._build_training_mix(train_data, adversarial_examples)
        trainer = Trainer(
            optimizer=Adam(learning_rate=self.config.learning_rate),
            config=TrainerConfig(
                epochs=self.config.epochs,
                batch_size=self.config.batch_size,
                shuffle=True,
            ),
            rng=self._rng,
        )
        # retraining owns the network's parameters — whitebox by definition,
        # and trainer queries are not part of the detection budget
        trainer.fit(model, x, y, sample_weight=weights)  # repro: allow[engine-funnel]
        return model

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _reinitialise(self, model: Sequential) -> None:
        from ..nn.initializers import initialize

        for layer in model.layers:
            params = layer.parameters()
            for name, value in params.items():
                if name in ("bias", "beta"):
                    value[...] = 0.0
                elif name == "gamma":
                    value[...] = 1.0
                else:
                    value[...] = initialize(value.shape, "he", self._rng)

    def _natural_weights(self, train_data: Dataset) -> np.ndarray:
        if self.profile is None or not self.config.weight_natural_data_by_op:
            return np.ones(len(train_data))
        density = self.profile.density(train_data.x)
        mean_density = max(float(density.mean()), EPSILON)
        weights = density / mean_density
        # keep a floor so no natural sample is entirely forgotten
        return np.maximum(weights, 0.1)

    def _ae_weights(
        self, adversarial_examples: Sequence[AdversarialExample]
    ) -> np.ndarray:
        raw = np.asarray(
            [ae.op_density if ae.op_density is not None else 1.0 for ae in adversarial_examples],
            dtype=float,
        )
        if len(raw) == 0:
            return raw
        mean = max(float(raw.mean()), EPSILON)
        return self.config.ae_weight_boost * np.maximum(raw / mean, 0.1)

    def _build_training_mix(
        self,
        train_data: Dataset,
        adversarial_examples: Sequence[AdversarialExample],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        xs: List[np.ndarray] = [train_data.x]
        ys: List[np.ndarray] = [train_data.y]
        ws: List[np.ndarray] = [self._natural_weights(train_data)]
        if adversarial_examples:
            ae_x = np.stack([np.asarray(ae.perturbed, dtype=float) for ae in adversarial_examples])
            ae_y = np.asarray([ae.true_label for ae in adversarial_examples], dtype=int)
            ae_w = self._ae_weights(adversarial_examples)
            for _ in range(self.config.ae_replication):
                xs.append(ae_x)
                ys.append(ae_y)
                ws.append(ae_w)
        return (
            np.concatenate(xs, axis=0),
            np.concatenate(ys, axis=0),
            np.concatenate(ws, axis=0),
        )


class StandardAdversarialTrainer:
    """Madry-style adversarial training baseline (OP-ignorant).

    Every epoch, each training batch is replaced by PGD adversarial examples
    generated on the fly, and the network is updated on those.  This is the
    "existing methods ignore the OP information" comparator of RQ4.
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        pgd_steps: int = 5,
        epochs: int = 5,
        batch_size: int = 64,
        learning_rate: float = 5e-4,
        rng: RngLike = None,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        self.attack = PGD(epsilon=epsilon, num_steps=pgd_steps, early_stop=False)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self._rng = ensure_rng(rng)

    def retrain(
        self,
        network: Sequential,
        train_data: Dataset,
        adversarial_examples: Sequence[AdversarialExample] = (),
        in_place: bool = False,
    ) -> Sequential:
        """Adversarially retrain ``network`` (detected AEs are ignored by design)."""
        if len(train_data) == 0:
            raise DataError("cannot retrain on an empty training set")
        model = network if in_place else copy.deepcopy(network)
        optimizer = Adam(learning_rate=self.learning_rate)
        n = len(train_data)
        batch_size = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch_x = train_data.x[idx]
                batch_y = train_data.y[idx]
                result = self.attack.run(model, batch_x, batch_y, rng=self._rng)
                model.train_step_gradients(result.adversarial_x, batch_y)
                optimizer.step(model.layers)
        model.mark_trained()
        return model


__all__ = ["RetrainingConfig", "OperationalRetrainer", "StandardAdversarialTrainer"]
