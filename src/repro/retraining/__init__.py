"""Retraining on detected operational adversarial examples (RQ4)."""

from .adversarial_training import (
    OperationalRetrainer,
    RetrainingConfig,
    StandardAdversarialTrainer,
)

__all__ = ["OperationalRetrainer", "RetrainingConfig", "StandardAdversarialTrainer"]
