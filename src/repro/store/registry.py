"""Run registry: every campaign becomes a queryable on-disk artifact.

A *run* is one testing campaign (one ``OperationalTestingLoop.run`` or one
CLI invocation).  The registry gives each run a directory under a common
root and records everything the campaign produced as plain, inspectable
files:

``run.json``
    Identity + configuration + lifecycle status (``running`` → ``completed``
    / ``failed``).
``report.json``
    The full :class:`repro.types.CampaignReport` (one record per loop
    iteration, including the engine-accounting notes).
``stats.json``
    Aggregated :class:`repro.engine.QueryStats` of the campaign's fuzzing.
``estimates.json``
    Named :class:`repro.reliability.ReliabilityEstimate` snapshots
    (typically ``before`` and ``after``).
``detections.npz``
    Every detected adversarial example as dense arrays (seeds, perturbed
    inputs, labels, distances, naturalness, OP density, per-AE queries) —
    loadable without the library, round-trippable with it.
``checkpoint.pkl``
    The campaign's live checkpoint while it runs (see
    :mod:`repro.store.checkpoint`); ``python -m repro resume`` picks it up.
``trace.jsonl`` / ``metrics.json``
    Structured spans and metrics of a telemetry-enabled campaign
    (:mod:`repro.telemetry`); ``python -m repro trace`` renders them.

Everything is stdlib + NumPy; JSON for metadata, ``.npz`` for bulk arrays,
in keeping with the HSDS idea of a simple chunked store behind a service
surface (here: the :mod:`repro.store.cli` commands).
"""

from __future__ import annotations

import dataclasses
import json
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .. import telemetry as _telemetry
from ..engine.batching import QueryStats
from ..exceptions import StoreError
from ..telemetry import clock
from ..reliability.assessment import ReliabilityEstimate
from ..types import AdversarialExample, CampaignReport, IterationReport

#: Lifecycle states a run moves through.
RUN_STATUSES = ("running", "completed", "failed")


def _read_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise StoreError(f"missing registry file {path}") from None
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt registry file {path}: {exc}") from exc


def _write_json(path: Path, data: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True))
    tmp.replace(path)


class StoredRun:
    """Handle to one run directory (both the writer's and the reader's view)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not (self.path / "run.json").exists():
            raise StoreError(f"{self.path} is not a registered run")

    # ------------------------------------------------------------------ #
    # identity / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def run_id(self) -> str:
        return self.path.name

    @property
    def manifest(self) -> dict:
        return _read_json(self.path / "run.json")

    @property
    def config(self) -> dict:
        return self.manifest.get("config", {})

    @property
    def name(self) -> str:
        return str(self.manifest.get("name", self.run_id))

    @property
    def status(self) -> str:
        return str(self.manifest.get("status", "running"))

    @property
    def checkpoint_path(self) -> Path:
        return self.path / "checkpoint.pkl"

    def set_status(self, status: str) -> None:
        if status not in RUN_STATUSES:
            raise StoreError(f"status must be one of {RUN_STATUSES}, got {status!r}")
        manifest = self.manifest
        manifest["status"] = status
        # calendar-time metadata is the legitimate use of the wall clock
        # (never durations/deadlines) — hence clock.wall, not time.time
        manifest["updated_at"] = clock.wall()
        _write_json(self.path / "run.json", manifest)

    def finish(self, status: str = "completed") -> None:
        self.set_status(status)

    # ------------------------------------------------------------------ #
    # campaign report
    # ------------------------------------------------------------------ #
    def save_report(self, report: CampaignReport) -> None:
        _write_json(
            self.path / "report.json",
            {
                "iterations": [dataclasses.asdict(it) for it in report.iterations],
                "total_test_cases": report.total_test_cases,
                "total_aes": report.total_aes,
                "final_pmi": report.final_pmi,
                "target_met": report.target_met,
            },
        )

    def load_report(self) -> CampaignReport:
        data = _read_json(self.path / "report.json")
        report = CampaignReport()
        for record in data["iterations"]:
            report.iterations.append(IterationReport(**record))
        report.total_test_cases = int(data["total_test_cases"])
        report.total_aes = int(data["total_aes"])
        report.final_pmi = float(data["final_pmi"])
        report.target_met = bool(data["target_met"])
        return report

    def has_report(self) -> bool:
        return (self.path / "report.json").exists()

    # ------------------------------------------------------------------ #
    # engine stats
    # ------------------------------------------------------------------ #
    def save_stats(self, stats: QueryStats) -> None:
        _write_json(self.path / "stats.json", stats.to_dict())

    def load_stats(self) -> Optional[QueryStats]:
        path = self.path / "stats.json"
        if not path.exists():
            return None
        return QueryStats.from_dict(_read_json(path))

    # ------------------------------------------------------------------ #
    # reliability estimates
    # ------------------------------------------------------------------ #
    def save_estimates(self, estimates: Dict[str, ReliabilityEstimate]) -> None:
        _write_json(
            self.path / "estimates.json",
            {name: estimate.to_dict() for name, estimate in estimates.items()},
        )

    def load_estimates(self) -> Dict[str, ReliabilityEstimate]:
        path = self.path / "estimates.json"
        if not path.exists():
            return {}
        return {
            name: ReliabilityEstimate.from_dict(record)
            for name, record in _read_json(path).items()
        }

    # ------------------------------------------------------------------ #
    # detections
    # ------------------------------------------------------------------ #
    def save_detections(self, detections: List[AdversarialExample]) -> None:
        if detections:
            arrays = {
                "seeds": np.stack([ae.seed for ae in detections]),
                "perturbed": np.stack([ae.perturbed for ae in detections]),
                "true_labels": np.array([ae.true_label for ae in detections], dtype=int),
                "predicted_labels": np.array(
                    [ae.predicted_label for ae in detections], dtype=int
                ),
                "distances": np.array([ae.distance for ae in detections], dtype=float),
                # None metadata becomes NaN in the dense layout; the loader
                # restores None so the round-trip is exact for consumers
                "naturalness": np.array(
                    [np.nan if ae.naturalness is None else ae.naturalness for ae in detections],
                    dtype=float,
                ),
                "op_density": np.array(
                    [np.nan if ae.op_density is None else ae.op_density for ae in detections],
                    dtype=float,
                ),
                "queries": np.array([ae.queries for ae in detections], dtype=int),
                "methods": np.array([ae.method for ae in detections]),
            }
        else:
            arrays = {
                "seeds": np.zeros((0, 0)),
                "perturbed": np.zeros((0, 0)),
                "true_labels": np.zeros(0, dtype=int),
                "predicted_labels": np.zeros(0, dtype=int),
                "distances": np.zeros(0),
                "naturalness": np.zeros(0),
                "op_density": np.zeros(0),
                "queries": np.zeros(0, dtype=int),
                "methods": np.array([], dtype="U1"),
            }
        np.savez_compressed(self.path / "detections.npz", **arrays)

    # ------------------------------------------------------------------ #
    # telemetry artifacts
    # ------------------------------------------------------------------ #
    @property
    def trace_path(self) -> Path:
        return self.path / "trace.jsonl"

    @property
    def metrics_path(self) -> Path:
        return self.path / "metrics.json"

    def save_telemetry(self, session: "_telemetry.TelemetrySession") -> None:
        """Persist one session as ``trace.jsonl`` + ``metrics.json``.

        Written via temp-and-replace like every registry file, so a crash
        mid-save can never leave a half-written artifact behind.
        """
        tmp = self.trace_path.with_name(self.trace_path.name + ".tmp")
        with tmp.open("w") as fp:
            _telemetry.write_trace(fp, session)
        tmp.replace(self.trace_path)
        _write_json(self.metrics_path, _telemetry.metrics_document(session))

    def has_telemetry(self) -> bool:
        return self.trace_path.exists()

    def load_trace(self) -> Tuple[dict, List["_telemetry.Span"]]:
        """The stored trace as ``(header, spans)``; raises when absent."""
        if not self.trace_path.exists():
            raise StoreError(
                f"run {self.run_id} has no trace.jsonl — run it with "
                "telemetry enabled (--telemetry / ExecutionPolicy(telemetry=True))"
            )
        with self.trace_path.open() as fp:
            return _telemetry.read_trace(fp)

    def load_metrics(self) -> dict:
        """The stored ``metrics.json`` document; raises when absent."""
        if not self.metrics_path.exists():
            raise StoreError(f"run {self.run_id} has no metrics.json")
        return _read_json(self.metrics_path)

    def load_detections(self) -> List[AdversarialExample]:
        path = self.path / "detections.npz"
        if not path.exists():
            return []
        with np.load(path, allow_pickle=False) as archive:
            count = len(archive["true_labels"])
            return [
                AdversarialExample(
                    seed=archive["seeds"][i],
                    perturbed=archive["perturbed"][i],
                    true_label=int(archive["true_labels"][i]),
                    predicted_label=int(archive["predicted_labels"][i]),
                    distance=float(archive["distances"][i]),
                    naturalness=(
                        None
                        if np.isnan(archive["naturalness"][i])
                        else float(archive["naturalness"][i])
                    ),
                    op_density=(
                        None
                        if np.isnan(archive["op_density"][i])
                        else float(archive["op_density"][i])
                    ),
                    method=str(archive["methods"][i]),
                    queries=int(archive["queries"][i]),
                )
                for i in range(count)
            ]


class RunRegistry:
    """Creates, lists, loads and garbage-collects runs under one root."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def create(self, name: str, config: Optional[dict] = None) -> StoredRun:
        """Register a new run directory with a fresh sequential id."""
        existing = [
            int(p.name.split("-", 1)[1])
            for p in self.root.iterdir()
            if p.is_dir() and p.name.startswith("run-") and p.name[4:].isdigit()
        ]
        run_id = f"run-{(max(existing) + 1 if existing else 1):04d}"
        path = self.root / run_id
        path.mkdir()
        _write_json(
            path / "run.json",
            {
                "run_id": run_id,
                "name": name,
                "status": "running",
                "config": config or {},
                "created_at": clock.wall(),
                "updated_at": clock.wall(),
            },
        )
        return StoredRun(path)

    def get(self, run_id: str) -> StoredRun:
        path = self.root / run_id
        if not path.is_dir():
            raise StoreError(f"unknown run {run_id!r} under {self.root}")
        return StoredRun(path)

    def runs(self) -> List[StoredRun]:
        """Every registered run, oldest first (ids are sequential)."""
        return [
            StoredRun(p)
            for p in sorted(self.root.iterdir())
            if p.is_dir() and (p / "run.json").exists()
        ]

    def gc(
        self, keep: Optional[int] = None, status: Optional[str] = None
    ) -> List[str]:
        """Delete runs; returns the removed ids.

        ``status`` restricts collection to runs in that state (e.g. clear
        out ``failed`` campaigns); ``keep`` spares the newest ``keep``
        candidates.  At least one selector is required — a bare ``gc()``
        deleting everything would be a foot-gun, not a feature.
        """
        if keep is None and status is None:
            raise StoreError("gc requires keep and/or status (refusing to drop everything)")
        candidates = self.runs()
        if status is not None:
            if status not in RUN_STATUSES:
                raise StoreError(f"status must be one of {RUN_STATUSES}, got {status!r}")
            candidates = [run for run in candidates if run.status == status]
        if keep is not None:
            if keep < 0:
                raise StoreError("keep must be non-negative")
            candidates = candidates[: max(0, len(candidates) - keep)]
        removed = []
        for run in candidates:
            shutil.rmtree(run.path)
            removed.append(run.run_id)
        return removed


__all__ = ["RUN_STATUSES", "StoredRun", "RunRegistry"]
