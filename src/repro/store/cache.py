"""Durable, content-addressed query cache: warm caches that survive processes.

The in-memory :class:`repro.engine.QueryCache` dies with the process, so every
campaign starts cold and repeated experiments (ablations, benchmark reruns,
resumed campaigns) re-pay physical model calls for rows the model has already
answered.  :class:`PersistentQueryCache` is the durable drop-in: it implements
the :class:`repro.engine.CacheBackend` protocol over an HSDS-style chunked
on-disk layout —

* **content-addressed keys** — entries are addressed by a digest of the
  dtype/shape-tagged row bytes (:func:`repro.engine.batching.row_cache_key`,
  shared with the in-memory cache so the two layers agree on row identity);
  the full key bytes are stored alongside the value and verified
  on every read, so a hit returns exactly the probabilities the model
  produced (never an approximation, never a digest collision);
* **append-only segment files** — each writer process appends records to its
  own segment (no cross-process write contention) and rotates to a fresh
  segment once ``max_segment_bytes`` is reached, keeping individual chunks
  bounded and cheap to scan;
* **in-memory index** — opening a directory scans every segment once and
  builds a digest → (segment, offset) index; reads then cost one seek.
  Truncated tail records (a writer killed mid-append) are ignored, so a
  crashed campaign never corrupts the store for the next one;
* **per-record CRC32** — every record carries a checksum of its key and
  payload, verified on scan and on read.  A record corrupted *mid-segment*
  (bit rot, a torn write on crash, injected chaos) is skipped with a
  warning and counted in :attr:`PersistentQueryCache.corrupt_records`
  (surfaced as the engine's ``cache_corrupt_records`` stat) — never
  misread, and never allowed to hide the intact records after it;
* **shared directories** — several processes (or hosts, via a shared
  filesystem) can point at one directory: each sees every entry that existed
  at open time, appends its own segments, and can pick up concurrent
  writers' entries with :meth:`refresh`.

Results are bit-identical with or without the cache — only
``QueryStats.model_calls`` changes — which is exactly the property the
cache-backend equivalence suite in ``tests/test_store.py`` and
``tests/test_property_based.py`` pins.
"""

from __future__ import annotations

import io
import os
import struct
import uuid
import warnings
import zlib
from hashlib import blake2b
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .. import telemetry
from ..engine.batching import row_cache_key
from ..exceptions import StoreError
from ..telemetry import clock

#: Magic bytes opening every record; bumping the version invalidates old files
#: (RPC1 records carried no checksum and are no longer readable).
_RECORD_MAGIC = b"RPC2"
_HEADER = struct.Struct("<4sIII")  # magic, key length, value length, CRC32


def _record_crc(key: bytes, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(key))

#: Default segment-rotation threshold (64 MiB): large enough that a campaign
#: typically stays in one segment, small enough that chunks stay manageable.
DEFAULT_MAX_SEGMENT_BYTES = 64 * 1024 * 1024


def _digest(key: bytes) -> bytes:
    return blake2b(key, digest_size=16).digest()


def _encode_value(value: np.ndarray) -> bytes:
    """Serialize an array bit-exactly (dtype + shape + data) via the npy format."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(value), allow_pickle=False)
    return buffer.getvalue()


def _decode_value(payload: bytes) -> np.ndarray:
    return np.load(io.BytesIO(payload), allow_pickle=False)


class PersistentQueryCache:
    """Durable ``CacheBackend`` over a directory of append-only segments.

    Parameters
    ----------
    directory:
        Store root.  Created (with parents) if missing; segments live in
        ``<directory>/segments``.
    max_segment_bytes:
        Rotation threshold for this writer's segment files.

    Notes
    -----
    Thread safety follows the engine's rules: the sharded engine wraps its
    cache in a lock, the in-process engine is single-threaded.  Concurrent
    *processes* are safe by construction (each appends to a private segment);
    an entry written by another process after open becomes visible after
    :meth:`refresh`.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> None:
        if max_segment_bytes <= 0:
            raise StoreError("max_segment_bytes must be positive")
        self.directory = Path(directory)
        self.max_segment_bytes = int(max_segment_bytes)
        self._segment_dir = self.directory / "segments"
        self._segment_dir.mkdir(parents=True, exist_ok=True)
        #: digest -> (segment path, offset of the record header)
        self._index: Dict[bytes, Tuple[Path, int]] = {}
        #: bytes of each known segment already scanned into the index
        self._scanned: Dict[Path, int] = {}
        #: open read handles, one per segment (segments are append-only, so
        #: a handle stays valid while other writers grow the file) — keeps
        #: per-row gets to one seek+read instead of an open per lookup
        self._readers: Dict[Path, io.BufferedReader] = {}
        self._own_segment: Optional[Path] = None
        self._writer: Optional[io.BufferedWriter] = None
        #: records skipped because their CRC32 (or framing) did not check out;
        #: engines surface this as the ``cache_corrupt_records`` stat
        self.corrupt_records = 0
        self.refresh()

    # ------------------------------------------------------------------ #
    # CacheBackend protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._index)

    def get(self, row: np.ndarray) -> Optional[np.ndarray]:
        key = row_cache_key(row)
        digest = _digest(key)
        located = self._index.get(digest)
        if located is None:
            telemetry.count("store.cache_get_misses")
            return None
        segment, offset = located
        record = self._read_record(segment, offset)
        if record is None:
            telemetry.count("store.corrupt_records")
            # the indexed record no longer checks out (a segment mutated or
            # rotted behind our back): drop the entry, count it once, and
            # answer a miss rather than ever returning a wrong value
            self._index.pop(digest, None)
            self.corrupt_records += 1
            warnings.warn(
                f"query cache {segment}: record at offset {offset} failed its "
                "CRC check and was dropped from the index",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if record[0] != key:
            return None  # digest collision: a miss, never a wrong value
        telemetry.count("store.cache_get_hits")
        return _decode_value(record[1])

    def put(self, row: np.ndarray, value: np.ndarray) -> None:
        key = row_cache_key(row)
        digest = _digest(key)
        if digest in self._index:
            return  # content-addressed: identical rows are stored once
        payload = _encode_value(np.asarray(value))
        writer = self._ensure_writer()
        offset = writer.tell()
        writer.write(
            _HEADER.pack(_RECORD_MAGIC, len(key), len(payload), _record_crc(key, payload))
        )
        writer.write(key)
        writer.write(payload)
        writer.flush()
        self._index[digest] = (self._own_segment, offset)
        self._scanned[self._own_segment] = writer.tell()
        telemetry.count("store.cache_puts")
        telemetry.count("store.cache_put_bytes", _HEADER.size + len(key) + len(payload))

    def clear(self) -> None:
        """Delete every segment (the durable entries, not just the index)."""
        self.close()
        for segment in sorted(self._segment_dir.glob("seg-*.bin")):
            segment.unlink()
        self._index.clear()
        self._scanned.clear()

    def _reader(self, segment: Path) -> io.BufferedReader:
        reader = self._readers.get(segment)
        if reader is None:
            reader = open(segment, "rb")
            self._readers[segment] = reader
        return reader

    # ------------------------------------------------------------------ #
    # durability helpers
    # ------------------------------------------------------------------ #
    def refresh(self) -> int:
        """Scan for records appended by other writers; return new entry count.

        Known segments are re-scanned from their last known offset and new
        segment files are discovered, so a long-running campaign can pick up
        a concurrent process's work without reopening the store.
        """
        with telemetry.span("cache.refresh", "store"):
            added = 0
            for segment in sorted(self._segment_dir.glob("seg-*.bin")):
                added += self._scan_segment(segment, self._scanned.get(segment, 0))
            telemetry.count("store.refreshes")
            if added:
                telemetry.count("store.refresh_entries", added)
        return added

    def close(self) -> None:
        """Flush and release every file handle (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._own_segment = None
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()

    def __enter__(self) -> "PersistentQueryCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_writer(self) -> io.BufferedWriter:
        if (
            self._writer is not None
            and self._writer.tell() >= self.max_segment_bytes
        ):
            self.close()  # rotate: the next put opens a fresh segment
        if self._writer is None:
            # pid + random suffix keeps concurrent writers collision-free
            name = f"seg-{os.getpid():08d}-{uuid.uuid4().hex[:8]}.bin"
            self._own_segment = self._segment_dir / name
            self._writer = open(self._own_segment, "ab")
        return self._writer

    @staticmethod
    def _find_magic(handle: io.BufferedReader, start: int) -> Optional[int]:
        """Offset of the next record magic at/after ``start``, or ``None``."""
        handle.seek(start)
        blob = handle.read()
        position = blob.find(_RECORD_MAGIC)
        return None if position == -1 else start + position

    def _scan_segment(self, segment: Path, start: int) -> int:
        """Index intact records of ``segment`` from ``start``.

        A torn *tail* (a writer killed mid-append — possibly completed by a
        concurrent writer later) stops the scan without advancing the
        scanned offset, so the next :meth:`refresh` retries it.  A corrupt
        *mid-segment* record (CRC or framing mismatch with more data after
        it) is skipped with a warning and counted in
        :attr:`corrupt_records`; the scan resynchronises on the next record
        magic so every intact record behind the damage is still indexed.
        """
        added = 0
        corrupt = 0
        try:
            size = segment.stat().st_size
        except OSError:
            return 0
        if size <= start:
            return 0
        with open(segment, "rb") as handle:
            handle.seek(start)
            while True:
                offset = handle.tell()
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break  # tail: nothing (complete) after this point
                magic, key_len, value_len, crc = _HEADER.unpack(header)
                if (
                    magic != _RECORD_MAGIC
                    or offset + _HEADER.size + key_len + value_len > size
                ):
                    # corrupt header (or a length field pointing past EOF):
                    # resynchronise on the next record magic; without one
                    # this is an ordinary torn tail — leave it for refresh
                    resync = self._find_magic(handle, offset + 1)
                    if resync is None:
                        break
                    corrupt += 1
                    self._scanned[segment] = resync
                    handle.seek(resync)
                    continue
                key = handle.read(key_len)
                payload = handle.read(value_len)
                if _record_crc(key, payload) != crc:
                    # framing was intact, content was not: the next record
                    # starts right after this one
                    corrupt += 1
                    self._scanned[segment] = handle.tell()
                    continue
                digest = _digest(key)
                if digest not in self._index:
                    self._index[digest] = (segment, offset)
                    added += 1
                self._scanned[segment] = handle.tell()
        if corrupt:
            self.corrupt_records += corrupt
            telemetry.count("store.corrupt_records", corrupt)
            telemetry.event("cache.corrupt_records", "store", segment=segment.name, skipped=corrupt)
            warnings.warn(
                f"query cache {segment}: skipped {corrupt} corrupt record(s) "
                "(CRC/framing mismatch); intact records were kept",
                RuntimeWarning,
                stacklevel=3,
            )
        return added

    def _read_record(self, segment: Path, offset: int) -> Optional[Tuple[bytes, bytes]]:
        try:
            handle = self._reader(segment)
            handle.seek(offset)
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return None
            magic, key_len, value_len, crc = _HEADER.unpack(header)
            if magic != _RECORD_MAGIC:
                return None
            key = handle.read(key_len)
            payload = handle.read(value_len)
            if len(key) < key_len or len(payload) < value_len:
                return None
            if _record_crc(key, payload) != crc:
                return None
            return key, payload
        except OSError:
            self._readers.pop(segment, None)
            return None


__all__ = ["PersistentQueryCache", "DEFAULT_MAX_SEGMENT_BYTES"]
