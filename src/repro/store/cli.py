"""``python -m repro`` — run, resume and query testing campaigns.

The service surface over the campaign store:

``run``
    Run a campaign described by a declarative
    :class:`repro.runtime.CampaignSpec` — from a JSON/TOML file
    (``--spec campaign.json``), from a stored run's recorded spec
    (``--from-run run-0001``), or assembled from the legacy per-flag
    options.  Whichever way the spec arrives, it is recorded **verbatim**
    in the run registry (``run.json`` → ``config.spec``), so every stored
    run is reproducible from its spec alone.
``resume``
    Pick up an interrupted run from its checkpoint.  The campaign is
    rebuilt from the recorded spec (same seed), so the resumed campaign
    continues bit-identically.
``ls``
    List registered runs (``--json`` for machine-readable output).
``show``
    Render one stored run (campaign spec, stats, iteration table,
    estimates, fault counters, telemetry summary).
``trace``
    Render the shard/worker timeline of a telemetry-enabled run from its
    stored ``trace.jsonl`` (``--chrome`` exports a Perfetto-loadable
    trace-event file, ``--json`` dumps the raw header + spans).
``gc``
    Delete stored runs by status and/or count.

Every command takes ``--runs-dir`` (default: ``./repro-runs``, overridable
via ``REPRO_RUNS_DIR``), so several hosts can share one registry directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..config import default_runs_dir
from ..exceptions import CheckpointMismatchError, ReproError, StoreError
from .registry import RUN_STATUSES, RunRegistry, StoredRun


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run and query operational-testing campaigns.",
        epilog="The static invariant linter lives under its own verb: "
        "`python -m repro lint --help` (see repro.analysis).",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        help="run-registry root (default: ./repro-runs or $REPRO_RUNS_DIR)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a campaign")
    run.add_argument("--spec", default=None, metavar="PATH",
                     help="declarative campaign spec (JSON, or TOML by suffix); "
                          "overrides the per-flag options below")
    run.add_argument("--from-run", default=None, metavar="RUN_ID",
                     help="re-launch a new campaign from a stored run's spec")
    run.add_argument("--name", default=None, help="registry name (default: scenario)")
    run.add_argument("--scenario", default="two-moons",
                     help="scenario name (see repro.evaluation.available_scenarios)")
    run.add_argument("--seed", type=int, default=2021, help="campaign RNG seed")
    run.add_argument("--samples", type=int, default=None,
                     help="scenario dataset size override (smaller = faster)")
    run.add_argument("--epochs", type=int, default=None,
                     help="scenario model-training epochs override")
    run.add_argument("--iterations", type=int, default=3, help="loop iteration cap")
    run.add_argument("--budget", type=int, default=300,
                     help="fuzzing query budget per iteration")
    run.add_argument("--seeds-per-iteration", type=int, default=10)
    run.add_argument("--queries-per-seed", type=int, default=20)
    run.add_argument("--target-pmi", type=float, default=0.02)
    run.add_argument("--engine", default=None,
                     choices=("sequential", "population", "sharded"),
                     help="execution for the whole loop (sharded selects the "
                          "replicated multi-worker backend)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes for --engine sharded")
    run.add_argument("--cache-dir", default=None,
                     help="durable query-cache directory (warm across runs/hosts)")
    run.add_argument("--checkpoint-every", type=int, default=1,
                     help="iterations between checkpoints (0 disables)")
    run.add_argument("--max-attempts", type=int, default=None,
                     help="supervised executions per shard before the engine "
                          "degrades (or fails); sharded engine only")
    run.add_argument("--shard-timeout", type=float, default=None,
                     help="seconds of heartbeat silence before a worker "
                          "counts as hung; sharded engine only")
    run.add_argument("--on-exhaustion", default=None,
                     choices=("degrade", "fail"),
                     help="retry-budget exhaustion: degrade to in-process "
                          "execution (default) or fail the campaign")
    run.add_argument("--telemetry", action="store_true",
                     help="record spans + metrics; stores trace.jsonl and "
                          "metrics.json next to the run (see `trace`)")

    resume = commands.add_parser("resume", help="resume an interrupted run")
    resume.add_argument("run_id", help="registry id, e.g. run-0001")

    ls = commands.add_parser("ls", help="list registered runs")
    ls.add_argument("--json", action="store_true",
                    help="emit one JSON document instead of a table")

    show = commands.add_parser("show", help="render one stored run")
    show.add_argument("run_id", help="registry id, e.g. run-0001")

    trace = commands.add_parser(
        "trace", help="render a stored run's shard/worker timeline"
    )
    trace.add_argument("run_id", help="registry id, e.g. run-0001")
    trace.add_argument("--chrome", default=None, metavar="PATH",
                       help="also write a Chrome/Perfetto trace-event file")
    trace.add_argument("--json", action="store_true",
                       help="dump the raw trace (header + spans) as JSON")

    gc = commands.add_parser("gc", help="delete stored runs")
    gc.add_argument("--status", default=None, choices=RUN_STATUSES,
                    help="only delete runs in this state")
    gc.add_argument("--keep", type=int, default=None,
                    help="spare the newest KEEP matching runs")
    return parser


# --------------------------------------------------------------------------- #
# spec plumbing (shared by run and resume)
# --------------------------------------------------------------------------- #
def _spec_from_flags(args: argparse.Namespace) -> dict:
    """Assemble a campaign-spec document from the legacy per-flag options.

    The flags never touch the deprecated per-knob configuration surface:
    they are translated straight into the policy/section layout, so the
    stored run looks exactly like one launched from a spec file.
    """
    from ..faults.retry import RetryPolicy
    from ..runtime.policy import ExecutionPolicy

    scenario: dict = {"name": args.scenario}
    if args.samples is not None:
        scenario["samples"] = int(args.samples)
    if args.epochs is not None:
        scenario["epochs"] = int(args.epochs)
    fuzzer: dict = {"queries_per_seed": int(args.queries_per_seed)}
    if args.engine == "sequential":
        fuzzer["execution"] = "sequential"
    retry_overrides = {
        key: value
        for key, value in (
            ("max_attempts", args.max_attempts),
            ("shard_timeout_s", args.shard_timeout),
            ("on_exhaustion", args.on_exhaustion),
        )
        if value is not None
    }
    policy = ExecutionPolicy(
        backend="sharded" if args.engine == "sharded" else "batched",
        num_workers=int(args.workers),
        cache=True,
        cache_dir=args.cache_dir,
        checkpoint_every=int(args.checkpoint_every),
        retry=RetryPolicy(**retry_overrides) if retry_overrides else None,
    )
    return {
        "name": args.name,
        "seed": int(args.seed),
        "scenario": scenario,
        "fuzzer": fuzzer,
        "workflow": {
            "test_budget_per_iteration": int(args.budget),
            "seeds_per_iteration": int(args.seeds_per_iteration),
        },
        "stopping": {
            "target_pmi": float(args.target_pmi),
            "max_iterations": int(args.iterations),
        },
        "policy": policy.to_dict(),
    }


def _stored_spec(run: StoredRun) -> dict:
    spec_data = run.config.get("spec")
    if spec_data is None:
        raise StoreError(
            f"{run.run_id} predates the campaign-spec registry format and "
            "cannot be rebuilt; launch a fresh campaign with `python -m repro run`"
        )
    return spec_data


def _build_campaign(config: dict):
    """Rebuild (scenario, loop) from a recorded run config, deterministically."""
    # imported here (not module top) so `ls`/`show`/`gc` stay snappy and the
    # store package never depends on the high-level packages at import time
    from ..runtime.spec import CampaignSpec

    spec_data = config.get("spec")
    if spec_data is None:
        raise StoreError(
            "run has no recorded campaign spec (pre-spec registry format); "
            "re-run the campaign with `python -m repro run`"
        )
    return CampaignSpec.from_dict(spec_data).build()


def _telemetry_enabled(config: dict) -> bool:
    """Whether the recorded spec asks for telemetry (policy.telemetry)."""
    spec = config.get("spec")
    if not isinstance(spec, dict):
        return False
    policy = spec.get("policy")
    return isinstance(policy, dict) and bool(policy.get("telemetry"))


def _execute(run: StoredRun, resume: bool) -> None:
    """Run (or resume) the campaign recorded in ``run`` and store its artifacts."""
    from .. import telemetry

    resume_from = None
    if resume:
        if not run.checkpoint_path.exists():
            raise ReproError(
                f"{run.run_id} has no checkpoint to resume from; "
                "re-run it with a policy whose checkpoint_every > 0"
            )
        resume_from = str(run.checkpoint_path)
    try:
        scenario, loop = _build_campaign(run.config)
        with telemetry.session(enabled=_telemetry_enabled(run.config)) as sess:
            try:
                _, report = loop.run(
                    scenario.model,
                    operational_data=scenario.operational_data,
                    checkpoint_path=str(run.checkpoint_path),
                    resume_from=resume_from,
                )
            finally:
                # a failed campaign's partial trace is exactly what you want
                # for the post-mortem, so save before re-raising
                if sess is not None:
                    run.save_telemetry(sess)
    except BaseException:
        run.set_status("failed")
        raise
    run.save_report(report)
    run.save_detections(loop.detected_aes)
    run.save_stats(loop.query_stats)
    if loop.last_estimate is not None:
        run.save_estimates({"final": loop.last_estimate})
    run.finish("completed")
    print(f"{run.run_id}: completed — {report.total_aes} AEs over "
          f"{report.num_iterations} iterations, final pmi {report.final_pmi:.4f}")


# --------------------------------------------------------------------------- #
# commands
# --------------------------------------------------------------------------- #
def _cmd_run(registry: RunRegistry, args: argparse.Namespace) -> int:
    from ..runtime.policy import load_structured_file
    from ..runtime.spec import CampaignSpec

    if args.spec is not None and args.from_run is not None:
        raise ReproError("--spec and --from-run are mutually exclusive")
    if args.spec is not None:
        spec_data = load_structured_file(args.spec)
    elif args.from_run is not None:
        spec_data = _stored_spec(registry.get(args.from_run))
    else:
        spec_data = _spec_from_flags(args)
    if args.telemetry:
        # --telemetry composes with every spec source; the override is part
        # of the stored document, so `--from-run` of this run inherits it
        spec_data = dict(spec_data)
        spec_data["policy"] = {**spec_data.get("policy", {}), "telemetry": True}
    # validate before registering — a malformed spec never creates a run;
    # anything that can only fail at build time (e.g. an unknown scenario
    # name) is recorded and marks the run "failed"
    spec = CampaignSpec.from_dict(spec_data)
    # the registry records the spec document *verbatim* (not a normalised
    # re-serialisation), so a stored run reproduces exactly what was launched
    run = registry.create(args.name or spec.campaign_name, {"spec": spec_data})
    print(f"registered {run.run_id} ({run.name}) under {registry.root}")
    _execute(run, resume=False)
    return 0


def _cmd_resume(registry: RunRegistry, args: argparse.Namespace) -> int:
    run = registry.get(args.run_id)
    if run.status == "completed":
        print(f"{run.run_id} already completed; nothing to resume")
        return 0
    _execute(run, resume=True)
    return 0


def _cmd_ls(registry: RunRegistry, args: argparse.Namespace) -> int:
    from ..evaluation.reporting import format_table, run_summary_documents, run_summary_rows

    runs = registry.runs()
    if args.json:
        import json

        print(json.dumps(run_summary_documents(runs), indent=2, sort_keys=True))
    else:
        print(format_table(run_summary_rows(runs), title=f"runs in {registry.root}"))
    return 0


def _cmd_show(registry: RunRegistry, args: argparse.Namespace) -> int:
    from ..evaluation.reporting import render_stored_run

    print(render_stored_run(registry.get(args.run_id)))
    return 0


def _cmd_trace(registry: RunRegistry, args: argparse.Namespace) -> int:
    from .. import telemetry

    run = registry.get(args.run_id)
    header, spans = run.load_trace()
    if args.chrome:
        with open(args.chrome, "w") as fp:
            telemetry.write_chrome_trace(fp, header, spans)
        print(f"wrote {len(spans)} trace events to {args.chrome}")
    if args.json:
        import json

        print(json.dumps(
            {"header": header, "spans": [span.to_dict() for span in spans]},
            indent=2, sort_keys=True,
        ))
    else:
        print(telemetry.render_timeline(header, spans))
    return 0


def _cmd_gc(registry: RunRegistry, args: argparse.Namespace) -> int:
    removed = registry.gc(keep=args.keep, status=args.status)
    if removed:
        print("removed " + ", ".join(removed))
    else:
        print("nothing to remove")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "resume": _cmd_resume,
    "ls": _cmd_ls,
    "show": _cmd_show,
    "trace": _cmd_trace,
    "gc": _cmd_gc,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    registry = RunRegistry(args.runs_dir if args.runs_dir else default_runs_dir())
    try:
        return _COMMANDS[args.command](registry, args)
    except CheckpointMismatchError as exc:
        # a usage error, not a campaign failure: the checkpoint on disk was
        # written by a different campaign than the one being resumed
        print(
            f"error: cannot resume from {exc.path}: checkpoint fingerprint "
            f"{exc.actual} does not match this campaign's {exc.expected}",
            file=sys.stderr,
        )
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


__all__ = ["main"]
