"""``python -m repro`` — run, resume and query testing campaigns.

The service surface over the campaign store:

``run``
    Prepare a named scenario, run the operational testing loop with
    checkpointing and a (optionally durable) query cache, and record the
    campaign — config, engine stats, detections, reliability estimates,
    iteration report — as a registry artifact.
``resume``
    Pick up an interrupted run from its checkpoint.  The scenario and loop
    are rebuilt from the recorded config (same seed), so the resumed
    campaign continues bit-identically.
``ls``
    List registered runs.
``show``
    Render one stored run (config, stats, iteration table, estimates).
``gc``
    Delete stored runs by status and/or count.

Every command takes ``--runs-dir`` (default: ``./repro-runs``, overridable
via ``REPRO_RUNS_DIR``), so several hosts can share one registry directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..config import default_runs_dir
from ..exceptions import ReproError
from .registry import RUN_STATUSES, RunRegistry, StoredRun


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run and query operational-testing campaigns.",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        help="run-registry root (default: ./repro-runs or $REPRO_RUNS_DIR)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a campaign on a named scenario")
    run.add_argument("--scenario", default="two-moons",
                     help="scenario name (see repro.evaluation.available_scenarios)")
    run.add_argument("--name", default=None, help="registry name (default: scenario)")
    run.add_argument("--seed", type=int, default=2021, help="campaign RNG seed")
    run.add_argument("--samples", type=int, default=None,
                     help="scenario dataset size override (smaller = faster)")
    run.add_argument("--epochs", type=int, default=None,
                     help="scenario model-training epochs override")
    run.add_argument("--iterations", type=int, default=3, help="loop iteration cap")
    run.add_argument("--budget", type=int, default=300,
                     help="fuzzing query budget per iteration")
    run.add_argument("--seeds-per-iteration", type=int, default=10)
    run.add_argument("--queries-per-seed", type=int, default=20)
    run.add_argument("--target-pmi", type=float, default=0.02)
    run.add_argument("--engine", default=None,
                     choices=("sequential", "population", "sharded"),
                     help="execution engine for the whole loop")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes for --engine sharded")
    run.add_argument("--cache-dir", default=None,
                     help="durable query-cache directory (warm across runs/hosts)")
    run.add_argument("--checkpoint-every", type=int, default=1,
                     help="iterations between checkpoints (0 disables)")

    resume = commands.add_parser("resume", help="resume an interrupted run")
    resume.add_argument("run_id", help="registry id, e.g. run-0001")

    commands.add_parser("ls", help="list registered runs")

    show = commands.add_parser("show", help="render one stored run")
    show.add_argument("run_id", help="registry id, e.g. run-0001")

    gc = commands.add_parser("gc", help="delete stored runs")
    gc.add_argument("--status", default=None, choices=RUN_STATUSES,
                    help="only delete runs in this state")
    gc.add_argument("--keep", type=int, default=None,
                    help="spare the newest KEEP matching runs")
    return parser


# --------------------------------------------------------------------------- #
# campaign construction (shared by run and resume)
# --------------------------------------------------------------------------- #
def _build_campaign(config: dict):
    """Rebuild (scenario, loop) from a recorded run config, deterministically."""
    # imported here (not module top) so `ls`/`show`/`gc` stay snappy and the
    # store package never depends on the high-level packages at import time
    from ..core.workflow import OperationalTestingLoop, WorkflowConfig
    from ..evaluation.scenarios import make_scenario
    from ..fuzzing.fuzzer import FuzzerConfig
    from ..reliability.assessment import StoppingRule

    overrides = {}
    if config.get("samples") is not None:
        overrides["num_samples"] = int(config["samples"])
    if config.get("epochs") is not None:
        overrides["epochs"] = int(config["epochs"])
    scenario = make_scenario(config["scenario"], rng=int(config["seed"]), **overrides)
    loop = OperationalTestingLoop(
        profile=scenario.profile,
        train_data=scenario.train_data,
        partition=scenario.partition,
        naturalness=scenario.naturalness,
        fuzzer_config=FuzzerConfig(queries_per_seed=int(config["queries_per_seed"])),
        stopping_rule=StoppingRule(
            target_pmi=float(config["target_pmi"]),
            max_iterations=int(config["iterations"]),
        ),
        workflow_config=WorkflowConfig(
            test_budget_per_iteration=int(config["budget"]),
            seeds_per_iteration=int(config["seeds_per_iteration"]),
            engine=config.get("engine"),
            num_workers=int(config.get("workers", 1)),
            cache_dir=config.get("cache_dir"),
            checkpoint_every=int(config.get("checkpoint_every", 1)),
        ),
        rng=int(config["seed"]),
    )
    return scenario, loop


def _execute(run: StoredRun, resume: bool) -> None:
    """Run (or resume) the campaign recorded in ``run`` and store its artifacts."""
    resume_from = None
    if resume:
        if not run.checkpoint_path.exists():
            raise ReproError(
                f"{run.run_id} has no checkpoint to resume from; "
                "re-run it with --checkpoint-every > 0"
            )
        resume_from = str(run.checkpoint_path)
    try:
        scenario, loop = _build_campaign(run.config)
        _, report = loop.run(
            scenario.model,
            operational_data=scenario.operational_data,
            checkpoint_path=str(run.checkpoint_path),
            resume_from=resume_from,
        )
    except BaseException:
        run.set_status("failed")
        raise
    run.save_report(report)
    run.save_detections(loop.detected_aes)
    run.save_stats(loop.query_stats)
    if loop.last_estimate is not None:
        run.save_estimates({"final": loop.last_estimate})
    run.finish("completed")
    print(f"{run.run_id}: completed — {report.total_aes} AEs over "
          f"{report.num_iterations} iterations, final pmi {report.final_pmi:.4f}")


# --------------------------------------------------------------------------- #
# commands
# --------------------------------------------------------------------------- #
def _cmd_run(registry: RunRegistry, args: argparse.Namespace) -> int:
    config = {
        "scenario": args.scenario,
        "seed": args.seed,
        "samples": args.samples,
        "epochs": args.epochs,
        "iterations": args.iterations,
        "budget": args.budget,
        "seeds_per_iteration": args.seeds_per_iteration,
        "queries_per_seed": args.queries_per_seed,
        "target_pmi": args.target_pmi,
        "engine": args.engine,
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "checkpoint_every": args.checkpoint_every,
    }
    run = registry.create(args.name or args.scenario, config)
    print(f"registered {run.run_id} ({run.name}) under {registry.root}")
    _execute(run, resume=False)
    return 0


def _cmd_resume(registry: RunRegistry, args: argparse.Namespace) -> int:
    run = registry.get(args.run_id)
    if run.status == "completed":
        print(f"{run.run_id} already completed; nothing to resume")
        return 0
    _execute(run, resume=True)
    return 0


def _cmd_ls(registry: RunRegistry, args: argparse.Namespace) -> int:
    from ..evaluation.reporting import format_table, run_summary_rows

    print(format_table(run_summary_rows(registry.runs()), title=f"runs in {registry.root}"))
    return 0


def _cmd_show(registry: RunRegistry, args: argparse.Namespace) -> int:
    from ..evaluation.reporting import render_stored_run

    print(render_stored_run(registry.get(args.run_id)))
    return 0


def _cmd_gc(registry: RunRegistry, args: argparse.Namespace) -> int:
    removed = registry.gc(keep=args.keep, status=args.status)
    if removed:
        print("removed " + ", ".join(removed))
    else:
        print("nothing to remove")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "resume": _cmd_resume,
    "ls": _cmd_ls,
    "show": _cmd_show,
    "gc": _cmd_gc,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    registry = RunRegistry(args.runs_dir if args.runs_dir else default_runs_dir())
    try:
        return _COMMANDS[args.command](registry, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


__all__ = ["main"]
