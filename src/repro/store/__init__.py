"""Persistent campaign store: the durability layer behind the query engine.

PRs 2–3 made model queries batched and sharded; this package makes campaigns
*durable*.  Three clients share one design (chunked, content-addressed,
append-only files behind a small API — the HSDS model):

* :mod:`repro.store.cache` — :class:`PersistentQueryCache`, a durable
  :class:`repro.engine.CacheBackend`: warm query caches survive the process
  and can be shared across hosts via a common directory.
* :mod:`repro.store.checkpoint` — atomic campaign checkpoints (per-seed RNG
  streams, budgets, stall counters, ``QueryStats``) so an interrupted
  campaign resumes bit-identical to an uninterrupted one.
* :mod:`repro.store.registry` — :class:`RunRegistry`, which records every
  campaign's config, engine stats, detections and reliability estimates as
  queryable on-disk artifacts.

The CLI surface over the registry lives in :mod:`repro.store.cli`
(``python -m repro run|resume|ls|show|gc``); it is imported lazily by
``repro.__main__`` rather than here, because it depends on the high-level
workflow and scenario packages.
"""

from .cache import DEFAULT_MAX_SEGMENT_BYTES, PersistentQueryCache
from .checkpoint import (
    Checkpointer,
    campaign_fingerprint,
    read_checkpoint,
    write_checkpoint,
)
from .registry import RUN_STATUSES, RunRegistry, StoredRun

__all__ = [
    "DEFAULT_MAX_SEGMENT_BYTES",
    "PersistentQueryCache",
    "Checkpointer",
    "campaign_fingerprint",
    "read_checkpoint",
    "write_checkpoint",
    "RUN_STATUSES",
    "RunRegistry",
    "StoredRun",
]
