"""Atomic campaign checkpoints: snapshot, crash, resume — bit-identically.

A checkpoint is one pickled payload (per-seed RNG bit-generator states,
budgets, stall counters, partial outcomes, ``QueryStats`` — everything the
campaign control flow mutates) written atomically: the payload is serialized
to a temporary file in the same directory and renamed over the target, so a
writer killed mid-checkpoint leaves the previous checkpoint intact, never a
torn one.

Checkpoints carry a *fingerprint* of the campaign inputs (seed matrix,
labels, the config knobs that shape control flow).  Resuming verifies the
fingerprint, so a checkpoint can never be silently replayed against a
different campaign.  The pickled payload snapshots live mutable state
(``numpy`` Generators round-trip their exact bit-generator state), which is
what makes a resumed campaign bit-identical to an uninterrupted one — the
property ``tests/test_store.py`` pins across execution backends.
"""

from __future__ import annotations

import os
import pickle
from hashlib import blake2b
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .. import telemetry
from ..exceptions import CheckpointError
from ..telemetry import clock

_FORMAT = "repro-checkpoint"
_VERSION = 1

PathLike = Union[str, os.PathLike]


def campaign_fingerprint(*arrays: np.ndarray, extra: str = "") -> str:
    """Digest identifying a campaign by its inputs and control-flow knobs.

    Two campaigns with the same fingerprint replay the same logical work, so
    a checkpoint of one may resume the other (this is what allows a campaign
    checkpointed under ``execution="population"`` to resume under
    ``"sharded"``: the control flow is shared, only physical execution
    differs).
    """
    h = blake2b(digest_size=16)
    for array in arrays:
        a = np.ascontiguousarray(array)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    h.update(extra.encode())
    return h.hexdigest()


def write_checkpoint(path: PathLike, payload: Dict[str, object]) -> None:
    """Atomically persist ``payload`` (pickle, tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    envelope = {"format": _FORMAT, "version": _VERSION, "payload": payload}
    tmp = path.with_name(path.name + ".tmp")
    timed = telemetry.enabled()
    started = clock.monotonic() if timed else 0.0
    with open(tmp, "wb") as handle:
        pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if timed:
        telemetry.observe("store.checkpoint_write_s", clock.monotonic() - started)
        telemetry.count("store.checkpoint_writes")
        telemetry.count("store.checkpoint_bytes", path.stat().st_size)


def read_checkpoint(path: PathLike) -> Dict[str, object]:
    """Load a checkpoint payload, failing loudly on corruption or mismatch."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except Exception as exc:  # corrupt pickle, truncated file, ...
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
        raise CheckpointError(f"{path} is not a repro checkpoint")
    if envelope.get("version") != _VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {envelope.get('version')!r}, "
            f"expected {_VERSION}"
        )
    return envelope["payload"]


class Checkpointer:
    """Interval-driven checkpoint writer used inside campaign loops.

    Parameters
    ----------
    path:
        Checkpoint target; every save atomically replaces it.
    every:
        Snapshot cadence in loop steps (rounds for the population fuzzer,
        seeds for the sequential one, iterations for the workflow).
    meta:
        Envelope fields merged into every payload (fingerprint, kind, ...).
    keep_history:
        Additionally keep each snapshot as ``<path>.<step>`` instead of only
        the latest — used by tests and for post-mortem debugging.
    """

    def __init__(
        self,
        path: PathLike,
        every: int,
        meta: Optional[Dict[str, object]] = None,
        keep_history: bool = False,
    ) -> None:
        if every <= 0:
            raise CheckpointError("checkpoint cadence must be positive")
        self.path = Path(path)
        self.every = int(every)
        self.meta = dict(meta or {})
        self.keep_history = keep_history
        self._last_saved: Optional[int] = None

    def due(self, step: int) -> bool:
        """Whether a snapshot is due at ``step`` (step 0 is never saved).

        A step is saved at most once, so loops that revisit their
        checkpoint point without advancing (e.g. an admission ``continue``)
        don't rewrite identical snapshots.
        """
        return step > 0 and step % self.every == 0 and step != self._last_saved

    def save(self, step: int, payload: Dict[str, object]) -> None:
        merged = {**self.meta, "step": step, **payload}
        write_checkpoint(self.path, merged)
        if self.keep_history:
            write_checkpoint(
                self.path.with_name(f"{self.path.name}.{step:06d}"), merged
            )
        self._last_saved = step

    def save_if_due(self, step: int, payload_fn) -> None:
        """Save ``payload_fn()`` when ``step`` hits the cadence.

        The payload is built lazily so loops don't pay snapshot-construction
        cost on the (vast majority of) steps that don't checkpoint.
        """
        if self.due(step):
            self.save(step, payload_fn())


__all__ = [
    "campaign_fingerprint",
    "write_checkpoint",
    "read_checkpoint",
    "Checkpointer",
]
