"""Detection methods: the proposed operational-AE testing and its baselines.

A *detection method* spends a budget of test cases (model queries) trying to
find adversarial examples.  The paper's argument is that state-of-the-art
methods spend that budget without regard to the operational profile, so the
AEs they find are often irrelevant to delivered reliability.  Four methods are
implemented behind one interface so they can be compared fairly:

* :class:`OperationalAEDetection` — the proposed method: OP+failure-weighted
  seed sampling (RQ2) followed by naturalness-guided fuzzing (RQ3).
* :class:`AttackOnUniformSeeds` — state-of-the-art debug testing: a strong
  attack (PGD by default) launched from uniformly sampled seeds.
* :class:`RandomFuzzBaseline` — unguided random fuzzing from uniform seeds.
* :class:`OperationalTestingBaseline` — classic operational testing: execute
  inputs drawn from the OP and record natural failures, with no perturbation
  search at all (the "inefficient at detecting bugs" extreme of Frankl et al.).

Every method annotates the AEs it finds with the seed's OP density and the
candidate's naturalness so the comparison can score *operational* AEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..attacks.base import Attack
from ..attacks.gradient import PGD
from ..attacks.random_search import RandomFuzz
from ..config import EPSILON, RngLike, ensure_rng
from ..data.dataset import Dataset
from ..exceptions import ConfigurationError
from ..fuzzing.fuzzer import FuzzerConfig, OperationalFuzzer
from ..naturalness.metrics import NaturalnessScorer
from ..op.profile import OperationalProfile
from ..runtime.policy import ExecutionPolicy
from ..sampling.samplers import OperationalSeedSampler, SeedSampler, UniformSeedSampler
from ..types import AdversarialExample, Classifier, DetectionResult


class DetectionMethod:
    """Interface of budgeted AE-detection methods."""

    name: str = "method"

    def detect(
        self,
        model: Classifier,
        operational_data: Dataset,
        budget: int,
        rng: RngLike = None,
    ) -> DetectionResult:
        """Spend at most ``budget`` test cases looking for AEs."""
        raise NotImplementedError

    @staticmethod
    def _check_budget(budget: int) -> None:
        if budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {budget}")


def _normalised_density(
    profile: Optional[OperationalProfile], x: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Density of ``x`` scaled so the mean density over ``reference`` is one."""
    if profile is None:
        return np.ones(len(x))
    reference_density = profile.density(reference)
    scale = max(float(reference_density.mean()), EPSILON)
    return profile.density(x) / scale


@dataclass
class OperationalAEDetection(DetectionMethod):
    """The proposed method: OP-weighted seeds + naturalness-guided fuzzing.

    Parameters
    ----------
    profile:
        Operational profile (used for seed weights, fuzz energies and AE
        annotation).
    naturalness:
        Fitted naturalness scorer shared with the fuzzer.
    fuzzer_config:
        Fuzzer hyper-parameters; ``queries_per_seed`` determines how many
        seeds a budget buys.
    sampler:
        Seed sampler; defaults to :class:`OperationalSeedSampler` with margin
        weights.
    """

    profile: OperationalProfile
    naturalness: NaturalnessScorer
    fuzzer_config: Optional[FuzzerConfig] = None
    sampler: Optional[SeedSampler] = None
    name: str = "operational-ae-detection"

    def detect(
        self,
        model: Classifier,
        operational_data: Dataset,
        budget: int,
        rng: RngLike = None,
    ) -> DetectionResult:
        self._check_budget(budget)
        generator = ensure_rng(rng)
        config = self.fuzzer_config if self.fuzzer_config is not None else FuzzerConfig()
        sampler = (
            self.sampler
            if self.sampler is not None
            else OperationalSeedSampler(profile=self.profile)
        )
        fuzzer = OperationalFuzzer(
            naturalness=self.naturalness,
            config=config,
            natural_pool=operational_data.x,
        )

        adversarial: List[AdversarialExample] = []
        used = 0
        seeds_attacked = 0
        # keep sampling fresh seed batches until the test-case budget is spent
        while used < budget:
            remaining = budget - used
            num_seeds = max(1, remaining // config.queries_per_seed)
            num_seeds = min(num_seeds, len(operational_data))
            selection = sampler.select(operational_data, model, num_seeds, rng=generator)
            densities = _normalised_density(self.profile, selection.x, operational_data.x)
            campaign = fuzzer.fuzz(
                model,
                selection.x,
                selection.y,
                op_densities=densities,
                budget=remaining,
                rng=generator,
            )
            adversarial.extend(campaign.adversarial_examples)
            used += campaign.total_queries
            seeds_attacked += len(campaign.per_seed)
            if campaign.total_queries == 0:
                break
        return DetectionResult(
            method=self.name,
            adversarial_examples=adversarial,
            test_cases_used=used,
            budget=budget,
            seeds_attacked=seeds_attacked,
        )


@dataclass
class AttackOnUniformSeeds(DetectionMethod):
    """State-of-the-art baseline: a strong attack from uniformly chosen seeds.

    The attack is OP-ignorant by construction: seeds are drawn uniformly from
    ``seed_pool`` (typically the balanced train/test data the developers
    already have) rather than from the operational dataset.  The profile and
    scorer are used only *post hoc* to annotate what the attack found, so the
    comparison can ask how operationally relevant those AEs are.
    """

    attack: Optional[Attack] = None
    profile: Optional[OperationalProfile] = None
    naturalness: Optional[NaturalnessScorer] = None
    seed_pool: Optional[Dataset] = None
    queries_per_seed_estimate: int = 21
    name: str = "pgd-uniform-seeds"

    def detect(
        self,
        model: Classifier,
        operational_data: Dataset,
        budget: int,
        rng: RngLike = None,
    ) -> DetectionResult:
        self._check_budget(budget)
        generator = ensure_rng(rng)
        attack = self.attack if self.attack is not None else PGD(epsilon=0.1, num_steps=10)
        pool = self.seed_pool if self.seed_pool is not None else operational_data

        adversarial: List[AdversarialExample] = []
        used = 0
        seeds_attacked = 0
        while used < budget:
            remaining = budget - used
            num_seeds = max(1, remaining // max(self.queries_per_seed_estimate, 1))
            num_seeds = min(num_seeds, len(pool))
            selection = UniformSeedSampler().select(pool, model, num_seeds, rng=generator)
            result = attack.run(model, selection.x, selection.y, rng=generator)
            densities = _normalised_density(self.profile, selection.x, operational_data.x)
            hits = np.flatnonzero(result.success)
            # annotate every successful AE with one batched naturalness call
            hit_naturalness = (
                np.asarray(self.naturalness.score(result.adversarial_x[hits]), dtype=float)
                if self.naturalness is not None and len(hits) > 0
                else None
            )
            for position, i in enumerate(hits):
                perturbed = result.adversarial_x[i]
                adversarial.append(
                    AdversarialExample(
                        seed=selection.x[i].copy(),
                        perturbed=perturbed.copy(),
                        true_label=int(selection.y[i]),
                        predicted_label=int(result.predicted_labels[i]),
                        distance=float(np.max(np.abs(perturbed - selection.x[i]))),
                        naturalness=(
                            float(hit_naturalness[position])
                            if hit_naturalness is not None
                            else None
                        ),
                        op_density=float(densities[i]),
                        method=self.name,
                        queries=int(result.queries_per_seed[i]),
                    )
                )
            used += result.queries
            seeds_attacked += len(selection)
            if result.queries == 0:
                break
        return DetectionResult(
            method=self.name,
            adversarial_examples=adversarial,
            test_cases_used=used,
            budget=budget,
            seeds_attacked=seeds_attacked,
        )


@dataclass
class RandomFuzzBaseline(AttackOnUniformSeeds):
    """Unguided random fuzzing from uniform seeds (black-box baseline)."""

    name: str = "random-fuzz-uniform-seeds"

    def detect(
        self,
        model: Classifier,
        operational_data: Dataset,
        budget: int,
        rng: RngLike = None,
    ) -> DetectionResult:
        if self.attack is None:
            self.attack = RandomFuzz(epsilon=0.1, num_trials=20)
            self.queries_per_seed_estimate = 21
        return super().detect(model, operational_data, budget, rng)


@dataclass
class OperationalTestingBaseline(DetectionMethod):
    """Pure operational testing: draw OP inputs, record natural failures.

    No perturbation search is performed — every test case is an input the
    model would actually receive.  Failures found this way are maximally
    operational but the method is known to be a very inefficient bug detector,
    which is the other side of the trade-off the paper wants to optimise.

    Model queries go through the ``policy`` funnel (default in-process policy
    when ``None``), so the budget actually spent is visible in ``QueryStats``
    and an already-built engine passes through unchanged.
    """

    profile: OperationalProfile
    naturalness: Optional[NaturalnessScorer] = None
    policy: Optional[ExecutionPolicy] = None
    name: str = "operational-testing"

    def detect(
        self,
        model: Classifier,
        operational_data: Dataset,
        budget: int,
        rng: RngLike = None,
    ) -> DetectionResult:
        self._check_budget(budget)
        generator = ensure_rng(rng)
        size = min(budget, len(operational_data))
        policy = self.policy if self.policy is not None else ExecutionPolicy()
        with policy.session(model) as engine:
            selection = UniformSeedSampler().select(operational_data, engine, size, rng=generator)
            predictions = engine.predict(selection.x)
        densities = _normalised_density(self.profile, selection.x, operational_data.x)
        adversarial: List[AdversarialExample] = []
        failures = np.flatnonzero(predictions != selection.y)
        failure_naturalness = (
            np.asarray(self.naturalness.score(selection.x[failures]), dtype=float)
            if self.naturalness is not None and len(failures) > 0
            else None
        )
        for position, i in enumerate(failures):
            adversarial.append(
                AdversarialExample(
                    seed=selection.x[i].copy(),
                    perturbed=selection.x[i].copy(),
                    true_label=int(selection.y[i]),
                    predicted_label=int(predictions[i]),
                    distance=0.0,
                    naturalness=(
                        float(failure_naturalness[position])
                        if failure_naturalness is not None
                        else None
                    ),
                    op_density=float(densities[i]),
                    method=self.name,
                    queries=1,
                )
            )
        return DetectionResult(
            method=self.name,
            adversarial_examples=adversarial,
            test_cases_used=size,
            budget=budget,
            seeds_attacked=size,
        )


__all__ = [
    "DetectionMethod",
    "OperationalAEDetection",
    "AttackOnUniformSeeds",
    "RandomFuzzBaseline",
    "OperationalTestingBaseline",
]
