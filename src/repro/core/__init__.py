"""The paper's primary contribution: the operational-AE testing method.

This package wires the subsystem packages into (i) budgeted detection methods
(the proposed method and its baselines), (ii) a fair comparison harness, and
(iii) the five-step iterative testing loop of Figure 1.
"""

from .comparison import (
    ComparisonReport,
    MethodComparison,
    MethodScore,
    OperationalAECriterion,
)
from .methods import (
    AttackOnUniformSeeds,
    DetectionMethod,
    OperationalAEDetection,
    OperationalTestingBaseline,
    RandomFuzzBaseline,
)
from .workflow import OperationalTestingLoop, WorkflowConfig

__all__ = [
    "ComparisonReport",
    "MethodComparison",
    "MethodScore",
    "OperationalAECriterion",
    "AttackOnUniformSeeds",
    "DetectionMethod",
    "OperationalAEDetection",
    "OperationalTestingBaseline",
    "RandomFuzzBaseline",
    "OperationalTestingLoop",
    "WorkflowConfig",
]
