"""The five-step operational testing loop of Figure 1.

Given a DL model and its application, one iteration of the loop performs:

1. **Learn the OP / synthesise the operational dataset** (RQ1) — either the
   caller supplies an operational dataset directly, or a profile plus
   synthesizer generate one.
2. **Sample seeds** from the operational dataset with weights combining OP
   density and failure likelihood (RQ2).
3. **Fuzz** around every seed under naturalness constraints to detect
   operational AEs (RQ3).
4. **Retrain** the model on the detected AEs with OP-aware weights (RQ4).
5. **Assess delivered reliability** of the retrained model (RQ5); the result
   drives the stopping rule and prioritises weak cells for the next loop.

Steps 2–5 repeat until the reliability target is met or the budget/iteration
caps are reached.  :class:`OperationalTestingLoop` wires the subsystem
packages together; every component can be swapped for an ablated or baseline
variant.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..config import RngLike, ensure_rng
from ..data.dataset import Dataset
from ..data.partition import Partition, build_partition_for_dataset
from ..engine.batching import QueryStats
from ..exceptions import CheckpointMismatchError, ConfigurationError
from ..faults.supervision import DegradeEvent, on_degrade
from ..fuzzing.fuzzer import EXECUTION_MODES, FuzzerConfig, OperationalFuzzer
from ..runtime.policy import ExecutionPolicy, warn_legacy_knob
from ..store.checkpoint import Checkpointer, campaign_fingerprint, read_checkpoint
from ..naturalness.metrics import NaturalnessScorer, default_naturalness_scorer
from ..nn.network import Sequential
from ..op.profile import OperationalProfile
from ..op.synthesis import OperationalDatasetSynthesizer
from ..reliability.assessment import ReliabilityAssessor, ReliabilityEstimate, StoppingRule
from ..retraining.adversarial_training import OperationalRetrainer, RetrainingConfig
from ..sampling.samplers import OperationalSeedSampler, SeedSampler
from ..types import AdversarialExample, CampaignReport, IterationReport


#: Deprecated per-knob parameters of :class:`WorkflowConfig`, each a thin
#: shim folding into :attr:`WorkflowConfig.policy`.
WORKFLOW_LEGACY_KNOBS = ("engine", "num_workers", "cache_dir", "checkpoint_every")


@dataclass
class WorkflowConfig:
    """Configuration of the operational testing loop.

    Attributes
    ----------
    test_budget_per_iteration:
        Model queries the fuzzer may spend per loop iteration.
    seeds_per_iteration:
        Seeds sampled per iteration (capped by the operational dataset size).
    operational_dataset_size:
        Size of the operational dataset synthesised when none is supplied.
    reassess_with_monte_carlo:
        Also record a direct Monte Carlo operational accuracy estimate in the
        iteration notes (slower but an independent cross-check).
    policy:
        One :class:`~repro.runtime.ExecutionPolicy` driving the whole loop:
        it replaces the fuzzer config's execution surface, selects the
        backend of the default reliability assessor, and its
        ``checkpoint_every`` sets the loop's checkpoint cadence (in
        iterations).  ``None`` (default) leaves the fuzzer and assessor at
        their own policies.  Campaign results are bit-identical across
        policies.
    engine, num_workers, cache_dir, checkpoint_every:
        **Deprecated** per-knob shims.  ``engine`` maps onto the fuzzer's
        ``execution`` control flow plus ``policy.backend``; the others patch
        the matching policy field for the fuzzer (``checkpoint_every`` sets
        the loop cadence).  Each emits a ``DeprecationWarning`` naming the
        ``ExecutionPolicy`` replacement.
    """

    test_budget_per_iteration: int = 600
    seeds_per_iteration: int = 20
    operational_dataset_size: int = 500
    reassess_with_monte_carlo: bool = False
    policy: Optional[ExecutionPolicy] = None
    engine: Optional[str] = None
    num_workers: Optional[int] = None
    cache_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.test_budget_per_iteration <= 0:
            raise ConfigurationError("test_budget_per_iteration must be positive")
        if self.seeds_per_iteration <= 0:
            raise ConfigurationError("seeds_per_iteration must be positive")
        if self.operational_dataset_size <= 0:
            raise ConfigurationError("operational_dataset_size must be positive")
        if self.policy is not None and not isinstance(self.policy, ExecutionPolicy):
            raise ConfigurationError(
                "WorkflowConfig: policy must be an ExecutionPolicy, "
                f"got {type(self.policy).__name__} ({self.policy!r})"
            )

        # ---- fold the deprecated shims into policy-speak ----------------- #
        # the loop consumes two resolved pieces of state: a patch of policy
        # fields (plus an optional control-flow override) applied to the
        # fuzzer config, and the assessor/checkpoint settings
        patch: dict = {}
        execution_override: Optional[str] = None
        if self.engine is not None:
            if self.engine not in EXECUTION_MODES:
                raise ConfigurationError(
                    f"engine must be None or one of {EXECUTION_MODES}, "
                    f"got {self.engine!r}"
                )
            warn_legacy_knob(
                "WorkflowConfig",
                "engine",
                # "sequential"/"population" are control-flow choices: their
                # replacement is the fuzzer's execution knob, not a policy
                # backend — pointing at ExecutionPolicy would change behavior
                "policy=ExecutionPolicy(backend='sharded')"
                if self.engine == "sharded"
                else f"FuzzerConfig(execution={self.engine!r})",
                stacklevel=4,
            )
            if self.engine == "sharded":
                patch["backend"] = "sharded"
                execution_override = "population"
            else:
                patch["backend"] = "batched"
                execution_override = self.engine
        if self.num_workers is not None:
            warn_legacy_knob(
                "WorkflowConfig",
                "num_workers",
                "policy=ExecutionPolicy(num_workers=...)",
                stacklevel=4,
            )
            if self.num_workers <= 0:
                raise ConfigurationError("num_workers must be positive")
            patch["num_workers"] = self.num_workers
        if self.cache_dir is not None:
            warn_legacy_knob(
                "WorkflowConfig",
                "cache_dir",
                "policy=ExecutionPolicy(cache=True, cache_dir=...)",
                stacklevel=4,
            )
            patch["cache_dir"] = str(self.cache_dir)
        cadence = 0
        if self.checkpoint_every is not None:
            warn_legacy_knob(
                "WorkflowConfig",
                "checkpoint_every",
                "policy=ExecutionPolicy(checkpoint_every=...)",
                stacklevel=4,
            )
            if self.checkpoint_every < 0:
                raise ConfigurationError("checkpoint_every must be non-negative")
            cadence = int(self.checkpoint_every)

        if self.policy is not None:
            # the new-style override is wholesale: the workflow policy *is*
            # the fuzzer's execution surface (its own checkpoint cadence
            # excepted — that stays the fuzzer's business), with any legacy
            # shims patched on top
            fields = (
                "backend",
                "num_workers",
                "batch_size",
                "cache",
                "cache_max_entries",
                "cache_dir",
                "rng_spawning",
                "start_method",
                "retry",
                "faults",
            )
            patch = {
                **{name: getattr(self.policy, name) for name in fields},
                **patch,
            }
            if self.checkpoint_every is None:
                cadence = self.policy.checkpoint_every
        self._fuzzer_policy_patch = patch
        self._fuzzer_execution = execution_override
        self._checkpoint_cadence = cadence
        # the shims are spent: null them so copying the config (dataclasses
        # .replace) stays warning-free.  A policy-built config round-trips
        # losslessly (everything is recomputed from the policy field); a
        # legacy-built config does not survive replace() — its state lives
        # only in the resolved private attributes — which is one more reason
        # to migrate.
        self.engine = None
        self.num_workers = None
        self.cache_dir = None
        self.checkpoint_every = None

    @property
    def checkpoint_cadence(self) -> int:
        """Iterations between loop checkpoints (0 disables), resolved from
        the policy or the deprecated ``checkpoint_every`` shim."""
        return self._checkpoint_cadence

    def fuzzer_overrides(self) -> Tuple[Optional[str], dict]:
        """``(execution override, policy-field patch)`` applied to the fuzzer."""
        return self._fuzzer_execution, dict(self._fuzzer_policy_patch)

    def assessor_policy(self) -> ExecutionPolicy:
        """Policy for the default reliability assessor.

        The workflow policy when one was given; otherwise the assessor
        default patched with any legacy backend/worker override (the legacy
        ``cache_dir`` knob never reached the assessor, and still doesn't).
        """
        if self.policy is not None:
            return self.policy.replace(checkpoint_every=0)
        subset = {
            name: value
            for name, value in self._fuzzer_policy_patch.items()
            if name in ("backend", "num_workers", "batch_size", "start_method")
        }
        return ExecutionPolicy(**subset)


class OperationalTestingLoop:
    """End-to-end implementation of the paper's proposed testing method."""

    def __init__(
        self,
        profile: OperationalProfile,
        train_data: Dataset,
        partition: Optional[Partition] = None,
        naturalness: Optional[NaturalnessScorer] = None,
        sampler: Optional[SeedSampler] = None,
        fuzzer_config: Optional[FuzzerConfig] = None,
        retraining_config: Optional[RetrainingConfig] = None,
        stopping_rule: Optional[StoppingRule] = None,
        workflow_config: Optional[WorkflowConfig] = None,
        assessor: Optional[ReliabilityAssessor] = None,
        rng: RngLike = None,
    ) -> None:
        self.profile = profile
        self.train_data = train_data
        self.config = workflow_config if workflow_config is not None else WorkflowConfig()
        self.stopping_rule = stopping_rule if stopping_rule is not None else StoppingRule()
        self.fuzzer_config = fuzzer_config if fuzzer_config is not None else FuzzerConfig()
        execution_override, policy_patch = self.config.fuzzer_overrides()
        if execution_override is not None or policy_patch:
            # one workflow-level policy drives every hot path: the fuzzer's
            # execution surface here, the assessor backend below
            self.fuzzer_config = replace(
                self.fuzzer_config,
                execution=execution_override or self.fuzzer_config.execution,
                policy=self.fuzzer_config.policy.replace(**policy_patch),
            )
        self._rng = ensure_rng(rng)

        self.partition = (
            partition
            if partition is not None
            else build_partition_for_dataset(train_data.x, rng=self._rng)
        )
        self.naturalness = (
            naturalness
            if naturalness is not None
            else default_naturalness_scorer(train_data.x, profile=profile, rng=self._rng)
        )
        self.sampler = (
            sampler if sampler is not None else OperationalSeedSampler(profile=profile)
        )
        self.retrainer = OperationalRetrainer(
            config=retraining_config, profile=profile, rng=self._rng
        )
        self.assessor = (
            assessor
            if assessor is not None
            else ReliabilityAssessor(
                partition=self.partition,
                profile=profile,
                confidence=self.stopping_rule.confidence,
                policy=self.config.assessor_policy(),
                rng=self._rng,
            )
        )
        self.synthesizer = OperationalDatasetSynthesizer(
            profile=profile, reference=train_data
        )
        self.detected_aes: List[AdversarialExample] = []
        #: Aggregated fuzzer engine accounting across the whole campaign.
        self.query_stats = QueryStats()
        #: Reliability estimate of the last completed assessment.
        self.last_estimate: Optional[ReliabilityEstimate] = None

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        model: Sequential,
        operational_data: Optional[Dataset] = None,
        in_place: bool = False,
        checkpoint_path: Optional[str] = None,
        resume_from: Optional[str] = None,
    ) -> Tuple[Sequential, CampaignReport]:
        """Run the loop until the stopping rule fires.

        Parameters
        ----------
        model:
            Model under test.  A deep copy is improved and returned unless
            ``in_place`` is set.
        operational_data:
            Pre-built operational dataset (step 1 output); synthesised from
            the profile when omitted.
        checkpoint_path:
            Where to snapshot the campaign every
            ``config.checkpoint_cadence`` iterations (model weights, detected
            AEs, report, the campaign RNG's exact bit-generator state).
        resume_from:
            Checkpoint written by an earlier run of this campaign.  The
            loop must be constructed with the same arguments (training
            data, configs, RNG seed); the snapshot then restores the model
            and the campaign RNG so the remaining iterations replay
            bit-identically to an uninterrupted run — including every
            subsequent reliability estimate.
        """
        current = model if in_place else copy.deepcopy(model)
        report = CampaignReport()
        # the fingerprint hashes configuration *values* (not reprs), so any
        # object carrying the same knob settings identifies the same campaign
        knobs = "|".join(
            str(sorted(dataclasses.asdict(cfg).items()))
            for cfg in (self.config, self.stopping_rule, self.fuzzer_config)
        )
        fingerprint = campaign_fingerprint(
            self.train_data.x, self.train_data.y, extra=knobs
        )
        checkpointer = None
        if checkpoint_path is not None and self.config.checkpoint_cadence > 0:
            checkpointer = Checkpointer(
                checkpoint_path,
                every=self.config.checkpoint_cadence,
                meta={"fingerprint": fingerprint, "kind": "workflow"},
            )

        if resume_from is not None:
            payload = read_checkpoint(resume_from)
            if payload.get("fingerprint") != fingerprint:
                raise CheckpointMismatchError(
                    resume_from, fingerprint, payload.get("fingerprint")
                )
            # restore every piece of mutable campaign state; the shared RNG
            # object drives the sampler, fuzzer, retrainer and assessor, so
            # restoring its bit-generator state resumes the exact stream
            self._rng.bit_generator.state = payload["rng_state"]
            current.set_weights(payload["model_weights"])
            self.detected_aes = list(payload["detected_aes"])
            self.query_stats = payload["query_stats"]
            report = payload["report"]
            operational_data = payload["operational_data"]
            estimate_before = payload["estimate_before"]
            total_test_cases = int(payload["total_test_cases"])
            start_iteration = int(payload["next_iteration"])
            self.last_estimate = estimate_before
        else:
            if operational_data is None:
                operational_data = self.synthesizer.synthesize(
                    self.config.operational_dataset_size, rng=self._rng
                )
            estimate_before = self.assessor.assess(
                current, operational_data, rng=self._rng
            )
            self.last_estimate = estimate_before
            total_test_cases = 0
            start_iteration = 0

        # when the sharded engine exhausts its worker pool mid-iteration it
        # degrades to in-process execution; this listener writes a final
        # checkpoint of the last *completed* iteration first, so nothing is
        # lost even if the host is about to follow its workers down.  The
        # snapshot is value-copied at each iteration boundary: the live
        # report/AE/stats objects mutate mid-iteration, and a checkpoint
        # must describe a consistent iteration boundary to resume from.
        last_snapshot: Optional[Tuple[int, dict]] = None

        def _degrade_checkpoint(event: DegradeEvent) -> None:
            if checkpointer is not None and last_snapshot is not None:
                checkpointer.save(last_snapshot[0], last_snapshot[1])

        with on_degrade(_degrade_checkpoint):
            for iteration in range(start_iteration, self.stopping_rule.max_iterations):
                with telemetry.span(f"iteration-{iteration}", "app",
                                    iteration=iteration):
                    iteration_report, current, estimate_after = self._run_iteration(
                        iteration, current, operational_data, estimate_before
                    )
                total_test_cases += iteration_report.test_cases_used
                report.append(iteration_report)
                self.last_estimate = estimate_after
                if checkpointer is not None:
                    snapshot = {
                        "next_iteration": iteration + 1,
                        "rng_state": self._rng.bit_generator.state,
                        "model_weights": copy.deepcopy(current.get_weights()),
                        "detected_aes": list(self.detected_aes),
                        "query_stats": dataclasses.replace(self.query_stats),
                        "report": copy.deepcopy(report),
                        "operational_data": operational_data,
                        "estimate_before": estimate_after,
                        "total_test_cases": total_test_cases,
                    }
                    last_snapshot = (iteration + 1, snapshot)
                    checkpointer.save_if_due(iteration + 1, lambda: snapshot)
                if self.stopping_rule.should_stop(
                    estimate_after, iteration, total_test_cases
                ):
                    break
                estimate_before = estimate_after
        return current, report

    def _run_iteration(
        self,
        iteration: int,
        model: Sequential,
        operational_data: Dataset,
        estimate_before: ReliabilityEstimate,
    ) -> Tuple[IterationReport, Sequential, ReliabilityEstimate]:
        # ---- step 2: seed sampling -------------------------------------- #
        num_seeds = min(self.config.seeds_per_iteration, len(operational_data))
        selection = self.sampler.select(operational_data, model, num_seeds, rng=self._rng)

        # ---- step 3: naturalness-guided fuzzing -------------------------- #
        fuzzer = OperationalFuzzer(
            naturalness=self.naturalness,
            config=self.fuzzer_config,
            natural_pool=operational_data.x,
        )
        densities = self.profile.density(selection.x)
        mean_density = max(float(self.profile.density(operational_data.x).mean()), 1e-12)
        campaign = fuzzer.fuzz(
            model,
            selection.x,
            selection.y,
            op_densities=densities / mean_density,
            budget=self.config.test_budget_per_iteration,
            rng=self._rng,
        )
        new_aes = campaign.adversarial_examples
        self.detected_aes.extend(new_aes)

        # ---- step 4: OP-aware retraining --------------------------------- #
        if new_aes:
            model = self.retrainer.retrain(model, self.train_data, self.detected_aes)

        # ---- step 5: reliability assessment ------------------------------ #
        estimate_after = self.assessor.assess(model, operational_data, rng=self._rng)
        notes = {
            "pmi_upper_before": estimate_before.pmi_upper,
            "pmi_upper_after": estimate_after.pmi_upper,
            "queries_reliability_assessment": float(estimate_after.queries),
        }
        if fuzzer.last_query_stats is not None:
            # batched-engine accounting: how many physical model calls (and
            # cache hits) the logical fuzzing budget actually cost
            stats = fuzzer.last_query_stats
            self.query_stats.merge(stats)
            notes["fuzzer_model_calls"] = float(stats.model_calls + stats.gradient_calls)
            notes["fuzzer_rows_queried"] = float(stats.rows_queried + stats.gradient_rows)
            notes["fuzzer_cache_hits"] = float(stats.cache_hits)
        if self.config.reassess_with_monte_carlo:
            notes["mc_operational_accuracy"] = self.assessor.operational_accuracy_monte_carlo(
                model, operational_data, rng=self._rng
            )

        iteration_report = IterationReport(
            iteration=iteration,
            seeds_selected=len(selection),
            test_cases_used=campaign.total_queries,
            aes_detected=len(new_aes),
            pmi_before=estimate_before.pmi,
            pmi_after=estimate_after.pmi,
            operational_accuracy_before=estimate_before.operational_accuracy,
            operational_accuracy_after=estimate_after.operational_accuracy,
            reliability_target=self.stopping_rule.target_pmi,
            target_met=estimate_after.meets_target(
                self.stopping_rule.target_pmi, conservative=self.stopping_rule.conservative
            ),
            notes=notes,
        )
        return iteration_report, model, estimate_after


__all__ = ["WORKFLOW_LEGACY_KNOBS", "WorkflowConfig", "OperationalTestingLoop"]
