"""Fair comparison of detection methods under equal test-case budgets.

The comparison answers the paper's central empirical questions: given the
same number of test cases, which method detects more *operational* AEs (E2),
how natural are they (E4), and how much delivered-reliability improvement do
they buy after retraining (E3/E7)?

An AE counts as *operational* when both its naturalness and its seed's OP
density clear configurable thresholds — the quantitative version of the
paper's "AEs that have relatively high chance to be seen in future operation".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import RngLike, ensure_rng, spawn_rngs
from ..data.dataset import Dataset
from ..exceptions import ConfigurationError
from ..types import AdversarialExample, Classifier, DetectionResult
from .methods import DetectionMethod


@dataclass
class OperationalAECriterion:
    """Decides whether a detected AE counts as an operational AE.

    Attributes
    ----------
    min_naturalness:
        Minimum naturalness score (relative to natural data's median of ~1.0).
    min_op_density:
        Minimum OP density relative to the operational dataset's mean (1.0
        means "at least as likely as an average operational input").
    require_annotations:
        When ``True`` an AE missing either annotation does not count; when
        ``False`` missing annotations are treated as passing.
    """

    min_naturalness: float = 0.5
    min_op_density: float = 0.5
    require_annotations: bool = True

    def is_operational(self, ae: AdversarialExample) -> bool:
        naturalness_ok = self._check(ae.naturalness, self.min_naturalness)
        density_ok = self._check(ae.op_density, self.min_op_density)
        return naturalness_ok and density_ok

    def _check(self, value: Optional[float], threshold: float) -> bool:
        if value is None:
            return not self.require_annotations
        return value >= threshold

    def count(self, result: DetectionResult) -> int:
        """Number of operational AEs in a detection result."""
        return sum(1 for ae in result.adversarial_examples if self.is_operational(ae))


@dataclass
class MethodScore:
    """Aggregated metrics of one method at one budget (possibly over repeats)."""

    method: str
    budget: int
    total_aes: float
    operational_aes: float
    operational_yield: float  # operational AEs per 100 test cases
    mean_naturalness: float
    mean_op_density: float
    op_weighted_mass: float
    test_cases_used: float
    repeats: int = 1


@dataclass
class ComparisonReport:
    """All method scores produced by one comparison run."""

    scores: List[MethodScore] = field(default_factory=list)
    criterion: OperationalAECriterion = field(default_factory=OperationalAECriterion)

    def for_method(self, method: str) -> List[MethodScore]:
        return [s for s in self.scores if s.method == method]

    def for_budget(self, budget: int) -> List[MethodScore]:
        return [s for s in self.scores if s.budget == budget]

    def best_method_by_operational_aes(self, budget: int) -> Optional[str]:
        candidates = self.for_budget(budget)
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.operational_aes).method

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for text-table rendering."""
        return [
            {
                "method": s.method,
                "budget": s.budget,
                "AEs": round(s.total_aes, 2),
                "op-AEs": round(s.operational_aes, 2),
                "op-AEs/100tc": round(s.operational_yield, 3),
                "naturalness": round(s.mean_naturalness, 3),
                "op-density": round(s.mean_op_density, 3),
                "op-mass": round(s.op_weighted_mass, 3),
                "test-cases": round(s.test_cases_used, 1),
            }
            for s in self.scores
        ]


class MethodComparison:
    """Runs several detection methods at several budgets and scores them."""

    def __init__(
        self,
        methods: Sequence[DetectionMethod],
        criterion: Optional[OperationalAECriterion] = None,
    ) -> None:
        if not methods:
            raise ConfigurationError("MethodComparison requires at least one method")
        names = [m.name for m in methods]
        if len(set(names)) != len(names):
            raise ConfigurationError("detection methods must have unique names")
        self.methods = list(methods)
        self.criterion = criterion if criterion is not None else OperationalAECriterion()

    def run(
        self,
        model: Classifier,
        operational_data: Dataset,
        budgets: Sequence[int],
        repeats: int = 1,
        rng: RngLike = None,
    ) -> ComparisonReport:
        """Run every method at every budget, averaging over ``repeats`` runs."""
        if not budgets:
            raise ConfigurationError("budgets must not be empty")
        if any(b <= 0 for b in budgets):
            raise ConfigurationError("budgets must be positive")
        if repeats <= 0:
            raise ConfigurationError("repeats must be positive")
        generator = ensure_rng(rng)
        report = ComparisonReport(criterion=self.criterion)
        for budget in budgets:
            for method in self.methods:
                repeat_rngs = spawn_rngs(generator, repeats)
                results = [
                    method.detect(model, operational_data, budget, rng=r) for r in repeat_rngs
                ]
                report.scores.append(self._score(method.name, budget, results))
        return report

    def _score(
        self, method: str, budget: int, results: Sequence[DetectionResult]
    ) -> MethodScore:
        total = float(np.mean([r.num_detected for r in results]))
        operational = float(np.mean([self.criterion.count(r) for r in results]))
        used = float(np.mean([max(r.test_cases_used, 1) for r in results]))
        return MethodScore(
            method=method,
            budget=budget,
            total_aes=total,
            operational_aes=operational,
            operational_yield=100.0 * operational / used,
            mean_naturalness=float(np.mean([r.mean_naturalness() for r in results])),
            mean_op_density=float(np.mean([r.mean_op_density() for r in results])),
            op_weighted_mass=float(np.mean([r.operational_weight() for r in results])),
            test_cases_used=used,
            repeats=len(results),
        )


__all__ = [
    "OperationalAECriterion",
    "MethodScore",
    "ComparisonReport",
    "MethodComparison",
]
