"""Input transforms and data-augmentation operators.

Augmentation plays two roles in the paper: (i) RQ1 mentions data augmentation
as a way to speed up learning and validating the operational profile, and
(ii) the operational fuzzer's mutation operators reuse the same primitive
perturbations.  All transforms operate on flattened rows in ``[0, 1]^d`` and
keep outputs inside that domain.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import RngLike, clip01, ensure_rng
from ..exceptions import ConfigurationError, ShapeError
from .dataset import Dataset

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def gaussian_noise(std: float = 0.05) -> Transform:
    """Additive Gaussian pixel/feature noise with standard deviation ``std``."""
    if std < 0:
        raise ConfigurationError("std must be non-negative")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return clip01(x + rng.normal(0.0, std, size=x.shape))

    return apply


def uniform_noise(magnitude: float = 0.05) -> Transform:
    """Additive uniform noise in ``[-magnitude, magnitude]``."""
    if magnitude < 0:
        raise ConfigurationError("magnitude must be non-negative")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return clip01(x + rng.uniform(-magnitude, magnitude, size=x.shape))

    return apply


def feature_dropout(rate: float = 0.05) -> Transform:
    """Zero out a random fraction of features (occlusion-style corruption)."""
    if not 0.0 <= rate < 1.0:
        raise ConfigurationError("rate must be in [0, 1)")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        mask = rng.random(x.shape) >= rate
        return x * mask

    return apply


def brightness_shift(max_shift: float = 0.15) -> Transform:
    """Add a constant offset drawn from ``[-max_shift, max_shift]`` to all features."""
    if max_shift < 0:
        raise ConfigurationError("max_shift must be non-negative")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        shifts = rng.uniform(-max_shift, max_shift, size=(x.shape[0], 1))
        return clip01(x + shifts)

    return apply


def contrast_scale(min_scale: float = 0.8, max_scale: float = 1.2) -> Transform:
    """Scale features around 0.5 by a random per-sample factor."""
    if not 0 < min_scale <= max_scale:
        raise ConfigurationError("need 0 < min_scale <= max_scale")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        scales = rng.uniform(min_scale, max_scale, size=(x.shape[0], 1))
        return clip01((x - 0.5) * scales + 0.5)

    return apply


def image_translate(
    image_shape: Tuple[int, int, int], max_pixels: int = 1
) -> Transform:
    """Translate flattened images by up to ``max_pixels`` in each direction."""
    if max_pixels < 0:
        raise ConfigurationError("max_pixels must be non-negative")
    channels, height, width = image_shape

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if x.shape[1] != channels * height * width:
            raise ShapeError("input rows do not match the configured image shape")
        out = np.empty_like(x)
        for i, row in enumerate(x):
            image = row.reshape(channels, height, width)
            dy = int(rng.integers(-max_pixels, max_pixels + 1))
            dx = int(rng.integers(-max_pixels, max_pixels + 1))
            shifted = np.zeros_like(image)
            src_y = slice(max(0, -dy), height - max(0, dy))
            dst_y = slice(max(0, dy), height - max(0, -dy))
            src_x = slice(max(0, -dx), width - max(0, dx))
            dst_x = slice(max(0, dx), width - max(0, -dx))
            shifted[:, dst_y, dst_x] = image[:, src_y, src_x]
            out[i] = shifted.ravel()
        return out

    return apply


class Augmenter:
    """Apply a pipeline of transforms to expand a dataset.

    Parameters
    ----------
    transforms:
        Transforms applied in order to each augmented copy.
    copies:
        Number of augmented copies generated per original sample.
    include_original:
        Whether the original samples are kept in the output dataset.
    """

    def __init__(
        self,
        transforms: Sequence[Transform],
        copies: int = 1,
        include_original: bool = True,
        rng: RngLike = None,
    ) -> None:
        if not transforms:
            raise ConfigurationError("Augmenter requires at least one transform")
        if copies <= 0:
            raise ConfigurationError("copies must be positive")
        self.transforms: List[Transform] = list(transforms)
        self.copies = copies
        self.include_original = include_original
        self._rng = ensure_rng(rng)

    def apply_to_array(self, x: np.ndarray) -> np.ndarray:
        """Apply the transform pipeline once to every row of ``x``."""
        out = np.asarray(x, dtype=float)
        for transform in self.transforms:
            out = transform(out, self._rng)
        return out

    def augment(self, dataset: Dataset) -> Dataset:
        """Return an augmented dataset (original + ``copies`` transformed copies)."""
        parts_x = [dataset.x] if self.include_original else []
        parts_y = [dataset.y] if self.include_original else []
        for _ in range(self.copies):
            parts_x.append(self.apply_to_array(dataset.x))
            parts_y.append(dataset.y.copy())
        return Dataset(
            np.concatenate(parts_x, axis=0),
            np.concatenate(parts_y, axis=0),
            dataset.num_classes,
            class_names=dataset.class_names,
            image_shape=dataset.image_shape,
            name=f"{dataset.name}-augmented",
        )


def default_augmenter(
    image_shape: Optional[Tuple[int, int, int]] = None,
    copies: int = 1,
    rng: RngLike = None,
) -> Augmenter:
    """Build a reasonable default augmentation pipeline.

    Image datasets get translation + noise + brightness; tabular datasets get
    noise only.
    """
    transforms: List[Transform] = [gaussian_noise(0.03)]
    if image_shape is not None:
        transforms = [
            image_translate(image_shape, max_pixels=1),
            brightness_shift(0.1),
            gaussian_noise(0.03),
        ]
    return Augmenter(transforms, copies=copies, rng=rng)


__all__ = [
    "Transform",
    "gaussian_noise",
    "uniform_noise",
    "feature_dropout",
    "brightness_shift",
    "contrast_scale",
    "image_translate",
    "Augmenter",
    "default_augmenter",
]
