"""Dataset container with splitting, batching and class statistics.

All datasets in the library live in the canonical input domain ``[0, 1]^d``
with inputs flattened to one feature axis and integer class labels.  The
container is intentionally small: it is a :class:`repro.types.LabeledBatch`
plus metadata (class names, image shape) and convenience operations used by
the operational-profile and testing machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import RngLike, ensure_rng
from ..exceptions import DataError
from ..types import LabeledBatch


@dataclass
class Dataset:
    """A labelled dataset in the canonical ``[0, 1]^d`` input domain.

    Attributes
    ----------
    x:
        Inputs, shape ``(n, d)``.
    y:
        Integer labels, shape ``(n,)``.
    num_classes:
        Total number of classes (may exceed the number present in ``y``).
    class_names:
        Optional human-readable class names, length ``num_classes``.
    image_shape:
        Optional ``(channels, height, width)`` if the rows are flattened
        images; ``None`` for tabular data.
    name:
        Dataset identifier used in reports.
    """

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    class_names: Optional[List[str]] = None
    image_shape: Optional[Tuple[int, int, int]] = None
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=int)
        if self.x.ndim != 2:
            raise DataError(f"x must be 2-D, got shape {self.x.shape}")
        if self.y.ndim != 1 or len(self.y) != len(self.x):
            raise DataError("y must be 1-D and aligned with x")
        if self.num_classes < 2:
            raise DataError(f"num_classes must be >= 2, got {self.num_classes}")
        if len(self.y) and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise DataError("labels out of range for num_classes")
        if self.class_names is not None and len(self.class_names) != self.num_classes:
            raise DataError("class_names must have one entry per class")
        if self.image_shape is not None:
            expected = int(np.prod(self.image_shape))
            if expected != self.x.shape[1]:
                raise DataError(
                    f"image_shape {self.image_shape} does not match feature count {self.x.shape[1]}"
                )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.x)

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def as_batch(self) -> LabeledBatch:
        """View the dataset as a plain :class:`LabeledBatch`."""
        return LabeledBatch(self.x, self.y)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, length ``num_classes``."""
        return np.bincount(self.y, minlength=self.num_classes)

    def class_frequencies(self) -> np.ndarray:
        """Empirical class distribution (sums to one; uniform if empty)."""
        counts = self.class_counts().astype(float)
        total = counts.sum()
        if total == 0:
            return np.full(self.num_classes, 1.0 / self.num_classes)
        return counts / total

    def indices_of_class(self, label: int) -> np.ndarray:
        """Row indices of all samples with the given class label."""
        if not 0 <= label < self.num_classes:
            raise DataError(f"label {label} out of range [0, {self.num_classes})")
        return np.flatnonzero(self.y == label)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        """Return a new dataset containing only the rows in ``indices``."""
        idx = np.asarray(indices, dtype=int)
        return Dataset(
            self.x[idx],
            self.y[idx],
            self.num_classes,
            class_names=self.class_names,
            image_shape=self.image_shape,
            name=name or self.name,
        )

    def shuffled(self, rng: RngLike = None) -> "Dataset":
        """Return a copy with rows in a random order."""
        generator = ensure_rng(rng)
        order = generator.permutation(len(self))
        return self.subset(order)

    def split(
        self, test_fraction: float = 0.25, rng: RngLike = None, stratify: bool = True
    ) -> Tuple["Dataset", "Dataset"]:
        """Split into (train, test) datasets.

        Parameters
        ----------
        test_fraction:
            Fraction of rows assigned to the test split.
        rng:
            Seed or generator controlling the split.
        stratify:
            Preserve per-class proportions in both splits when possible.
        """
        if not 0.0 < test_fraction < 1.0:
            raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
        generator = ensure_rng(rng)
        n = len(self)
        if n < 2:
            raise DataError("need at least two samples to split")
        test_indices: List[int] = []
        if stratify:
            for label in range(self.num_classes):
                members = self.indices_of_class(label)
                if len(members) == 0:
                    continue
                members = generator.permutation(members)
                count = int(round(len(members) * test_fraction))
                count = min(max(count, 1 if len(members) > 1 else 0), len(members) - 1)
                test_indices.extend(members[:count].tolist())
            if not test_indices:
                # every class is a singleton: stratification cannot give the
                # test split anything, so fall back to an unstratified draw
                stratify = False
        if not stratify:
            order = generator.permutation(n)
            count = max(1, int(round(n * test_fraction)))
            test_indices = order[:count].tolist()
        test_mask = np.zeros(n, dtype=bool)
        test_mask[np.asarray(test_indices, dtype=int)] = True
        train = self.subset(np.flatnonzero(~test_mask), name=f"{self.name}-train")
        test = self.subset(np.flatnonzero(test_mask), name=f"{self.name}-test")
        if len(train) == 0 or len(test) == 0:
            raise DataError("split produced an empty partition; adjust test_fraction")
        return train, test

    def sample(self, size: int, rng: RngLike = None, replace: bool = False) -> "Dataset":
        """Return ``size`` rows sampled uniformly at random."""
        if size <= 0:
            raise DataError(f"sample size must be positive, got {size}")
        if not replace and size > len(self):
            raise DataError(
                f"cannot sample {size} rows without replacement from {len(self)}"
            )
        generator = ensure_rng(rng)
        idx = generator.choice(len(self), size=size, replace=replace)
        return self.subset(idx, name=f"{self.name}-sample")

    def concat(self, other: "Dataset", name: Optional[str] = None) -> "Dataset":
        """Concatenate two datasets over the same input space."""
        if other.num_features != self.num_features:
            raise DataError("datasets disagree on feature count")
        if other.num_classes != self.num_classes:
            raise DataError("datasets disagree on num_classes")
        return Dataset(
            np.concatenate([self.x, other.x], axis=0),
            np.concatenate([self.y, other.y], axis=0),
            self.num_classes,
            class_names=self.class_names,
            image_shape=self.image_shape,
            name=name or self.name,
        )

    def batches(
        self, batch_size: int, rng: RngLike = None, shuffle: bool = True
    ):
        """Yield :class:`LabeledBatch` mini-batches covering the dataset once."""
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            order = ensure_rng(rng).permutation(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield LabeledBatch(self.x[idx], self.y[idx])

    def summary(self) -> Dict[str, float]:
        """Return simple descriptive statistics used in reports."""
        freqs = self.class_frequencies()
        return {
            "size": float(len(self)),
            "num_features": float(self.num_features),
            "num_classes": float(self.num_classes),
            "min_class_frequency": float(freqs.min()) if len(self) else 0.0,
            "max_class_frequency": float(freqs.max()) if len(self) else 0.0,
        }


__all__ = ["Dataset"]
