"""Synthetic dataset generators with known ground-truth structure.

The paper evaluates on image classifiers whose data (MNIST/CIFAR-scale) and
frameworks (PyTorch/TensorFlow) are unavailable in this environment, so we
substitute procedurally generated datasets that preserve the properties the
method depends on:

* a meaningful notion of *density* over the input space (so an operational
  profile exists and can be estimated),
* class structure learnable by small networks (so adversarial examples are
  perturbations near decision boundaries, not label noise), and
* controllable class priors (so the mismatch between balanced training data
  and a skewed operational profile — the paper's central motivation — can be
  dialled in exactly).

Two families are provided: low-dimensional geometric benchmarks (Gaussian
clusters, two moons, concentric rings) and image-like benchmarks (glyph digits
and shape scenes) rendered on small grids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import RngLike, clip01, ensure_rng
from ..exceptions import ConfigurationError, DataError
from .dataset import Dataset


# --------------------------------------------------------------------------- #
# low-dimensional geometric benchmarks
# --------------------------------------------------------------------------- #
def make_gaussian_clusters(
    num_samples: int = 1000,
    num_classes: int = 4,
    num_features: int = 2,
    cluster_std: float = 0.06,
    class_priors: Optional[Sequence[float]] = None,
    rng: RngLike = None,
) -> Dataset:
    """Gaussian blobs, one per class, placed on a circle inside ``[0, 1]^d``.

    Parameters
    ----------
    num_samples:
        Total number of samples to draw.
    num_classes:
        Number of blobs/classes.
    num_features:
        Dimensionality of the input space (first two axes carry the circle,
        remaining axes are small-noise nuisance dimensions).
    cluster_std:
        Standard deviation of each blob.
    class_priors:
        Optional class prior used when drawing labels; uniform by default.
        This is how a ground-truth operational profile is injected.
    rng:
        Seed or generator.
    """
    if num_samples <= 0:
        raise ConfigurationError("num_samples must be positive")
    if num_classes < 2:
        raise ConfigurationError("num_classes must be >= 2")
    if num_features < 2:
        raise ConfigurationError("num_features must be >= 2")
    if cluster_std <= 0:
        raise ConfigurationError("cluster_std must be positive")
    generator = ensure_rng(rng)
    priors = _normalise_priors(class_priors, num_classes)

    angles = 2 * np.pi * np.arange(num_classes) / num_classes
    centers = np.full((num_classes, num_features), 0.5)
    centers[:, 0] = 0.5 + 0.3 * np.cos(angles)
    centers[:, 1] = 0.5 + 0.3 * np.sin(angles)

    labels = generator.choice(num_classes, size=num_samples, p=priors)
    noise = generator.normal(0.0, cluster_std, size=(num_samples, num_features))
    x = clip01(centers[labels] + noise)
    return Dataset(
        x,
        labels,
        num_classes,
        class_names=[f"cluster-{i}" for i in range(num_classes)],
        name="gaussian-clusters",
    )


def make_two_moons(
    num_samples: int = 1000,
    noise: float = 0.05,
    class_priors: Optional[Sequence[float]] = None,
    rng: RngLike = None,
) -> Dataset:
    """Two interleaving half circles in ``[0, 1]^2`` (binary classification)."""
    if num_samples <= 1:
        raise ConfigurationError("num_samples must be at least 2")
    if noise < 0:
        raise ConfigurationError("noise must be non-negative")
    generator = ensure_rng(rng)
    priors = _normalise_priors(class_priors, 2)
    labels = generator.choice(2, size=num_samples, p=priors)
    t = generator.random(num_samples) * np.pi
    x = np.empty((num_samples, 2))
    upper = labels == 0
    x[upper, 0] = np.cos(t[upper])
    x[upper, 1] = np.sin(t[upper])
    x[~upper, 0] = 1.0 - np.cos(t[~upper])
    x[~upper, 1] = 0.5 - np.sin(t[~upper])
    x += generator.normal(0.0, noise, size=x.shape)
    # map from roughly [-1, 2] x [-0.6, 1.1] into [0, 1]^2
    x[:, 0] = (x[:, 0] + 1.2) / 3.4
    x[:, 1] = (x[:, 1] + 0.8) / 2.1
    return Dataset(
        clip01(x), labels, 2, class_names=["upper-moon", "lower-moon"], name="two-moons"
    )


def make_concentric_rings(
    num_samples: int = 1000,
    num_rings: int = 3,
    ring_width: float = 0.03,
    class_priors: Optional[Sequence[float]] = None,
    rng: RngLike = None,
) -> Dataset:
    """Concentric rings around the centre of ``[0, 1]^2``, one class per ring."""
    if num_rings < 2:
        raise ConfigurationError("num_rings must be >= 2")
    if ring_width <= 0:
        raise ConfigurationError("ring_width must be positive")
    generator = ensure_rng(rng)
    priors = _normalise_priors(class_priors, num_rings)
    labels = generator.choice(num_rings, size=num_samples, p=priors)
    radii = 0.1 + 0.35 * (labels + 1) / num_rings
    radii = radii + generator.normal(0.0, ring_width, size=num_samples)
    angles = generator.random(num_samples) * 2 * np.pi
    x = np.stack(
        [0.5 + radii * np.cos(angles), 0.5 + radii * np.sin(angles)], axis=1
    )
    return Dataset(
        clip01(x),
        labels,
        num_rings,
        class_names=[f"ring-{i}" for i in range(num_rings)],
        name="concentric-rings",
    )


# --------------------------------------------------------------------------- #
# image-like benchmarks
# --------------------------------------------------------------------------- #
_GLYPH_TEMPLATES: Dict[int, List[str]] = {
    0: [
        "..####..",
        ".#....#.",
        "#......#",
        "#......#",
        "#......#",
        "#......#",
        ".#....#.",
        "..####..",
    ],
    1: [
        "...##...",
        "..###...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        ".######.",
    ],
    2: [
        ".#####..",
        "#.....#.",
        "......#.",
        ".....#..",
        "...##...",
        "..#.....",
        ".#......",
        "########",
    ],
    3: [
        ".#####..",
        "......#.",
        "......#.",
        "..####..",
        "......#.",
        "......#.",
        "......#.",
        ".#####..",
    ],
    4: [
        "....##..",
        "...#.#..",
        "..#..#..",
        ".#...#..",
        "########",
        ".....#..",
        ".....#..",
        ".....#..",
    ],
    5: [
        "########",
        "#.......",
        "#.......",
        "######..",
        "......#.",
        "......#.",
        "#.....#.",
        ".#####..",
    ],
    6: [
        "..####..",
        ".#......",
        "#.......",
        "######..",
        "#.....#.",
        "#.....#.",
        "#.....#.",
        ".#####..",
    ],
    7: [
        "########",
        "......#.",
        ".....#..",
        "....#...",
        "...#....",
        "..#.....",
        "..#.....",
        "..#.....",
    ],
    8: [
        ".#####..",
        "#.....#.",
        "#.....#.",
        ".#####..",
        "#.....#.",
        "#.....#.",
        "#.....#.",
        ".#####..",
    ],
    9: [
        ".#####..",
        "#.....#.",
        "#.....#.",
        ".######.",
        "......#.",
        "......#.",
        ".....#..",
        ".####...",
    ],
}

_SHAPE_NAMES = ("circle", "square", "triangle", "cross")


def _normalise_priors(
    class_priors: Optional[Sequence[float]], num_classes: int
) -> np.ndarray:
    if class_priors is None:
        return np.full(num_classes, 1.0 / num_classes)
    priors = np.asarray(class_priors, dtype=float)
    if priors.shape != (num_classes,):
        raise DataError(
            f"class_priors must have length {num_classes}, got shape {priors.shape}"
        )
    if np.any(priors < 0) or priors.sum() <= 0:
        raise DataError("class_priors must be non-negative and sum to a positive value")
    return priors / priors.sum()


def _template_to_array(template: List[str]) -> np.ndarray:
    rows = [[1.0 if ch == "#" else 0.0 for ch in line] for line in template]
    return np.asarray(rows, dtype=float)


def _place_glyph(
    glyph: np.ndarray,
    image_size: int,
    shift: Tuple[int, int],
) -> np.ndarray:
    image = np.zeros((image_size, image_size), dtype=float)
    gh, gw = glyph.shape
    top = (image_size - gh) // 2 + shift[0]
    left = (image_size - gw) // 2 + shift[1]
    top = int(np.clip(top, 0, image_size - gh))
    left = int(np.clip(left, 0, image_size - gw))
    image[top : top + gh, left : left + gw] = glyph
    return image


def make_glyph_digits(
    num_samples: int = 2000,
    image_size: int = 12,
    num_classes: int = 10,
    noise: float = 0.08,
    max_shift: int = 2,
    intensity_jitter: float = 0.15,
    class_priors: Optional[Sequence[float]] = None,
    rng: RngLike = None,
) -> Dataset:
    """Procedurally rendered digit-like glyph images (MNIST stand-in).

    Each sample is an ``image_size x image_size`` grayscale image containing
    one of ten 8x8 digit glyph templates, randomly shifted, intensity-jittered
    and corrupted with Gaussian pixel noise, then flattened to a feature row.
    """
    if not 2 <= num_classes <= 10:
        raise ConfigurationError("num_classes must be between 2 and 10 for glyph digits")
    if image_size < 8:
        raise ConfigurationError("image_size must be at least 8 to hold the glyphs")
    if num_samples <= 0:
        raise ConfigurationError("num_samples must be positive")
    if noise < 0 or intensity_jitter < 0 or max_shift < 0:
        raise ConfigurationError("noise, intensity_jitter and max_shift must be non-negative")
    generator = ensure_rng(rng)
    priors = _normalise_priors(class_priors, num_classes)
    glyphs = {label: _template_to_array(_GLYPH_TEMPLATES[label]) for label in range(num_classes)}

    labels = generator.choice(num_classes, size=num_samples, p=priors)
    images = np.zeros((num_samples, image_size * image_size), dtype=float)
    max_feasible_shift = min(max_shift, (image_size - 8) // 2) if image_size > 8 else 0
    for i, label in enumerate(labels):
        shift = (
            int(generator.integers(-max_feasible_shift, max_feasible_shift + 1)),
            int(generator.integers(-max_feasible_shift, max_feasible_shift + 1)),
        )
        image = _place_glyph(glyphs[int(label)], image_size, shift)
        intensity = 1.0 - generator.random() * intensity_jitter
        image = image * intensity
        image = image + generator.normal(0.0, noise, size=image.shape)
        images[i] = clip01(image).ravel()
    return Dataset(
        images,
        labels,
        num_classes,
        class_names=[str(d) for d in range(num_classes)],
        image_shape=(1, image_size, image_size),
        name="glyph-digits",
    )


def _render_shape(
    shape: str, image_size: int, center: Tuple[float, float], radius: float
) -> np.ndarray:
    yy, xx = np.mgrid[0:image_size, 0:image_size]
    cy, cx = center
    image = np.zeros((image_size, image_size), dtype=float)
    if shape == "circle":
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
    elif shape == "square":
        mask = (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius)
    elif shape == "triangle":
        mask = (yy >= cy - radius) & (yy <= cy + radius)
        half_width = (yy - (cy - radius)) / 2.0
        mask &= np.abs(xx - cx) <= half_width
    elif shape == "cross":
        bar = max(1.0, radius / 2.5)
        vertical = (np.abs(xx - cx) <= bar) & (np.abs(yy - cy) <= radius)
        horizontal = (np.abs(yy - cy) <= bar) & (np.abs(xx - cx) <= radius)
        mask = vertical | horizontal
    else:  # pragma: no cover - guarded by caller
        raise ConfigurationError(f"unknown shape {shape!r}")
    image[mask] = 1.0
    return image


def make_shape_scenes(
    num_samples: int = 2000,
    image_size: int = 14,
    noise: float = 0.08,
    class_priors: Optional[Sequence[float]] = None,
    rng: RngLike = None,
) -> Dataset:
    """Images containing a single geometric shape (circle/square/triangle/cross).

    A lightweight stand-in for object-recognition workloads (e.g. traffic-sign
    shapes in the autonomous-driving scenarios the paper motivates).
    """
    if image_size < 8:
        raise ConfigurationError("image_size must be at least 8")
    if num_samples <= 0:
        raise ConfigurationError("num_samples must be positive")
    if noise < 0:
        raise ConfigurationError("noise must be non-negative")
    generator = ensure_rng(rng)
    num_classes = len(_SHAPE_NAMES)
    priors = _normalise_priors(class_priors, num_classes)
    labels = generator.choice(num_classes, size=num_samples, p=priors)
    images = np.zeros((num_samples, image_size * image_size), dtype=float)
    for i, label in enumerate(labels):
        radius = generator.uniform(image_size * 0.18, image_size * 0.3)
        margin = radius + 1
        cy = generator.uniform(margin, image_size - margin)
        cx = generator.uniform(margin, image_size - margin)
        image = _render_shape(_SHAPE_NAMES[int(label)], image_size, (cy, cx), radius)
        intensity = generator.uniform(0.7, 1.0)
        image = image * intensity + generator.normal(0.0, noise, size=image.shape)
        images[i] = clip01(image).ravel()
    return Dataset(
        images,
        labels,
        num_classes,
        class_names=list(_SHAPE_NAMES),
        image_shape=(1, image_size, image_size),
        name="shape-scenes",
    )


_GENERATORS = {
    "gaussian-clusters": make_gaussian_clusters,
    "two-moons": make_two_moons,
    "concentric-rings": make_concentric_rings,
    "glyph-digits": make_glyph_digits,
    "shape-scenes": make_shape_scenes,
}


def make_dataset(name: str, **kwargs) -> Dataset:
    """Create a synthetic dataset by name (see :data:`available_datasets`)."""
    if name not in _GENERATORS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; expected one of {sorted(_GENERATORS)}"
        )
    return _GENERATORS[name](**kwargs)


def available_datasets() -> List[str]:
    """Names accepted by :func:`make_dataset`."""
    return sorted(_GENERATORS)


__all__ = [
    "make_gaussian_clusters",
    "make_two_moons",
    "make_concentric_rings",
    "make_glyph_digits",
    "make_shape_scenes",
    "make_dataset",
    "available_datasets",
]
