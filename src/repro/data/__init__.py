"""Datasets, transforms and input-space partitioning.

This package provides the data substrate for the operational testing
pipeline: synthetic datasets with known ground-truth structure (so the
operational profile can be controlled exactly), data-augmentation operators
(used for OP learning in RQ1 and by the fuzzer's mutations), and cell
partitions of the input space (used by the ReAsDL-style reliability model).
"""

from .dataset import Dataset
from .partition import (
    AnchorPartition,
    GridPartition,
    Partition,
    build_partition_for_dataset,
)
from .synthetic import (
    available_datasets,
    make_concentric_rings,
    make_dataset,
    make_gaussian_clusters,
    make_glyph_digits,
    make_shape_scenes,
    make_two_moons,
)
from .transforms import (
    Augmenter,
    Transform,
    brightness_shift,
    contrast_scale,
    default_augmenter,
    feature_dropout,
    gaussian_noise,
    image_translate,
    uniform_noise,
)

__all__ = [
    "Dataset",
    "AnchorPartition",
    "GridPartition",
    "Partition",
    "build_partition_for_dataset",
    "available_datasets",
    "make_concentric_rings",
    "make_dataset",
    "make_gaussian_clusters",
    "make_glyph_digits",
    "make_shape_scenes",
    "make_two_moons",
    "Augmenter",
    "Transform",
    "brightness_shift",
    "contrast_scale",
    "default_augmenter",
    "feature_dropout",
    "gaussian_noise",
    "image_translate",
    "uniform_noise",
]
