"""Partitioning of the input space into cells.

The reliability model the paper builds on (ReAsDL, reference [12]/[13])
partitions the input domain into small "cells" — regions small enough that a
single ground-truth label and a single robustness evaluation are meaningful
for the whole cell, e.g. a norm ball around a natural input.  The operational
profile then assigns a probability to each cell, and delivered reliability is
the OP-weighted sum of per-cell unastuteness.

Two partition schemes are provided:

* :class:`GridPartition` — an axis-aligned grid over ``[0, 1]^d``; exact and
  exhaustive, practical for the low-dimensional geometric benchmarks.
* :class:`AnchorPartition` — cells induced by a set of anchor points (typically
  the operational dataset): each cell is the region of the input space closer
  to its anchor than to any other (a Voronoi cell), approximated for sampling
  purposes by an L∞ ball of a configurable radius around the anchor.  This is
  the scheme that scales to image-like inputs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..config import RngLike, clip01, ensure_rng
from ..exceptions import ConfigurationError, ShapeError

try:  # scipy is a hard dependency of the library, but keep the import local
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - scipy is always installed in this repo
    cKDTree = None


class Partition:
    """Interface shared by all cell partitions of the input space."""

    @property
    def num_cells(self) -> int:
        """Total number of cells in the partition."""
        raise NotImplementedError

    @property
    def num_features(self) -> int:
        """Dimensionality of the partitioned input space."""
        raise NotImplementedError

    def assign(self, x: np.ndarray) -> np.ndarray:
        """Map each row of ``x`` to the integer id of the cell containing it."""
        raise NotImplementedError

    def cell_center(self, cell_id: int) -> np.ndarray:
        """Return a representative (central) point of the cell."""
        raise NotImplementedError

    def sample_in_cell(
        self, cell_id: int, size: int, rng: RngLike = None
    ) -> np.ndarray:
        """Draw ``size`` points uniformly from the cell (clipped to ``[0, 1]^d``)."""
        raise NotImplementedError

    def cell_radius(self, cell_id: int) -> float:
        """Return the L∞ radius used when perturbing inside the cell."""
        raise NotImplementedError

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"expected inputs with {self.num_features} features, got {x.shape[1]}"
            )
        return x


class GridPartition(Partition):
    """Axis-aligned grid over ``[0, 1]^d`` with ``bins_per_dim`` bins per axis.

    Only the first ``grid_dims`` axes are gridded (to keep the cell count
    manageable for higher-dimensional data); remaining axes are ignored when
    assigning cells, which corresponds to projecting the OP onto the gridded
    subspace.
    """

    def __init__(
        self, num_features: int, bins_per_dim: int = 10, grid_dims: Optional[int] = None
    ) -> None:
        if num_features <= 0:
            raise ConfigurationError("num_features must be positive")
        if bins_per_dim < 1:
            raise ConfigurationError("bins_per_dim must be at least 1")
        self._num_features = num_features
        self.bins_per_dim = bins_per_dim
        self.grid_dims = min(grid_dims or num_features, num_features)
        if self.grid_dims <= 0:
            raise ConfigurationError("grid_dims must be positive")
        if bins_per_dim**self.grid_dims > 5_000_000:
            raise ConfigurationError(
                "grid would have more than 5e6 cells; reduce bins_per_dim or grid_dims"
            )
        self._num_cells = bins_per_dim**self.grid_dims

    @property
    def num_cells(self) -> int:
        return self._num_cells

    @property
    def num_features(self) -> int:
        return self._num_features

    def assign(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        coords = np.clip(
            (x[:, : self.grid_dims] * self.bins_per_dim).astype(int),
            0,
            self.bins_per_dim - 1,
        )
        cell_ids = np.zeros(len(x), dtype=int)
        for dim in range(self.grid_dims):
            cell_ids = cell_ids * self.bins_per_dim + coords[:, dim]
        return cell_ids

    def _cell_coords(self, cell_id: int) -> np.ndarray:
        if not 0 <= cell_id < self.num_cells:
            raise ConfigurationError(f"cell_id {cell_id} out of range")
        coords = np.zeros(self.grid_dims, dtype=int)
        remaining = cell_id
        for dim in reversed(range(self.grid_dims)):
            coords[dim] = remaining % self.bins_per_dim
            remaining //= self.bins_per_dim
        return coords

    def cell_center(self, cell_id: int) -> np.ndarray:
        coords = self._cell_coords(cell_id)
        center = np.full(self.num_features, 0.5)
        center[: self.grid_dims] = (coords + 0.5) / self.bins_per_dim
        return center

    def cell_radius(self, cell_id: int) -> float:
        return 0.5 / self.bins_per_dim

    def sample_in_cell(
        self, cell_id: int, size: int, rng: RngLike = None
    ) -> np.ndarray:
        if size <= 0:
            raise ConfigurationError("size must be positive")
        generator = ensure_rng(rng)
        coords = self._cell_coords(cell_id)
        lower = coords / self.bins_per_dim
        samples = generator.random((size, self.num_features))
        samples[:, : self.grid_dims] = (
            lower + samples[:, : self.grid_dims] / self.bins_per_dim
        )
        return samples


class AnchorPartition(Partition):
    """Cells induced by anchor points (Voronoi assignment, L∞ ball sampling)."""

    def __init__(self, anchors: np.ndarray, radius: float = 0.1) -> None:
        anchors = np.atleast_2d(np.asarray(anchors, dtype=float))
        if anchors.size == 0:
            raise ConfigurationError("AnchorPartition requires at least one anchor")
        if radius <= 0:
            raise ConfigurationError("radius must be positive")
        self.anchors = anchors
        self.radius = radius
        self._tree = cKDTree(anchors) if cKDTree is not None else None

    @property
    def num_cells(self) -> int:
        return len(self.anchors)

    @property
    def num_features(self) -> int:
        return self.anchors.shape[1]

    def assign(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        if self._tree is not None:
            _, indices = self._tree.query(x)
            return np.asarray(indices, dtype=int)
        distances = np.linalg.norm(x[:, None, :] - self.anchors[None, :, :], axis=2)
        return distances.argmin(axis=1)

    def cell_center(self, cell_id: int) -> np.ndarray:
        if not 0 <= cell_id < self.num_cells:
            raise ConfigurationError(f"cell_id {cell_id} out of range")
        return self.anchors[cell_id].copy()

    def cell_radius(self, cell_id: int) -> float:
        if not 0 <= cell_id < self.num_cells:
            raise ConfigurationError(f"cell_id {cell_id} out of range")
        return self.radius

    def sample_in_cell(
        self, cell_id: int, size: int, rng: RngLike = None
    ) -> np.ndarray:
        if size <= 0:
            raise ConfigurationError("size must be positive")
        generator = ensure_rng(rng)
        center = self.cell_center(cell_id)
        offsets = generator.uniform(-self.radius, self.radius, size=(size, self.num_features))
        return clip01(center + offsets)


def build_partition_for_dataset(
    x: np.ndarray,
    scheme: str = "auto",
    bins_per_dim: int = 10,
    radius: float = 0.1,
    max_anchors: int = 500,
    rng: RngLike = None,
) -> Partition:
    """Choose and build a sensible partition for a dataset.

    ``"grid"`` builds a :class:`GridPartition`, ``"anchor"`` an
    :class:`AnchorPartition` over (a subsample of) the dataset rows, and
    ``"auto"`` picks grid for up to three features and anchors otherwise.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    num_features = x.shape[1]
    if scheme == "auto":
        scheme = "grid" if num_features <= 3 else "anchor"
    if scheme == "grid":
        return GridPartition(num_features, bins_per_dim=bins_per_dim)
    if scheme == "anchor":
        generator = ensure_rng(rng)
        if len(x) > max_anchors:
            idx = generator.choice(len(x), size=max_anchors, replace=False)
            anchors = x[idx]
        else:
            anchors = x
        return AnchorPartition(anchors, radius=radius)
    raise ConfigurationError(
        f"unknown partition scheme {scheme!r}; expected 'grid', 'anchor' or 'auto'"
    )


__all__ = [
    "Partition",
    "GridPartition",
    "AnchorPartition",
    "build_partition_for_dataset",
]
