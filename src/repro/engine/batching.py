"""Batched model-query engine: chunking, memoization and query accounting.

Every hot subsystem of the reproduction (the operational fuzzer, the
black-box attacks, the cell-robustness evaluator) ultimately spends its
budget on small model queries — ``predict`` / ``predict_proba`` /
``loss_input_gradient`` calls on a handful of rows.  Issued one by one these
calls waste the NumPy substrate: each forward pass pays full Python and BLAS
dispatch overhead for a single row.  :class:`BatchedQueryEngine` is the shared
funnel that turns many small logical queries into few large physical ones:

* callers hand over whole matrices of candidates; the engine slices them into
  ``batch_size`` chunks so memory stays bounded while BLAS runs at full tilt;
* an optional memoizing cache (hash-of-row → probabilities) answers repeated
  rows without touching the model — results are exact because the key is the
  raw row bytes, not a lossy digest;
* :class:`QueryStats` counts *logical* rows separately from *physical* model
  invocations, which is exactly the evidence needed to verify the "≥10×
  fewer model calls at equal query budgets" property of the batched paths.

The engine implements the :class:`repro.types.Classifier` protocol, so it can
be dropped in front of any model and passed to code that expects a bare
classifier (mutation operators, attacks, evaluators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from .. import telemetry
from ..exceptions import ConfigurationError
from ..naturalness.metrics import NaturalnessScorer
from ..telemetry import clock
from ..types import Classifier

#: Default number of rows per physical model call.  Large enough that BLAS
#: dominates dispatch overhead, small enough that intermediate activations of
#: the NumPy networks stay comfortably in cache/memory.
DEFAULT_BATCH_SIZE = 4096


@dataclass
class QueryStats:
    """Counters separating logical query traffic from physical model calls.

    Attributes
    ----------
    rows_queried:
        Logical rows sent through ``predict`` / ``predict_proba``.
    model_calls:
        Physical model invocations (each serving up to ``batch_size`` rows).
    cache_hits:
        Rows answered from the memoizing cache instead of the model.
    gradient_rows, gradient_calls:
        Same split for ``loss_input_gradient`` traffic.
    naturalness_rows, naturalness_calls:
        Same split for naturalness scoring traffic.
    shard_retries, worker_respawns, degraded_shards:
        Fault counters from supervised sharded execution: shards re-planned
        after a worker died or hung, worker slots respawned, and shards
        served by the in-process degradation fallback.  All zero on a clean
        run; they describe *how* results were obtained, never *what* was
        computed — see :data:`FAULT_COUNTER_FIELDS`.
    cache_corrupt_records:
        Corrupt records the persistent query cache skipped (CRC mismatch).
    """

    rows_queried: int = 0
    model_calls: int = 0
    cache_hits: int = 0
    gradient_rows: int = 0
    gradient_calls: int = 0
    naturalness_rows: int = 0
    naturalness_calls: int = 0
    shard_retries: int = 0
    worker_respawns: int = 0
    degraded_shards: int = 0
    cache_corrupt_records: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rows_queried": self.rows_queried,
            "model_calls": self.model_calls,
            "cache_hits": self.cache_hits,
            "gradient_rows": self.gradient_rows,
            "gradient_calls": self.gradient_calls,
            "naturalness_rows": self.naturalness_rows,
            "naturalness_calls": self.naturalness_calls,
            "shard_retries": self.shard_retries,
            "worker_respawns": self.worker_respawns,
            "degraded_shards": self.degraded_shards,
            "cache_corrupt_records": self.cache_corrupt_records,
        }

    def to_dict(self) -> Dict[str, int]:
        """Serializable counter snapshot (the registry's stats.json format)."""
        return self.as_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QueryStats":
        """Rebuild counters from :meth:`to_dict` output.

        Unknown keys are rejected so a stats file written by a future (or
        mangled) format fails loudly instead of dropping counters silently.
        """
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown QueryStats fields: {sorted(unknown)}"
            )
        return cls(**{key: int(value) for key, value in data.items()})

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Add another set of counters (e.g. one shard's) into this one.

        The merge itself is plain integer addition; callers that merge from
        concurrently completing shards must serialise calls (the sharded
        engine holds a lock around every merge).
        """
        self.rows_queried += other.rows_queried
        self.model_calls += other.model_calls
        self.cache_hits += other.cache_hits
        self.gradient_rows += other.gradient_rows
        self.gradient_calls += other.gradient_calls
        self.naturalness_rows += other.naturalness_rows
        self.naturalness_calls += other.naturalness_calls
        self.shard_retries += other.shard_retries
        self.worker_respawns += other.worker_respawns
        self.degraded_shards += other.degraded_shards
        self.cache_corrupt_records += other.cache_corrupt_records
        return self


#: The :class:`QueryStats` fields that describe supervision events rather
#: than query traffic.  Equivalence suites compare stats *modulo* these:
#: a campaign that survived worker deaths matches the clean run on every
#: other counter.
FAULT_COUNTER_FIELDS = (
    "shard_retries",
    "worker_respawns",
    "degraded_shards",
    "cache_corrupt_records",
)


@runtime_checkable
class CacheBackend(Protocol):
    """Protocol a query-cache implementation must satisfy.

    The engine only ever performs per-row gets and puts plus bulk clears, so
    any object with these four methods can serve as the memoization layer —
    the in-memory :class:`QueryCache` below, the durable
    :class:`repro.store.PersistentQueryCache`, or a custom distributed
    backend.  Implementations must be *exact*: a hit returns precisely the
    array that was stored (results stay bit-identical with any backend, only
    the number of physical model calls changes).
    """

    def get(self, row: np.ndarray) -> Optional[np.ndarray]:
        """Return the cached value for ``row`` or ``None`` on a miss."""
        ...

    def put(self, row: np.ndarray, value: np.ndarray) -> None:
        """Store ``value`` under ``row``."""
        ...

    def clear(self) -> None:
        """Drop every entry."""
        ...

    def __len__(self) -> int:
        """Number of stored entries."""
        ...


def row_cache_key(row: np.ndarray) -> bytes:
    """The exact-content cache key of one input row.

    Raw ``tobytes()`` alone is ambiguous: two rows with identical bytes but
    different dtype or width (``float32`` vs ``float64``, a (4,) row vs a
    (2, 2) block) would collide and serve each other's probabilities.  The
    key therefore tags the payload with dtype and shape.  Shared by
    :class:`QueryCache` and :class:`repro.store.PersistentQueryCache` so the
    two cache layers can never disagree on row identity.
    """
    row = np.ascontiguousarray(row)
    header = f"{row.dtype.str}:{row.shape}:".encode("ascii")
    return header + row.tobytes()


class QueryCache:
    """Exact memoizing cache mapping input rows to class probabilities.

    Keys are the dtype/shape-tagged bytes of the row
    (:func:`row_cache_key`), so a hit returns exactly the probabilities the
    model produced the first time — no approximation is introduced anywhere.
    Eviction is insertion-ordered (FIFO), which is cheap and good enough for
    the fuzzing workloads where repeats cluster in time (re-sampled seeds,
    re-visited currents).
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise ConfigurationError("max_entries must be positive")
        self.max_entries = max_entries
        self._store: Dict[bytes, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, row: np.ndarray) -> Optional[np.ndarray]:
        return self._store.get(row_cache_key(row))

    def put(self, row: np.ndarray, value: np.ndarray) -> None:
        store = self._store
        key = row_cache_key(row)
        # evict only on genuine insert: overwriting an existing key must not
        # drop an unrelated (possibly hot) entry
        if key not in store and len(store) >= self.max_entries:
            store.pop(next(iter(store)))
        store[key] = value

    def clear(self) -> None:
        self._store.clear()


def _iter_chunks(n: int, batch_size: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` slices covering ``range(n)`` in chunks."""
    for start in range(0, n, batch_size):
        yield start, min(start + batch_size, n)


class BatchedQueryEngine:
    """Chunked, memoizing front-end to a classifier (and naturalness scorer).

    Parameters
    ----------
    model:
        The model under test.
    naturalness:
        Optional fitted scorer; enables :meth:`score_naturalness`.
    batch_size:
        Maximum rows per physical call.  Bigger batches amortise dispatch
        overhead; the default (4096) is a good laptop setting — see the
        engine section of the README for tuning guidance.
    cache:
        ``True`` (default in-memory cache), ``False``/``None`` (no cache),
        or a pre-built :class:`CacheBackend` instance — e.g. a
        :class:`QueryCache` shared between engines, or a
        :class:`repro.store.PersistentQueryCache` whose entries survive the
        process and can be shared across hosts via a common directory.
    cache_max_entries:
        Capacity of the default cache when ``cache=True``.
    """

    def __init__(
        self,
        model: Classifier,
        naturalness: Optional[NaturalnessScorer] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache: object = False,
        cache_max_entries: int = 65536,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.model = model
        self.naturalness = naturalness
        self.batch_size = int(batch_size)
        if isinstance(cache, bool) or cache is None:
            self.cache: Optional[CacheBackend] = (
                QueryCache(max_entries=cache_max_entries) if cache else None
            )
        elif isinstance(cache, CacheBackend):
            self.cache = cache
        else:
            raise ConfigurationError(
                "cache must be a bool, None or a CacheBackend "
                f"(get/put/clear/__len__), got {type(cache).__name__}"
            )
        self.stats = QueryStats()
        # a durable cache may have skipped CRC-corrupt records while loading
        # its index; surface that in the engine counters so it reaches the
        # campaign's stats.json
        corrupt = int(getattr(self.cache, "corrupt_records", 0) or 0)
        if corrupt:
            self.stats.merge(QueryStats(cache_corrupt_records=corrupt))

    # ------------------------------------------------------------------ #
    # Classifier protocol (chunked + cached)
    # ------------------------------------------------------------------ #
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities for every row, served in chunks via the cache."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = len(x)
        self._absorb(QueryStats(rows_queried=n))
        if n == 0:
            return np.zeros((0, 0))

        telemetry.count("engine.rows", n)
        if self.cache is None:
            return self._predict_proba_chunked(x)

        cached = [self.cache.get(row) for row in x]
        miss = np.flatnonzero([value is None for value in cached])
        self._absorb(QueryStats(cache_hits=n - len(miss)))
        telemetry.count("engine.cache_hits", n - len(miss))
        telemetry.count("engine.cache_misses", len(miss))
        if len(miss) == 0:
            return np.stack(cached)
        fresh = self._predict_proba_chunked(x[miss])
        for row_index, probs in zip(miss, fresh):
            self.cache.put(x[row_index], probs)
            cached[row_index] = probs
        return np.stack(cached)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels (argmax of :meth:`predict_proba`, so cache-aware)."""
        probs = self.predict_proba(x)
        return probs.argmax(axis=1)

    def loss_input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Chunked input gradients.

        Note the model's gradient is of the *mean* batch loss, so rows come
        back scaled by ``1/chunk``; every consumer in this codebase takes
        ``np.sign`` of the result, for which the scaling is irrelevant, and
        chunking therefore preserves behaviour exactly.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_1d(np.asarray(y, dtype=int))
        n = len(x)
        self._absorb(QueryStats(gradient_rows=n))
        if n == 0:
            return np.zeros_like(x)
        telemetry.count("engine.gradient_rows", n)
        pieces = []
        for start, stop in _iter_chunks(n, self.batch_size):
            pieces.append(self.model.loss_input_gradient(x[start:stop], y[start:stop]))
            self._absorb(QueryStats(gradient_calls=1))
            telemetry.count("engine.gradient_calls")
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)

    # ------------------------------------------------------------------ #
    # naturalness scoring
    # ------------------------------------------------------------------ #
    def score_naturalness(self, x: np.ndarray) -> np.ndarray:
        """Chunked naturalness scores for every row."""
        if self.naturalness is None:
            raise ConfigurationError("engine was built without a naturalness scorer")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = len(x)
        self._absorb(QueryStats(naturalness_rows=n))
        if n == 0:
            return np.zeros(0)
        telemetry.count("engine.naturalness_rows", n)
        pieces = []
        for start, stop in _iter_chunks(n, self.batch_size):
            pieces.append(np.asarray(self.naturalness.score(x[start:stop]), dtype=float))
            self._absorb(QueryStats(naturalness_calls=1))
            telemetry.count("engine.naturalness_calls")
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release execution resources.

        A no-op for the in-process engine; the sharded backend overrides it
        to shut down its worker pool.  Stats (and the cache) stay readable
        after closing.
        """

    def __enter__(self) -> "BatchedQueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _absorb(self, delta: QueryStats) -> None:
        """Merge a stats delta into the counters.

        The single funnel for every counter mutation: the sharded backend
        overrides it with a locked variant so merges stay race-free under
        concurrent shard completion.
        """
        self.stats.merge(delta)

    def _predict_proba_chunked(self, x: np.ndarray) -> np.ndarray:
        pieces = []
        # one enabled check per logical call, not per chunk: when telemetry
        # is off the hot loop pays nothing, not even a clock read
        timed = telemetry.enabled()
        for start, stop in _iter_chunks(len(x), self.batch_size):
            started = clock.monotonic() if timed else 0.0
            pieces.append(np.asarray(self.model.predict_proba(x[start:stop]), dtype=float))
            self._absorb(QueryStats(model_calls=1))
            if timed:
                telemetry.observe("engine.chunk_latency_s", clock.monotonic() - started)
                telemetry.count("engine.model_calls")
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)


def as_query_engine(
    model: Classifier,
    naturalness: Optional[NaturalnessScorer] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    cache: object = False,
    cache_max_entries: int = 65536,
) -> BatchedQueryEngine:
    """Wrap ``model`` in a :class:`BatchedQueryEngine` unless it already is one.

    An existing engine is returned unchanged (its configuration wins) so
    nested subsystems share one set of counters and one cache.
    """
    if isinstance(model, BatchedQueryEngine):
        if naturalness is not None and model.naturalness is None:
            model.naturalness = naturalness
        return model
    return BatchedQueryEngine(
        model,
        naturalness=naturalness,
        batch_size=batch_size,
        cache=cache,
        cache_max_entries=cache_max_entries,
    )


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "FAULT_COUNTER_FIELDS",
    "QueryStats",
    "CacheBackend",
    "QueryCache",
    "row_cache_key",
    "BatchedQueryEngine",
    "as_query_engine",
]
