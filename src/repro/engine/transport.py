"""Shard transports: how row blocks travel between coordinator and workers.

The PR 3 sharded engine moved *computation* off the coordinator but kept the
payloads on the pickle wire: every shard pickled its float64 row block into
the pool, and every result pickled its way back.  ``BENCH_fuzzer.json``
showed what that costs — multi-worker campaigns *lost* to the in-process
engine (~0.6x at 4 workers) because per-chunk serialization dominated the
compute it was supposed to parallelise.  This module is the fix: the shard
*metadata* (index, slot, shapes, dtypes — a few hundred bytes) still rides
the pool, but the row blocks themselves move through preallocated
:mod:`multiprocessing.shared_memory` ring buffers, written once by the
coordinator and read zero-copy by the worker (and vice versa for results).

Three transports exist, selected by ``ExecutionPolicy.transport``:

``"pickle"``
    The PR 3 wire format: blocks pickled per task.  No shared state, works
    everywhere, fastest for tiny blocks (the serialization cost is linear in
    block size, the shared-memory bookkeeping is not free).
``"shm"``
    Ring-buffer transport.  Each worker slot owns a request ring and a
    response ring, each a preallocated shared-memory segment divided into
    fixed-size slots.  The coordinator writes a shard's block into a free
    request slot and submits only a tiny :class:`ShardEnvelope`; the worker
    maps the segment once (reattaching lazily after a respawn), computes on
    a zero-copy view, writes the result into the paired response slot, and
    returns just ``(shape, dtype)``.  Slots are reused ring-style across
    dispatches; a result too large for its slot falls back to the pickle
    wire for that one task (bit-identical either way) and the rings grow at
    the next dispatch.
``"threads"``
    In-process thread pool: per-thread pickled model replicas (so layer
    caches never race), zero IPC of any kind.  Pays off for GIL-releasing
    BLAS models on small campaigns where process transport overhead — not
    compute — dominates.

``"auto"`` (the policy default) picks per logical call: blocks of at least
:data:`SHM_MIN_BLOCK_BYTES` go zero-copy, smaller ones stay on the pickle
wire.  Thread workers are never chosen implicitly — they change the failure
domain (a hung thread cannot be SIGKILLed), so they are an explicit opt-in.

Transport never changes results: every transport moves the *same* chunk
boundaries carrying the same bytes, so the bit-identity contract of
:mod:`repro.engine.parallel` holds for all of them — the transport matrix in
``tests/test_parallel_engine.py`` pins it.

Torn reads are impossible by construction rather than by locking: a request
slot is written before its task is submitted (the submission is the
happens-before edge) and never rewritten while that task may still read it
(slots are freed only when the task's future was harvested, or when its
worker was confirmed dead and its process killed); a response slot is
written by exactly one live task and read by the coordinator only after the
future completed.  The race-hammer and property tests pin slot reuse.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError

#: Transport names accepted by ``ExecutionPolicy.transport`` (and the
#: engine's ``transport`` knob).  ``"auto"`` resolves per logical call.
TRANSPORTS = ("auto", "pickle", "shm", "threads")

#: ``auto`` threshold: request blocks at least this large (64 KiB) move
#: through shared memory; below it the pickle wire is cheaper than the
#: slot bookkeeping.
SHM_MIN_BLOCK_BYTES = 1 << 16

#: Spare slots per worker beyond its planned shards — headroom for shards
#: re-planned onto survivors after a worker death.  When even the headroom
#: is exhausted mid-storm, staging falls back to the pickle wire per task.
SLOT_HEADROOM = 2

#: Slot-internal alignment of packed arrays (cache-line sized).
_ALIGN = 64


def validate_transport(transport: str, exception: type = ConfigurationError) -> None:
    """Reject unknown transport names with the accepted set."""
    if transport not in TRANSPORTS:
        raise exception(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )


def resolve_auto_transport(block_bytes: int) -> str:
    """The ``auto`` heuristic: zero-copy for large blocks, pickle for small."""
    return "shm" if block_bytes >= SHM_MIN_BLOCK_BYTES else "pickle"


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def request_block_bytes(arrays: Sequence[np.ndarray], rows: int) -> int:
    """Bytes one ``rows``-row shard of ``arrays`` occupies when packed."""
    total = 0
    for array in arrays:
        per_row = array.itemsize * int(np.prod(array.shape[1:], dtype=np.int64))
        total += _aligned(per_row * rows)
    return total


@dataclass(frozen=True)
class ShardEnvelope:
    """The tiny metadata that replaces a pickled row block on the pool wire.

    Attributes
    ----------
    request_name, request_entries:
        Segment name and packed-array table (``(offset, shape, dtype)`` per
        array) of the staged request block.
    response_name, response_offset, response_capacity:
        Where the worker must place the result (and how much room it has —
        an oversized result returns inline over the pickle wire instead).
    """

    request_name: str
    request_entries: Tuple[Tuple[int, Tuple[int, ...], str], ...]
    response_name: str
    response_offset: int
    response_capacity: int


class ShmRing:
    """One worker's one-direction ring: a shared segment of fixed-size slots.

    The coordinator owns the segment (creates, grows, unlinks); workers only
    ever attach and read/write inside a slot handed to them by envelope.
    ``ensure`` is grow-only and must run with no shard in flight (the engine
    calls it between dispatches), so reallocating can never tear a block out
    from under a reader.
    """

    def __init__(self) -> None:
        self.shm: Optional[shared_memory.SharedMemory] = None
        self.slots = 0
        self.slot_bytes = 0

    @property
    def name(self) -> str:
        if self.shm is None:  # pragma: no cover - guarded by callers
            raise ConfigurationError("ring has no segment (ensure() not called)")
        return self.shm.name

    def ensure(self, slots: int, slot_bytes: int) -> None:
        """Guarantee capacity for ``slots`` slots of ``slot_bytes`` each.

        Growing replaces the segment (old one unlinked) — only legal between
        dispatches, when no task holds a view into it.
        """
        if slots <= 0 or slot_bytes <= 0:
            raise ConfigurationError("ring capacity must be positive")
        slot_bytes = _aligned(slot_bytes)
        if self.shm is not None and self.slots >= slots and self.slot_bytes >= slot_bytes:
            return
        slots = max(slots, self.slots)
        slot_bytes = max(slot_bytes, self.slot_bytes)
        self.release()
        # lifecycle is owned by release() (paired close+unlink, called from
        # the engine's close/degrade paths and its weakref finalizer)
        self.shm = shared_memory.SharedMemory(  # repro: allow[shm-lifecycle]
            create=True, size=slots * slot_bytes
        )
        self.slots = slots
        self.slot_bytes = slot_bytes

    def write(
        self, slot: int, arrays: Sequence[np.ndarray]
    ) -> Tuple[Tuple[int, Tuple[int, ...], str], ...]:
        """Pack ``arrays`` into ``slot``; returns the envelope entry table."""
        base = slot * self.slot_bytes
        offset = base
        entries: List[Tuple[int, Tuple[int, ...], str]] = []
        for array in arrays:
            array = np.ascontiguousarray(array)
            if offset + array.nbytes > base + self.slot_bytes:
                raise ConfigurationError(
                    f"shard block ({array.nbytes} B at offset {offset - base}) "
                    f"does not fit a {self.slot_bytes} B ring slot"
                )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=self.shm.buf, offset=offset)
            view[...] = array
            entries.append((offset, tuple(array.shape), array.dtype.str))
            offset += _aligned(array.nbytes)
        return tuple(entries)

    def read_copy(self, offset: int, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
        """Copy one packed array out of the segment (the harvest-side read)."""
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf, offset=offset)
        return np.array(view, copy=True)

    def release(self) -> None:
        """Unlink and forget the segment (idempotent)."""
        if self.shm is not None:
            try:
                self.shm.close()
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self.shm = None
        self.slots = 0
        self.slot_bytes = 0


class RingPair:
    """Request + response rings of one worker slot (equal slot counts)."""

    def __init__(self) -> None:
        self.request = ShmRing()
        self.response = ShmRing()

    def ensure(self, slots: int, request_bytes: int, response_bytes: int) -> None:
        self.request.ensure(slots, request_bytes)
        self.response.ensure(slots, response_bytes)

    def release(self) -> None:
        self.request.release()
        self.response.release()


def release_rings(rings: Sequence[RingPair]) -> None:
    """Unlink every ring segment (engine close/degrade + finalizer hook)."""
    for pair in rings:
        pair.release()


class ShmStaging:
    """Per-dispatch slot ledger over the engine's preallocated rings.

    Stateful only for one logical call: which shard occupies which slot on
    which worker.  A slot is freed when its shard's result was decoded
    (copied out) or when its worker was confirmed dead — the two events
    after which no live process can touch the block.  ``stage`` returning
    ``None`` (free list empty under a pathological retry storm) tells the
    engine to fall back to the pickle wire for that one task.
    """

    def __init__(self, rings: Sequence[RingPair]) -> None:
        self.rings = list(rings)
        self._free: List[List[int]] = [
            list(range(pair.request.slots)) for pair in self.rings
        ]
        #: shard index -> (worker, slot) of the currently staged attempt
        self._staged: Dict[int, Tuple[int, int]] = {}
        #: largest response that failed to fit its slot (sizing hint for the
        #: engine's next dispatch); 0 when everything fit
        self.response_bytes_needed = 0

    def stage(
        self, worker: int, shard_index: int, arrays: Sequence[np.ndarray]
    ) -> Optional[ShardEnvelope]:
        """Write one shard's block into a free slot; ``None`` when exhausted."""
        free = self._free[worker]
        if not free:
            return None
        pair = self.rings[worker]
        slot = free.pop()
        entries = pair.request.write(slot, arrays)
        self._staged[shard_index] = (worker, slot)
        return ShardEnvelope(
            request_name=pair.request.name,
            request_entries=entries,
            response_name=pair.response.name,
            response_offset=slot * pair.response.slot_bytes,
            response_capacity=pair.response.slot_bytes,
        )

    def _release_slot(self, shard_index: int) -> None:
        placed = self._staged.pop(shard_index, None)
        if placed is not None:
            worker, slot = placed
            self._free[worker].append(slot)

    def worker_down(self, worker: int) -> None:
        """Free every slot staged on a worker whose process was killed.

        Safe because the engine SIGKILLs the slot's process before this runs:
        no reader or writer of those blocks survives.
        """
        for shard_index, (owner, _slot) in list(self._staged.items()):
            if owner == worker:
                self._release_slot(shard_index)

    def decode(self, shard, payload):
        """Materialise one harvested result (the supervisor's decode hook).

        ``payload`` is whatever the task returned: a plain ndarray (pickle
        fallback task), ``("inline", values)`` (a staged task whose result
        did not fit its response slot) or ``("shm", (offset, shape, dtype))``
        (the zero-copy path — copied out of the response ring here, after
        which the slot is free for reuse).
        """
        if isinstance(payload, np.ndarray):
            self._release_slot(shard.index)
            return payload
        tag, body = payload
        if tag == "inline":
            self.response_bytes_needed = max(
                self.response_bytes_needed, int(np.asarray(body).nbytes)
            )
            self._release_slot(shard.index)
            return body
        offset, shape, dtype = body
        placed = self._staged.get(shard.index)
        if placed is None:  # pragma: no cover - defensive: decode of unstaged shard
            raise ConfigurationError(f"shard {shard.index} has no staged slot")
        worker, _slot = placed
        values = self.rings[worker].response.read_copy(offset, shape, dtype)
        self._release_slot(shard.index)
        return values


# --------------------------------------------------------------------------- #
# worker-process side
# --------------------------------------------------------------------------- #
#: Worker-side attachment cache, name -> segment.  Each worker touches at
#: most two live segments (its request and response rings), so the cache is
#: kept small: attaching a new name evicts the least recently used handles
#: beyond a small slack (segments replaced when the coordinator grew a ring).
_WORKER_ATTACHMENT_SLACK = 4
_WORKER_ATTACHMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _close_worker_attachments() -> None:
    for segment in _WORKER_ATTACHMENTS.values():
        try:
            segment.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass
    _WORKER_ATTACHMENTS.clear()


atexit.register(_close_worker_attachments)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach (or reuse) a coordinator-owned segment by name.

    Workers never unlink — the coordinator owns segment lifecycle; a worker
    only maps and unmaps.  A respawned worker process starts with an empty
    cache and reattaches here on its first staged shard.
    """
    segment = _WORKER_ATTACHMENTS.pop(name, None)
    if segment is None:
        # close-only lifecycle: unlink belongs to the coordinator, close of
        # this attachment happens on eviction below and atexit
        segment = shared_memory.SharedMemory(name=name)  # repro: allow[shm-lifecycle]
    _WORKER_ATTACHMENTS[name] = segment  # reinsert = move to MRU position
    while len(_WORKER_ATTACHMENTS) > _WORKER_ATTACHMENT_SLACK:
        _stale_name = next(iter(_WORKER_ATTACHMENTS))
        _WORKER_ATTACHMENTS.pop(_stale_name).close()
    return segment


def read_request(envelope: ShardEnvelope) -> Tuple[np.ndarray, ...]:
    """Zero-copy views of a staged request block (worker side)."""
    segment = attach_segment(envelope.request_name)
    return tuple(
        np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        for offset, shape, dtype in envelope.request_entries
    )


def write_response(envelope: ShardEnvelope, values: np.ndarray):
    """Place a result into the response slot; inline payload when oversized."""
    values = np.ascontiguousarray(values)
    if values.nbytes > envelope.response_capacity:
        return ("inline", values)
    segment = attach_segment(envelope.response_name)
    view = np.ndarray(
        values.shape, dtype=values.dtype, buffer=segment.buf,
        offset=envelope.response_offset,
    )
    view[...] = values
    return ("shm", (envelope.response_offset, tuple(values.shape), values.dtype.str))


__all__ = [
    "TRANSPORTS",
    "SHM_MIN_BLOCK_BYTES",
    "SLOT_HEADROOM",
    "validate_transport",
    "resolve_auto_transport",
    "request_block_bytes",
    "ShardEnvelope",
    "ShmRing",
    "RingPair",
    "release_rings",
    "ShmStaging",
    "attach_segment",
    "read_request",
    "write_response",
]
