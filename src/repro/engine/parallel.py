"""Sharded multi-worker dispatch behind the batched query engine.

:class:`ShardedQueryEngine` is the scaling step the ROADMAP carved out after
the batching chassis (PR 2): instead of servicing every physical chunk in the
coordinator process, the chunks of one logical ``predict`` /
``predict_proba`` / ``loss_input_gradient`` / naturalness call are *sharded*
across a pool of worker processes, each holding a pickled replica of the
model (and naturalness scorer) under test.

Determinism is the design constraint — a parallel campaign that silently
changes results is worthless for a reliability paper — and it is achieved by
construction rather than by tolerance thresholds:

* **Identical shard boundaries.**  Shards are exactly the ``batch_size``
  chunks the in-process :class:`BatchedQueryEngine` would have produced, so
  every worker computes ``model.predict_proba`` on bit-identical matrices.
* **Deterministic shard→worker assignment.**  Shard ``i`` always runs on
  worker ``i % num_workers`` (each worker is its own single-process
  executor), and results are concatenated in shard order regardless of
  completion order.
* **Exact replicas.**  The model and scorer are snapshot once with
  :mod:`pickle` when the pool starts; NumPy arrays round-trip bit-exactly,
  so replica outputs equal coordinator outputs.

Together these make the sharded path *bit-identical* to the batched path
(and therefore to the sequential reference campaigns) — the scenario-matrix
suite in ``tests/test_parallel_engine.py`` pins this.

Bookkeeping is race-free under concurrent shard completion: every worker
returns a per-shard :class:`QueryStats` delta that is merged into the
engine's counters through a single locked merge point (:meth:`_absorb`),
and the memoizing cache lives in the coordinator behind the same lock — a
row computed by one worker is answered from the cache for every other
worker, so repeated rows cost one physical call across the whole pool.
Cache lookups happen *before* dispatch, so rows served over any transport
(pickle, shared memory, threads) hit the same coordinator cache.

**Transports.**  *Where* a shard runs (the worker pool) is independent of
*how* its row block gets there.  Three transports are available via the
``transport`` knob (see :mod:`repro.engine.transport`): ``"pickle"`` (the
historical per-task pickling), ``"shm"`` (preallocated
:mod:`multiprocessing.shared_memory` ring buffers — the coordinator writes
each block once, workers read zero-copy, and only tiny envelopes ride the
pool, which is what turned the multi-worker slowdown into a speedup), and
``"threads"`` (an in-process thread pool with per-thread replicas for
GIL-releasing BLAS models — no IPC at all).  ``"auto"`` (default) picks
pickle vs shm per logical call by block size.  Every transport moves the
same chunk boundaries carrying the same bytes, so results stay
bit-identical — the transport matrix in ``tests/test_parallel_engine.py``
is the acceptance gate.

Sharding pays off when the per-chunk compute (large models, KDE/autoencoder
naturalness, wide matrices) dominates the transport round-trip and the
machine has idle cores; on a single-core host or for tiny per-row work the
in-process engine is faster.  ``num_workers=1`` therefore short-circuits to
in-process execution (the coordinator is the only worker) while keeping the
sharded accounting path, which makes it the honest baseline for the scaling
benchmark.

Pool dispatch runs under a :class:`repro.faults.ShardSupervisor`: every
worker stamps a shared heartbeat as shards arrive, dead or hung workers are
detected against the :class:`repro.faults.RetryPolicy` deadline, their lost
shards are re-planned deterministically onto survivors, and the slot is
respawned within a bounded budget.  Supervision composes with the
shared-memory transport: a respawned worker process simply reattaches to
its segments by name on its next staged shard, slots staged on a killed
worker are reclaimed the moment its process is buried, and degradation to
in-process execution unlinks every segment (nothing to leak once the pool
is gone).  When the pool is exhausted the engine degrades to in-process
execution of the remaining chunks — same boundaries, same order,
bit-identical results.  A seeded :class:`repro.faults.FaultPlan` can be
installed to inject worker kills and shard delays reproducibly (the chaos
suite and ``benchmarks/bench_faults.py`` drive exactly this path).
"""

from __future__ import annotations

import pickle
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import multiprocessing

import numpy as np

from .. import telemetry
from ..exceptions import ConfigurationError
from ..faults.heartbeat import WorkerHeartbeat
from ..faults.injection import FaultPlan, WorkerRuntime
from ..faults.retry import RetryPolicy
from ..faults.supervision import ShardSupervisor
from ..naturalness.metrics import NaturalnessScorer
from ..telemetry import clock
from ..types import Classifier
from .batching import (
    DEFAULT_BATCH_SIZE,
    BatchedQueryEngine,
    QueryStats,
    _iter_chunks,
    as_query_engine,
)
from .transport import (
    SLOT_HEADROOM,
    RingPair,
    ShmStaging,
    read_request,
    release_rings,
    request_block_bytes,
    resolve_auto_transport,
    validate_transport,
    write_response,
)

#: Engine backends accepted wherever an ``engine`` knob is threaded through
#: (attacks, reliability evaluators, scenarios).  The fuzzer's ``execution``
#: knob additionally distinguishes ``"population"`` vs ``"sequential"``
#: control flow; ``"sharded"`` there selects this backend.
ENGINE_BACKENDS = ("batched", "sharded")


# --------------------------------------------------------------------------- #
# shard planning
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Shard:
    """One physical chunk of a logical call, pinned to a worker.

    Attributes
    ----------
    index:
        Position of the shard in the logical call (concatenation order).
    start, stop:
        Row slice of the logical matrix this shard covers.
    worker:
        Worker the shard is assigned to (``index % num_workers``).
    """

    index: int
    start: int
    stop: int
    worker: int


def plan_shards(n: int, batch_size: int, num_workers: int) -> List[Shard]:
    """Plan the shards of an ``n``-row call: chunk boundaries + assignment.

    The boundaries are exactly the chunks :class:`BatchedQueryEngine` would
    process in-process (``batch_size`` rows each, last one ragged), and the
    assignment is the deterministic round-robin ``index % num_workers`` —
    two calls with the same arguments always produce the same plan.
    """
    if n < 0:
        raise ConfigurationError("row count must be non-negative")
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive")
    if num_workers <= 0:
        raise ConfigurationError("num_workers must be positive")
    return [
        Shard(index=i, start=start, stop=stop, worker=i % num_workers)
        for i, (start, stop) in enumerate(_iter_chunks(n, batch_size))
    ]


# --------------------------------------------------------------------------- #
# shard computations (shared by workers and the in-process fallback)
# --------------------------------------------------------------------------- #
def _shard_predict_proba(
    model: Classifier, chunk: np.ndarray
) -> Tuple[np.ndarray, QueryStats]:
    return np.asarray(model.predict_proba(chunk), dtype=float), QueryStats(model_calls=1)


def _shard_gradient(
    model: Classifier, x: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, QueryStats]:
    return (
        np.asarray(model.loss_input_gradient(x, y), dtype=float),
        QueryStats(gradient_calls=1),
    )


def _shard_naturalness(
    naturalness: NaturalnessScorer, chunk: np.ndarray
) -> Tuple[np.ndarray, QueryStats]:
    return np.asarray(naturalness.score(chunk), dtype=float), QueryStats(
        naturalness_calls=1
    )


def _replica_subject(replica, replica_slot: int):
    """The model (slot 0) or naturalness scorer (slot 1) of a replica."""
    subject = replica[replica_slot]
    if subject is None:
        raise ConfigurationError("worker replica has no naturalness scorer")
    return subject


#: Call kinds: kind -> (shard computation, replica slot).  The shard
#: computation is shared verbatim by every execution path — process workers
#: (pickle and shm transports), thread workers and the in-process fallback —
#: which is what keeps transports bit-identical by construction.
_SHARD_KINDS = {
    "proba": (_shard_predict_proba, 0),
    "grad": (_shard_gradient, 0),
    "nat": (_shard_naturalness, 1),
}


#: Per-worker replica of ``(model, naturalness)``, installed by the pool
#: initializer.  Module-level so task functions pickle by reference.
_REPLICA: Optional[Tuple[Classifier, Optional[NaturalnessScorer]]] = None

#: Per-worker heartbeat/fault-injection hooks (see :mod:`repro.faults`).
_RUNTIME: Optional[WorkerRuntime] = None


def _install_worker(
    payload: bytes,
    worker_index: int,
    heartbeat,
    plan: Optional[FaultPlan],
    telemetry_on: bool = False,
) -> None:
    """Pool initializer: unpack the replica and arm the worker runtime.

    Always re-initialises worker telemetry: under the ``fork`` start method
    the child inherits the coordinator's live session object, which must be
    cleared so worker spans go into the worker's private collector (shipped
    back on shard results) instead of a dead copy of the coordinator ring.
    """
    global _REPLICA, _RUNTIME
    _REPLICA = pickle.loads(payload)
    _RUNTIME = WorkerRuntime(worker_index, heartbeat, plan)
    telemetry.arm_process_worker(worker_index, telemetry_on)


def _on_shard(shard_index: int) -> None:
    """Top of every shard task: stamp the heartbeat, apply injected faults."""
    if _RUNTIME is not None:
        _RUNTIME.on_shard(shard_index)


def _worker_shard(kind: str, shard_index: int, *arrays):
    """Process-worker task, pickle transport: arrays arrive on the wire.

    When the worker is telemetry-armed the result grows a third element —
    the drained span payload — which the supervisor's harvest unpacks and
    merges; unarmed workers keep the plain 2-tuple wire format.
    """
    _on_shard(shard_index)
    shard_fn, replica_slot = _SHARD_KINDS[kind]
    if not telemetry.worker_armed():
        return shard_fn(_replica_subject(_REPLICA, replica_slot), *arrays)
    with telemetry.span(
        f"shard-{shard_index}", "shard",
        kind=kind, rows=len(arrays[0]), transport="pickle",
    ):
        values, delta = shard_fn(_replica_subject(_REPLICA, replica_slot), *arrays)
    return values, delta, telemetry.drain_worker_payload()


def _worker_shard_shm(kind: str, shard_index: int, envelope):
    """Process-worker task, shm transport: only the envelope rides the wire.

    The row block is read zero-copy from the request ring (reattaching by
    name — which is also how a respawned worker process finds its segments
    again) and the result lands in the response ring; the returned payload
    is just ``("shm", (offset, shape, dtype))`` plus the stats delta, or an
    inline array when the result outgrew its slot.
    """
    _on_shard(shard_index)
    shard_fn, replica_slot = _SHARD_KINDS[kind]
    views = read_request(envelope)
    if not telemetry.worker_armed():
        values, delta = shard_fn(_replica_subject(_REPLICA, replica_slot), *views)
        return write_response(envelope, values), delta
    with telemetry.span(
        f"shard-{shard_index}", "shard",
        kind=kind, rows=len(views[0]), transport="shm",
    ):
        values, delta = shard_fn(_replica_subject(_REPLICA, replica_slot), *views)
    return write_response(envelope, values), delta, telemetry.drain_worker_payload()


#: Thread-worker state: one replica per worker *thread* (installed by the
#: thread-pool initializer).  Per-thread replicas keep bit-identity without
#: requiring the model's forward pass to be re-entrant — several nn layers
#: cache activations on ``self`` during ``forward``.
_THREAD_STATE = threading.local()


def _install_thread_worker(
    payload: bytes,
    worker_index: int,
    heartbeat,
    plan: Optional[FaultPlan],
) -> None:
    _THREAD_STATE.replica = pickle.loads(payload)
    _THREAD_STATE.runtime = WorkerRuntime(worker_index, heartbeat, plan)


def _thread_shard(kind: str, shard_index: int, *arrays) -> Tuple[np.ndarray, QueryStats]:
    """Thread-worker task: arrays pass by reference — no IPC at all.

    Thread workers share the coordinator's address space, so their spans go
    straight into the live session (no wire payload) — but tagged onto the
    worker lane, keeping ``repro trace`` timelines uniform across transports.
    """
    runtime = getattr(_THREAD_STATE, "runtime", None)
    if runtime is not None:
        runtime.on_shard(shard_index)
    shard_fn, replica_slot = _SHARD_KINDS[kind]
    if not telemetry.enabled():
        return shard_fn(_replica_subject(_THREAD_STATE.replica, replica_slot), *arrays)
    started = clock.monotonic()
    values, delta = shard_fn(_replica_subject(_THREAD_STATE.replica, replica_slot), *arrays)
    telemetry.record_span(
        f"shard-{shard_index}", "shard", started, clock.monotonic() - started,
        proc="worker",
        worker=runtime.worker_index if runtime is not None else -1,
        attrs={"kind": kind, "rows": len(arrays[0]), "transport": "threads"},
    )
    return values, delta


def _shutdown_pools(pools: Sequence[ProcessPoolExecutor]) -> None:
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


class _LockedCache:
    """Coordinator-side cache wrapper serialising access under the engine lock.

    The memoizing cache is deliberately held in the coordinator (not in a
    ``multiprocessing`` manager): lookups happen *before* shards are
    dispatched, so a row any worker has ever computed is answered without
    touching the pool again — shared across workers by construction, without
    per-row IPC.  The lock makes the accounting safe even when future code
    touches the cache from shard-completion callbacks.
    """

    def __init__(self, inner, lock: threading.Lock) -> None:
        self._inner = inner
        self._lock = lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)

    def get(self, row: np.ndarray):
        with self._lock:
            return self._inner.get(row)

    def put(self, row: np.ndarray, value: np.ndarray) -> None:
        with self._lock:
            self._inner.put(row, value)

    def clear(self) -> None:
        with self._lock:
            self._inner.clear()


# --------------------------------------------------------------------------- #
# the sharded engine
# --------------------------------------------------------------------------- #
class ShardedQueryEngine(BatchedQueryEngine):
    """Multi-worker execution backend behind the batched query engine.

    Drop-in for :class:`BatchedQueryEngine` (same constructor surface plus
    ``num_workers``/``start_method``/``transport``); all logical semantics —
    chunk boundaries, caching, :class:`QueryStats` meanings — are inherited,
    only the physical execution of chunks moves to worker processes (or
    threads).

    Parameters
    ----------
    model, naturalness, batch_size, cache, cache_max_entries:
        As for :class:`BatchedQueryEngine`.
    num_workers:
        Worker processes (or threads) to shard physical calls across.  ``1``
        executes in-process (no pool, no transport) but keeps the sharded
        accounting path, making it the honest single-worker baseline.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"`` on Linux by
        default).  Workers receive the model via an explicit pickle snapshot
        either way, so replica semantics do not depend on it.  Ignored by
        the thread transport.
    transport:
        How row blocks reach the workers: ``"pickle"`` (per-task pickling),
        ``"shm"`` (zero-copy shared-memory ring buffers), ``"threads"``
        (in-process thread pool with per-thread replicas) or ``"auto"``
        (default: pickle vs shm chosen per logical call by block size).
        Transport never changes results — see :mod:`repro.engine.transport`.
    retry:
        :class:`repro.faults.RetryPolicy` governing supervision: heartbeat
        deadline, respawn budget, retry budget, and whether an exhausted
        pool fails the campaign or degrades to in-process execution.
        ``None`` uses the defaults.
    faults:
        Optional :class:`repro.faults.FaultPlan` injecting deterministic
        worker kills and shard delays — the chaos-test hook.  ``None``
        (the default) injects nothing.  Kill actions require process
        workers (a thread cannot be SIGKILLed in isolation), so plans with
        kills are rejected under ``transport="threads"``.

    Notes
    -----
    The worker pool snapshots the model lazily on first dispatch; mutating
    the model afterwards (e.g. retraining in place) is not reflected in the
    replicas — build a fresh engine per campaign, as every call site in this
    repository does, or call :meth:`close` to force a re-snapshot.

    Shared-memory footprint: per worker, the request and response rings are
    sized to that worker's planned shards (+ :data:`SLOT_HEADROOM` for
    re-planned shards), so one dispatch maps roughly twice its input matrix
    across all workers.  Rings persist across dispatches (grow-only) and
    are unlinked on :meth:`close`, on degradation, and by a finalizer.
    """

    def __init__(
        self,
        model: Classifier,
        naturalness: Optional[NaturalnessScorer] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache: object = False,
        cache_max_entries: int = 65536,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        transport: str = "auto",
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(
            model,
            naturalness=naturalness,
            batch_size=batch_size,
            cache=cache,
            cache_max_entries=cache_max_entries,
        )
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        validate_transport(transport)
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ConfigurationError(
                f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
            )
        if faults is not None and not isinstance(faults, FaultPlan):
            raise ConfigurationError(
                f"faults must be a FaultPlan or None, got {type(faults).__name__}"
            )
        if transport == "threads" and faults is not None and faults.kills:
            raise ConfigurationError(
                "FaultPlan kill actions require process workers (a thread "
                "cannot be SIGKILLed in isolation); use transport='pickle' "
                "or 'shm' for kill-injection chaos runs"
            )
        self.num_workers = int(num_workers)
        self.start_method = start_method
        self.transport = transport
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self._lock = threading.Lock()
        if self.cache is not None:
            self.cache = _LockedCache(self.cache, self._lock)
        self._pools: Optional[List[ProcessPoolExecutor]] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._payload: Optional[bytes] = None
        self._context = None
        self._heartbeat: Optional[WorkerHeartbeat] = None
        self._supervisor: Optional[ShardSupervisor] = None
        # shared-memory transport state: the ring list is identity-stable
        # (the finalizer below holds it) and populated lazily per worker
        self._rings: List[RingPair] = []
        self._rings_finalizer: Optional[weakref.finalize] = None
        self._response_bytes_hint = 0
        self._active_staging: Optional[ShmStaging] = None
        # whether the *current pool generation* was spawned telemetry-armed;
        # snapshotted at pool creation so respawned slots match their peers
        self._telemetry_pool = False

    @property
    def naturalness(self) -> Optional[NaturalnessScorer]:
        return self._naturalness

    @naturalness.setter
    def naturalness(self, scorer: Optional[NaturalnessScorer]) -> None:
        # replicas snapshot (model, naturalness) when the pool starts; a
        # scorer attached afterwards (as_query_engine / build_query_engine
        # do this on pass-through) must invalidate the pool so the next
        # dispatch re-snapshots — otherwise workers would raise on their
        # scorer-less replica
        self._naturalness = scorer
        if getattr(self, "_pools", None) is not None:
            self.close()

    # ------------------------------------------------------------------ #
    # overridden physical execution
    # ------------------------------------------------------------------ #
    def _predict_proba_chunked(self, x: np.ndarray) -> np.ndarray:
        return self._dispatch("proba", (x,))

    def loss_input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Sharded input gradients (same chunk scaling note as the base class)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_1d(np.asarray(y, dtype=int))
        n = len(x)
        self._absorb(QueryStats(gradient_rows=n))
        if n == 0:
            return np.zeros_like(x)
        return self._dispatch("grad", (x, y))

    def score_naturalness(self, x: np.ndarray) -> np.ndarray:
        """Sharded naturalness scores for every row."""
        if self.naturalness is None:
            raise ConfigurationError("engine was built without a naturalness scorer")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = len(x)
        self._absorb(QueryStats(naturalness_rows=n))
        if n == 0:
            return np.zeros(0)
        return self._dispatch("nat", (x,))

    # ------------------------------------------------------------------ #
    # dispatch machinery
    # ------------------------------------------------------------------ #
    def _call_transport(self, arrays: Tuple[np.ndarray, ...]) -> str:
        """Resolve the transport for one logical call (``auto`` by block size)."""
        if self.transport != "auto":
            return self.transport
        rows = min(self.batch_size, len(arrays[0]))
        return resolve_auto_transport(request_block_bytes(arrays, rows))

    def _dispatch(self, kind: str, arrays: Tuple[np.ndarray, ...]) -> np.ndarray:
        """Run one logical call: plan shards, execute, merge stats, reassemble.

        ``kind`` selects the shard computation (see :data:`_SHARD_KINDS`);
        the same computation backs the pool replicas, the thread replicas
        and the coordinator's in-process fallback (the ``num_workers == 1``
        path and the degradation fallback).
        """
        shards = plan_shards(len(arrays[0]), self.batch_size, self.num_workers)
        shard_fn, replica_slot = _SHARD_KINDS[kind]
        subject = self.model if replica_slot == 0 else self.naturalness

        def run_local(shard: Shard) -> Tuple[np.ndarray, QueryStats]:
            return shard_fn(subject, *(a[shard.start : shard.stop] for a in arrays))

        traced = telemetry.enabled()
        dispatch_started = clock.monotonic() if traced else 0.0
        if self.num_workers == 1:
            pieces: List[np.ndarray] = []
            for shard in shards:
                started = clock.monotonic() if traced else 0.0
                values, delta = run_local(shard)
                self._absorb(delta)
                pieces.append(values)
                if traced:
                    telemetry.record_span(
                        f"shard-{shard.index}", "shard",
                        started, clock.monotonic() - started,
                        attrs={
                            "kind": kind,
                            "rows": shard.stop - shard.start,
                            "transport": "local",
                        },
                    )
        else:
            pools, supervisor = self._ensure_workers()
            transport = self._call_transport(arrays)
            telemetry.count(f"transport.dispatch.{transport}")
            staging = (
                self._prepare_staging(shards, arrays)
                if transport == "shm"
                else None
            )
            task_fn = _thread_shard if transport == "threads" else _worker_shard

            def submit(worker: int, shard: Shard):
                slices = tuple(a[shard.start : shard.stop] for a in arrays)
                if staging is not None:
                    envelope = staging.stage(worker, shard.index, slices)
                    if envelope is not None:
                        # zero-copy path: the block is already in the ring;
                        # only the envelope rides the pool (supervised
                        # dispatch: the supervisor harvests every future
                        # with a deadline)
                        if traced:
                            telemetry.count(
                                "transport.shm.bytes",
                                sum(s.nbytes for s in slices),
                            )
                        return pools[worker].submit(  # repro: allow[timeout-discipline]
                            _worker_shard_shm, kind, shard.index, envelope
                        )
                    telemetry.count("transport.shm.staging_fallbacks")
                # pickle/thread wire (and the staged-slot-exhausted fallback)
                if traced and transport != "threads":
                    telemetry.count(
                        "transport.pickle.bytes", sum(s.nbytes for s in slices)
                    )
                return pools[worker].submit(  # repro: allow[timeout-discipline]
                    task_fn, kind, shard.index, *slices
                )

            # the supervisor gathers in shard order, re-plans lost shards
            # deterministically and (within the retry budget) respawns dead
            # workers — concatenation, and therefore every campaign outcome,
            # is independent of which worker finishes first *and* of which
            # workers survived
            try:
                pieces = supervisor.execute(
                    shards,
                    submit,
                    run_local,
                    decode=staging.decode if staging is not None else None,
                )
            finally:
                if staging is not None:
                    self._response_bytes_hint = max(
                        self._response_bytes_hint, staging.response_bytes_needed
                    )
                    with self._lock:
                        self._active_staging = None
                if supervisor.degraded:
                    # the pool is gone for good: nothing will ever read the
                    # rings again, so unlink the segments now rather than
                    # holding shared memory for the in-process remainder
                    release_rings(self._rings)
        if traced:
            telemetry.record_span(
                f"dispatch.{kind}", "engine",
                dispatch_started, clock.monotonic() - dispatch_started,
                attrs={
                    "kind": kind,
                    "rows": len(arrays[0]),
                    "shards": len(shards),
                    "workers": self.num_workers,
                },
            )
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)

    def _prepare_staging(
        self, shards: Sequence[Shard], arrays: Tuple[np.ndarray, ...]
    ) -> ShmStaging:
        """Size the rings for one dispatch and open its slot ledger.

        Runs between dispatches by construction (dispatch is synchronous),
        so growing a ring can never tear a block out from under a task.
        """
        while len(self._rings) < self.num_workers:
            self._rings.append(RingPair())
        if self._rings_finalizer is None:
            self._rings_finalizer = weakref.finalize(self, release_rings, self._rings)
        rows = min(self.batch_size, len(arrays[0]))
        request_bytes = max(1, request_block_bytes(arrays, rows))
        # responses are usually no larger than requests ((rows, classes) vs
        # (rows, features)); when one overflows its slot it returns inline
        # (bit-identical, just slower) and the recorded hint grows the rings
        # at the next dispatch
        response_bytes = max(request_bytes, self._response_bytes_hint)
        planned = [0] * self.num_workers
        for shard in shards:
            planned[shard.worker] += 1
        for worker, pair in enumerate(self._rings[: self.num_workers]):
            before = (
                pair.request.slots,
                pair.request.slot_bytes,
                pair.response.slot_bytes,
            )
            pair.ensure(
                max(planned[worker] + SLOT_HEADROOM, SLOT_HEADROOM),
                request_bytes,
                response_bytes,
            )
            if before[0] and before != (
                pair.request.slots,
                pair.request.slot_bytes,
                pair.response.slot_bytes,
            ):
                # an existing ring was reallocated larger (first allocation
                # of a fresh ring is not growth)
                telemetry.count("transport.shm.ring_growth")
        staging = ShmStaging(self._rings[: self.num_workers])
        with self._lock:
            self._active_staging = staging
        return staging

    def _absorb(self, delta: QueryStats) -> None:
        """Race-free merge of a per-shard stats delta into the engine counters.

        The single merge point for shard accounting.  Today every dispatch
        merges serially on the coordinator thread; the engine lock (shared
        with the cache wrapper) is the defensive guarantee that keeps merges
        exact if a future execution path (async dispatch, callback-based
        gathering) completes shards from other threads.
        """
        with self._lock:
            self.stats.merge(delta)

    def _spawn_pool(self, index: int):
        """One single-worker executor for worker slot ``index``.

        Built from the cached replica snapshot, so a respawned slot hosts a
        bit-identical replica of the one that died.  Callers hold the engine
        lock (spawn mutates nothing, but the slot tables it lands in do).
        Thread transport swaps the process pool for a single-thread pool
        whose initializer installs a *per-thread* replica.
        """
        # both callers (_ensure_workers, _respawn_worker) hold self._lock,
        # which also guards the replica snapshot these reads consume
        if self.transport == "threads":
            return ThreadPoolExecutor(
                max_workers=1,
                initializer=_install_thread_worker,
                initargs=(self._payload, index, self._heartbeat.array, self.faults),  # repro: allow[lock-discipline]
            )
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._context,  # repro: allow[lock-discipline]
            initializer=_install_worker,
            initargs=(self._payload, index, self._heartbeat.array, self.faults, self._telemetry_pool),  # repro: allow[lock-discipline]
        )

    def _ensure_workers(self) -> Tuple[List[ProcessPoolExecutor], ShardSupervisor]:
        # under the engine lock: two threads racing their first dispatch
        # must not each spawn (and then leak) a full worker set
        with self._lock:
            if (
                self._pools is not None
                and self.transport != "threads"
                and self._telemetry_pool != telemetry.enabled()
            ):
                # telemetry flipped since this pool generation was armed
                # (e.g. a session opened around an already-warm engine):
                # retire the generation so the next one arms to match.
                # Thread pools are exempt — they read the live session.
                pools, self._pools = self._pools, None
                self._supervisor = None
                self._heartbeat = None
                self._active_staging = None
                if self._finalizer is not None:
                    self._finalizer.detach()
                    self._finalizer = None
                _shutdown_pools(pools)
            if self._pools is None:
                # snapshot telemetry enablement for this pool generation:
                # workers are armed (or not) by their initializer, and a
                # mid-campaign respawn must match the surviving slots
                self._telemetry_pool = telemetry.enabled()
                self._payload = pickle.dumps(
                    (self.model, self.naturalness), protocol=pickle.HIGHEST_PROTOCOL
                )
                self._context = (
                    multiprocessing.get_context(self.start_method)
                    if self.start_method is not None
                    else multiprocessing.get_context()
                )
                self._heartbeat = WorkerHeartbeat(self.num_workers, self._context)
                # one single-worker executor per slot keeps the
                # shard→worker assignment literal: shard i is *always*
                # executed by pool i%W (until supervision re-plans it)
                self._pools = [
                    self._spawn_pool(index) for index in range(self.num_workers)
                ]
                self._supervisor = ShardSupervisor(
                    retry=self.retry,
                    num_workers=self.num_workers,
                    heartbeat=self._heartbeat,
                    respawn_worker=self._respawn_worker,
                    absorb=self._absorb,
                )
                self._finalizer = weakref.finalize(self, _shutdown_pools, self._pools)
            return self._pools, self._supervisor

    def _respawn_worker(self, worker: int, rebuild: bool) -> None:
        """Supervisor callback: bury one worker slot and optionally respawn it.

        The old process is killed outright (it may be hung mid-shard, so a
        cooperative shutdown could block forever) and its executor is torn
        down; with ``rebuild`` a fresh single-worker pool takes over the
        slot, in place, so the shard→worker tables stay valid.  Ring slots
        staged on the dead worker are reclaimed here — its process is gone,
        so no reader or writer of those blocks survives — and the respawned
        process reattaches to the same segments by name on its next staged
        shard.  (Thread slots cannot be killed; their executor is replaced
        and the hung thread is abandoned.)
        """
        with self._lock:
            pools = self._pools
            if pools is None:
                return
            old = pools[worker]
            # private executor surface — there is no public "kill the worker
            # process" API, and a hung process never honours shutdown()
            for process in list(getattr(old, "_processes", {}).values()):
                process.kill()
            old.shutdown(wait=False, cancel_futures=True)
            if self._active_staging is not None:
                self._active_staging.worker_down(worker)
            if rebuild:
                pools[worker] = self._spawn_pool(worker)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the worker pool and unlink the ring segments (idempotent).

        The next dispatch would lazily rebuild the pool from a fresh model
        snapshot (and fresh rings); stats and cache survive closing.  The
        pool swap shares the engine lock with :meth:`_ensure_workers`, so
        closing cannot race a concurrent first dispatch into leaking a
        worker set (closing while another thread has shards in flight is
        still a caller error).
        """
        with self._lock:
            pools, self._pools = self._pools, None
            self._supervisor = None
            self._heartbeat = None
            self._payload = None
            self._context = None
            self._active_staging = None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
        if pools is not None:
            _shutdown_pools(pools)
        release_rings(self._rings)


# --------------------------------------------------------------------------- #
# construction helpers
# --------------------------------------------------------------------------- #
def validate_engine_knobs(
    engine: str, num_workers: int, exception: type = ConfigurationError
) -> None:
    """Validate an ``engine``/``num_workers`` knob pair.

    Shared by every subsystem that threads the knobs through, so the accepted
    backends live in exactly one place; ``exception`` lets each subsystem
    keep its own error taxonomy (``AttackError``, ``ReliabilityError``, …).
    """
    if engine not in ENGINE_BACKENDS:
        raise exception(f"engine must be one of {ENGINE_BACKENDS}, got {engine!r}")
    if num_workers <= 0:
        raise exception("num_workers must be positive")


def build_query_engine(
    model: Classifier,
    naturalness: Optional[NaturalnessScorer] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    cache: object = False,
    cache_max_entries: int = 65536,
    engine: str = "batched",
    num_workers: int = 1,
    start_method: Optional[str] = None,
    transport: str = "auto",
) -> BatchedQueryEngine:
    """Build the requested engine backend (or pass an existing engine through).

    Low-level construction helper; subsystems build engines through
    :meth:`repro.runtime.ExecutionPolicy.build_engine`, which also opens the
    backend set to registered plug-ins.  Like
    :func:`repro.engine.batching.as_query_engine`, a pre-built engine is
    returned unchanged so nested subsystems share one set of counters, one
    cache and one worker pool.
    """
    validate_engine_knobs(engine, num_workers)
    validate_transport(transport)
    if engine == "sharded" and not isinstance(model, BatchedQueryEngine):
        return ShardedQueryEngine(
            model,
            naturalness=naturalness,
            batch_size=batch_size,
            cache=cache,
            cache_max_entries=cache_max_entries,
            num_workers=num_workers,
            start_method=start_method,
            transport=transport,
        )
    # pass-through (with scorer injection) and batched construction both
    # live in as_query_engine — one funnel, not two copies of the rule
    return as_query_engine(
        model,
        naturalness=naturalness,
        batch_size=batch_size,
        cache=cache,
        cache_max_entries=cache_max_entries,
    )


@contextmanager
def query_engine_session(
    model: Classifier, **kwargs: object
) -> Iterator[BatchedQueryEngine]:
    """Build an engine for one campaign and release its workers afterwards.

    Engines the caller already owns (``model`` is itself an engine) are
    passed through *without* being closed — their lifecycle belongs to the
    caller.
    """
    engine = build_query_engine(model, **kwargs)
    created = engine is not model
    try:
        yield engine
    finally:
        if created:
            engine.close()


__all__ = [
    "ENGINE_BACKENDS",
    "Shard",
    "plan_shards",
    "ShardedQueryEngine",
    "validate_engine_knobs",
    "build_query_engine",
    "query_engine_session",
]
