"""Batched model-query engine: the chassis for scaling the testing loops.

This package turns the repository's hottest control flows — the operational
fuzzer, the black-box attacks and the reliability evidence collection — from
"one seed at a time, one query at a time" into batched, cache-aware bulk
queries:

* :mod:`repro.engine.batching` — :class:`BatchedQueryEngine`, the chunked and
  optionally memoizing front-end every subsystem funnels its model queries
  through, with :class:`QueryStats` accounting that separates logical queries
  from physical model calls.
* :mod:`repro.engine.population` — :class:`PopulationFuzzEngine`, the
  lock-step population loop behind the batched operational fuzzer.
* :mod:`repro.engine.parallel` — :class:`ShardedQueryEngine`, the
  multi-worker execution backend that shards physical chunks across a pool
  of pickled model replicas with bit-identical results, plus the low-level
  :func:`build_query_engine` construction helpers.
* :mod:`repro.engine.transport` — how shard row blocks travel to the
  workers: the pickle wire, zero-copy shared-memory ring buffers, or an
  in-process thread pool (``transport="pickle" | "shm" | "threads"``,
  default ``"auto"`` by block size).  Transport never changes results.

Subsystems select and construct engines through the runtime API
(:class:`repro.runtime.ExecutionPolicy` and the registered
:class:`repro.runtime.ModelBackend` implementations); future scaling work
(async dispatch, remote substrates) plugs in behind
:func:`repro.runtime.register_backend` without touching the subsystems.
"""

from .batching import (
    DEFAULT_BATCH_SIZE,
    BatchedQueryEngine,
    CacheBackend,
    QueryCache,
    QueryStats,
    as_query_engine,
)
from .parallel import (
    ENGINE_BACKENDS,
    Shard,
    ShardedQueryEngine,
    build_query_engine,
    plan_shards,
    query_engine_session,
)
from .population import (
    MemberOutcome,
    PopulationFuzzEngine,
    SeedTask,
    fitness_from_probs,
    pick_operator,
)
from .transport import SHM_MIN_BLOCK_BYTES, TRANSPORTS, validate_transport

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchedQueryEngine",
    "CacheBackend",
    "QueryCache",
    "QueryStats",
    "as_query_engine",
    "ENGINE_BACKENDS",
    "Shard",
    "ShardedQueryEngine",
    "build_query_engine",
    "plan_shards",
    "query_engine_session",
    "MemberOutcome",
    "PopulationFuzzEngine",
    "SeedTask",
    "fitness_from_probs",
    "pick_operator",
    "TRANSPORTS",
    "SHM_MIN_BLOCK_BYTES",
    "validate_transport",
]
