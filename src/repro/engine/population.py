"""Lock-step population fuzzing: one batched model call serves every seed.

The sequential fuzzer walks seeds one at a time and pays a full model
round-trip per candidate.  This module inverts that control flow: every live
seed proposes a mutation each *round*, the proposals are concatenated into
one matrix, and a single batched naturalness call plus a single batched
``predict_proba`` call service the whole population.  Per-seed semantics are
preserved exactly:

* each seed owns a private random stream, so its proposal sequence does not
  depend on which other seeds are alive in the same round;
* per-seed query accounting (the initial seed check, one query per directed
  proposal, one query per evaluated candidate), the stall limit, the
  proposal cap and the naturalness floor all match the sequential loop;
* under a global budget, seeds are *admitted* greedily in order with a
  reservation of their nominal budget, and budget a seed leaves unspent is
  refunded so waitlisted seeds can be admitted — mirroring the sequential
  policy of handing leftover budget to later seeds.  The campaign total can
  therefore never exceed the budget.

The module is deliberately ignorant of :class:`repro.fuzzing.fuzzer`
dataclasses (the fuzzer depends on this module, not vice versa); results
come back as plain :class:`MemberOutcome` records the fuzzer re-wraps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EPSILON
from ..types import AdversarialExample
from .batching import BatchedQueryEngine

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..fuzzing.mutations import MutationOperator

#: Proposal cap multiplier: rejected proposals cost no queries; bound them
#: anyway (same constant as the sequential loop).
PROPOSAL_CAP_FACTOR = 5


def pick_operator(
    directed: Sequence["MutationOperator"],
    undirected: Sequence["MutationOperator"],
    all_operators: Sequence["MutationOperator"],
    gradient_probability: float,
    rng: np.random.Generator,
) -> "MutationOperator":
    """Pick a mutation operator, biasing towards the directed (gradient) ones."""
    if directed and (not undirected or rng.random() < gradient_probability):
        return directed[rng.integers(len(directed))]
    if undirected:
        return undirected[rng.integers(len(undirected))]
    return all_operators[rng.integers(len(all_operators))]


def fitness_from_probs(
    probs: np.ndarray,
    label: int,
    naturalness: float,
    loss_weight: float,
    naturalness_weight: float,
) -> float:
    """Search fitness mixing model loss with (log) naturalness."""
    loss = -np.log(max(float(probs[label]), EPSILON))
    return loss_weight * loss + naturalness_weight * float(
        np.log(max(naturalness, EPSILON))
    )


@dataclass
class SeedTask:
    """One population member: immutable inputs plus mutable search state."""

    index: int
    seed: np.ndarray
    label: int
    budget: int
    density: Optional[float]
    neighbours: Optional[np.ndarray]
    rng: np.random.Generator
    # --- runtime state, owned by the population engine ------------------- #
    current: Optional[np.ndarray] = None
    seed_naturalness: float = 0.0
    floor: float = 0.0
    queries: int = 0
    proposals: int = 0
    stalled: int = 0
    rejected: int = 0
    best_fitness: float = -np.inf
    found: Optional[AdversarialExample] = None


@dataclass
class MemberOutcome:
    """Outcome of one population member, in fuzzer-agnostic form."""

    index: int
    adversarial_example: Optional[AdversarialExample]
    queries: int
    best_fitness: float
    rejected: int


class PopulationFuzzEngine:
    """Runs the lock-step rounds over a population of seed tasks.

    Parameters
    ----------
    engine:
        Batched query engine wrapping the model under test and the
        naturalness scorer.
    config:
        Any object exposing the fuzzer hyper-parameters (``epsilon``,
        ``naturalness_threshold``, ``loss_weight``, ``naturalness_weight``,
        ``gradient_probability``, ``stall_limit``) — in practice a
        :class:`repro.fuzzing.fuzzer.FuzzerConfig`.
    operators:
        Mutation operator mix.
    """

    def __init__(
        self,
        engine: BatchedQueryEngine,
        config,
        operators: Sequence["MutationOperator"],
    ) -> None:
        self.engine = engine
        self.config = config
        self.operators: List["MutationOperator"] = list(operators)
        self.directed = [op for op in self.operators if op.queries_model]
        self.undirected = [op for op in self.operators if not op.queries_model]
        self._reserve_left: float = np.inf

    # ------------------------------------------------------------------ #
    # campaign driver
    # ------------------------------------------------------------------ #
    def run(
        self,
        tasks: Sequence[SeedTask],
        budget: Optional[int] = None,
        checkpointer=None,
        resume_state: Optional[dict] = None,
    ) -> List[MemberOutcome]:
        """Fuzz every admissible task and return outcomes in seed order.

        Tasks that cannot be admitted before the global budget is exhausted
        are not started at all and yield no outcome — exactly like the
        sequential loop breaking out of its seed iteration.

        ``checkpointer`` (a :class:`repro.store.Checkpointer`) snapshots the
        whole campaign state at round boundaries; ``resume_state`` (a payload
        loaded from such a snapshot) restores it, after which the campaign
        replays bit-identically to one that was never interrupted — every
        task carries its own RNG whose exact bit-generator state round-trips
        through the snapshot.  When resuming, ``tasks``/``budget`` are
        ignored in favour of the snapshot.
        """
        if resume_state is not None:
            waitlist = list(resume_state["waitlist"])
            active = list(resume_state["active"])
            outcomes = list(resume_state["outcomes"])
            self._reserve_left = resume_state["reserve_left"]
            rounds = int(resume_state["rounds"])
        else:
            self._reserve_left = np.inf if budget is None else float(int(budget))
            waitlist = list(tasks)
            active = []
            outcomes = []
            rounds = 0

        while True:
            if checkpointer is not None:
                checkpointer.save_if_due(
                    rounds,
                    lambda: {
                        "waitlist": waitlist,
                        "active": active,
                        "outcomes": outcomes,
                        "reserve_left": self._reserve_left,
                        "rounds": rounds,
                        "stats": self.engine.stats,
                    },
                )
            if waitlist and self._reserve_left > 0:
                admitted = self._admit(waitlist)
                if admitted:
                    self._initialise(admitted, active, outcomes)
            if not active:
                if waitlist and self._reserve_left > 0:
                    # a whole admission wave retired during initialisation
                    # (natural failures) and refunded budget: admit more
                    continue
                break
            self._round(active, outcomes)
            rounds += 1

        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes

    # ------------------------------------------------------------------ #
    # admission / retirement
    # ------------------------------------------------------------------ #
    def _admit(self, waitlist: List[SeedTask]) -> List[SeedTask]:
        """Reserve budget for as many waitlisted tasks as currently fits."""
        admitted: List[SeedTask] = []
        while waitlist and self._reserve_left > 0:
            task = waitlist.pop(0)
            if np.isfinite(self._reserve_left):
                task.budget = max(1, min(task.budget, int(self._reserve_left)))
            self._reserve_left -= task.budget
            admitted.append(task)
        return admitted

    def _finish(
        self, task: SeedTask, active: List[SeedTask], outcomes: List[MemberOutcome]
    ) -> None:
        """Retire a task, refunding whatever it reserved but did not spend."""
        self._reserve_left += task.budget - task.queries
        if task in active:
            active.remove(task)
        outcomes.append(
            MemberOutcome(
                index=task.index,
                adversarial_example=task.found,
                queries=task.queries,
                best_fitness=(
                    float(task.best_fitness) if np.isfinite(task.best_fitness) else 0.0
                ),
                rejected=task.rejected,
            )
        )

    def _initialise(
        self,
        admitted: List[SeedTask],
        active: List[SeedTask],
        outcomes: List[MemberOutcome],
    ) -> None:
        """Score and classify the raw seeds of newly admitted tasks (batched)."""
        seeds = np.stack([task.seed for task in admitted])
        naturalness = self.engine.score_naturalness(seeds)
        predictions = self.engine.predict(seeds)
        for task, seed_nat, prediction in zip(admitted, naturalness, predictions):
            task.seed_naturalness = float(seed_nat)
            task.floor = self.config.naturalness_threshold * task.seed_naturalness
            task.current = task.seed.copy()
            task.queries = 1
            if int(prediction) != task.label:
                # a "natural failure": the seed itself is already misclassified
                task.found = AdversarialExample(
                    seed=task.seed.copy(),
                    perturbed=task.seed.copy(),
                    true_label=task.label,
                    predicted_label=int(prediction),
                    distance=0.0,
                    naturalness=task.seed_naturalness,
                    op_density=task.density,
                    method="operational-fuzzer",
                    queries=task.queries,
                )
                task.best_fitness = 0.0
                self._finish(task, active, outcomes)
            else:
                active.append(task)

    # ------------------------------------------------------------------ #
    # one lock-step round
    # ------------------------------------------------------------------ #
    def _round(self, active: List[SeedTask], outcomes: List[MemberOutcome]) -> None:
        cfg = self.config

        # retire tasks that exhausted budget, proposals or patience
        for task in list(active):
            if (
                task.queries >= task.budget
                or task.proposals >= PROPOSAL_CAP_FACTOR * task.budget
                or (cfg.stall_limit and task.stalled >= cfg.stall_limit)
            ):
                self._finish(task, active, outcomes)
        if not active:
            return

        from ..fuzzing.mutations import BatchMutationContext

        # every live member proposes; proposals are grouped per operator so
        # directed operators can issue one physical gradient call per round
        groups: Dict[int, Tuple["MutationOperator", List[SeedTask]]] = {}
        for task in active:
            task.proposals += 1
            operator = pick_operator(
                self.directed,
                self.undirected,
                self.operators,
                cfg.gradient_probability,
                task.rng,
            )
            groups.setdefault(id(operator), (operator, []))[1].append(task)

        candidate_tasks: List[SeedTask] = []
        candidate_rows: List[np.ndarray] = []
        for operator, members in groups.values():
            context = BatchMutationContext(
                seeds=np.stack([task.seed for task in members]),
                currents=np.stack([task.current for task in members]),
                labels=np.array([task.label for task in members], dtype=int),
                epsilon=cfg.epsilon,
                model=self.engine,
                natural_neighbours=[task.neighbours for task in members],
                rngs=[task.rng for task in members],
            )
            proposals = operator.propose_batch(context)
            for task, row in zip(members, proposals):
                if operator.queries_model:
                    task.queries += 1
                    if task.queries >= task.budget:
                        # the directed proposal consumed the last query; the
                        # candidate is discarded, as in the sequential loop
                        self._finish(task, active, outcomes)
                        continue
                candidate_tasks.append(task)
                candidate_rows.append(row)
        if not candidate_tasks:
            return

        # one batched naturalness call gates every proposal of the round
        candidates = np.stack(candidate_rows)
        candidate_naturalness = self.engine.score_naturalness(candidates)
        surviving: List[Tuple[SeedTask, np.ndarray, float]] = []
        for task, row, naturalness in zip(
            candidate_tasks, candidates, candidate_naturalness
        ):
            if cfg.naturalness_threshold > 0 and naturalness < task.floor:
                task.rejected += 1
                task.stalled += 1
            else:
                surviving.append((task, row, float(naturalness)))
        if not surviving:
            return

        # one batched forward pass yields every verdict and fitness at once
        probs = self.engine.predict_proba(np.stack([row for _, row, _ in surviving]))
        predictions = probs.argmax(axis=1)
        for (task, row, naturalness), probs_row, prediction in zip(
            surviving, probs, predictions
        ):
            task.queries += 1
            if int(prediction) != task.label:
                distance = float(np.max(np.abs(row - task.seed)))
                task.found = AdversarialExample(
                    seed=task.seed.copy(),
                    perturbed=row,
                    true_label=task.label,
                    predicted_label=int(prediction),
                    distance=distance,
                    naturalness=naturalness,
                    op_density=task.density,
                    method="operational-fuzzer",
                    queries=task.queries,
                )
                self._finish(task, active, outcomes)
                continue
            fitness = fitness_from_probs(
                probs_row,
                task.label,
                naturalness,
                cfg.loss_weight,
                cfg.naturalness_weight,
            )
            if fitness > task.best_fitness:
                task.best_fitness = fitness
                task.current = row
                task.stalled = 0
            else:
                task.stalled += 1


__all__ = [
    "PROPOSAL_CAP_FACTOR",
    "pick_operator",
    "fitness_from_probs",
    "SeedTask",
    "MemberOutcome",
    "PopulationFuzzEngine",
]
