"""Program-rule protocol and registry — the whole-program sibling of
:class:`repro.analysis.walker.Rule`.

A per-file rule sees one module's AST; a :class:`ProgramRule` sees the whole
:class:`~.graph.ProgramGraph` at once and emits findings anywhere in the
tree.  Program rules run *after* every module's facts are available (fresh or
cache-loaded) and are recomputed on every run: they are pure functions of the
graph, cheap next to parsing, and global by nature — a lock-order cycle or a
cross-module taint flow has no single owning file to cache it under.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ...exceptions import ConfigurationError
from ..findings import Finding
from .graph import ProgramGraph


class ProgramRule:
    """Base class of every whole-program rule.

    Subclasses set the same metadata attributes as per-file rules and
    implement :meth:`check`, returning findings anchored wherever in the tree
    the evidence lives.  Pragma suppression is applied by the framework using
    each file's (cached) pragma map, so rules just report.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, program: ProgramGraph) -> List[Finding]:
        raise NotImplementedError

    # shared helper: report construction mirroring ModuleContext.report
    def finding(
        self, path: str, lineno: int, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            name=self.name,
            severity=self.severity,
            path=path,
            line=int(lineno),
            col=0,
            message=message,
            hint=hint,
        )


_PROGRAM_REGISTRY: Dict[str, Type[ProgramRule]] = {}


def register_program_rule(cls: Type[ProgramRule]) -> Type[ProgramRule]:
    """Class decorator adding a program rule to the registry (id-unique)."""
    if not cls.rule_id or not cls.name:
        raise ConfigurationError(f"{cls.__name__} must define rule_id and name")
    existing = _PROGRAM_REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"duplicate program rule id {cls.rule_id}: "
            f"{existing.__name__} vs {cls.__name__}"
        )
    _PROGRAM_REGISTRY[cls.rule_id] = cls
    return cls


def registered_program_rules() -> Dict[str, Type[ProgramRule]]:
    """Registered program-rule classes keyed by id."""
    _load_builtin_rules()
    return dict(_PROGRAM_REGISTRY)


def default_program_rules() -> List[ProgramRule]:
    """Fresh instances of every registered program rule, in id order."""
    return [cls() for _, cls in sorted(registered_program_rules().items())]


def _load_builtin_rules() -> None:
    # importing the rules package registers every built-in rule exactly once
    from .. import rules as _rules  # noqa: F401


__all__ = [
    "ProgramRule",
    "default_program_rules",
    "register_program_rule",
    "registered_program_rules",
]
